"""The adjustment protocols on real operating-system processes.

Everything else in this repository simulates the Sequent; this example
runs the paper's master/slave architecture for real: slave processes
scan a page-partitioned relation, and mid-scan the master grows the
degree of parallelism with the literal Figure-5 maxpage protocol (and a
range-partitioned index scan with the Figure-6 protocol).

On a single-core host there is no wall-clock speedup to see — the point
is the protocol itself: every page is scanned exactly once across the
adjustment, rows match a serial scan, and slaves join/retire live.

Run:  python examples/real_parallel_scan.py
"""

from repro.catalog import Schema
from repro.config import MachineConfig
from repro.executor import col, gt
from repro.parallel import AdjustmentPlan, ParallelIndexScan, ParallelSeqScan
from repro.storage import BTreeIndex, DiskArray, HeapFile


def main() -> None:
    machine = MachineConfig(processors=4, disks=2)
    heap = HeapFile(
        Schema.of(("a", "int4"), ("b", "text")), DiskArray(machine), name="r1"
    )
    n_rows = 1200
    heap.insert_many([(i, f"tuple-{i:05d}" + "x" * 50) for i in range(n_rows)])
    print(f"Built r1(a int4, b text): {n_rows} rows on {heap.page_count} pages.")

    # --- Figure 5: page-partitioned sequential scan, grown mid-flight ---
    scan = ParallelSeqScan(
        heap,
        predicate=gt(col("a"), 599),
        parallelism=2,
        adjustments=[AdjustmentPlan(after_pages=heap.page_count // 4, parallelism=4)],
    )
    report = scan.run()
    serial = [row for __, row in heap.scan() if row[0] > 599]
    print()
    print("Parallel sequential scan (maxpage protocol):")
    print(f"  parallelism history : {report.parallelism_history}")
    print(f"  pages scanned       : {report.pages_read} / {heap.page_count}")
    print(f"  rows returned       : {len(report.rows)} (serial scan: {len(serial)})")
    assert sorted(report.rows) == sorted(serial)
    assert report.pages_read == heap.page_count
    print("  every page scanned exactly once across the adjustment — OK")

    # --- Figure 6: range-partitioned index scan, repartitioned mid-flight ---
    index = BTreeIndex()
    for rid, row in heap.scan():
        index.insert(row[0], rid)
    scan = ParallelIndexScan(
        heap,
        index,
        low=200,
        high=899,
        parallelism=3,
        adjustments=[AdjustmentPlan(after_pages=150, parallelism=2)],
    )
    report = scan.run()
    print()
    print("Parallel index scan (interval repartitioning protocol):")
    print(f"  parallelism history : {report.parallelism_history}")
    print(f"  keys fetched        : {report.pages_read}")
    print(f"  rows returned       : {len(report.rows)}")
    assert sorted(r[0] for r in report.rows) == list(range(200, 900))
    print("  every key in [200, 899] fetched exactly once — OK")


if __name__ == "__main__":
    main()
