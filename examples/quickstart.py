"""Quickstart: reproduce the paper's headline experiment (Figure 7).

Runs the four Section-3 workloads (AllCPU / AllIO / Extreme / Random)
under the three scheduling algorithms (INTRA-ONLY, INTER-WITHOUT-ADJ,
INTER-WITH-ADJ) on the page-level simulator of the paper's machine
(8 processors, 4 striped disks, B = 240 ios/s), then prints the
elapsed-time table and a text bar chart.

Run:  python examples/quickstart.py
"""

from repro import run_figure7
from repro.workloads import WorkloadConfig


def main() -> None:
    result = run_figure7(
        engine="micro",
        seeds=(0, 1, 2),
        config=WorkloadConfig(max_pages=2000),
    )
    print(result.to_table())
    print()
    print(result.to_bar_chart())
    print()
    from repro.workloads import WorkloadKind

    win = result.win_over_intra(WorkloadKind.EXTREME, "INTER-WITH-ADJ")
    best = result.max_win_over_intra(WorkloadKind.EXTREME, "INTER-WITH-ADJ")
    print(
        f"INTER-WITH-ADJ beats INTRA-ONLY on the Extreme mix by "
        f"{win * 100:.1f}% on average (best seed: {best * 100:.1f}%); "
        "the paper reports wins of up to 25% on its hardware."
    )


if __name__ == "__main__":
    main()
