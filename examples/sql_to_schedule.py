"""From a SQL string to a parallel schedule — the whole stack in one go.

Pipeline demonstrated:

1. parse + plan a SQL join query (``repro.sql``),
2. decompose the chosen plan into fragments at its blocking edges,
3. derive each fragment's (T_i, D_i, C_i) profile from the cost model,
4. schedule the fragments with the paper's adaptive algorithm,
5. draw the schedule as a Gantt chart, and
6. execute the plan for real to show the actual answer.

Run:  python examples/sql_to_schedule.py
"""

from repro.bench import render_gantt
from repro.core import InterWithAdjPolicy, is_io_bound
from repro.config import paper_machine
from repro.plans import estimate_plan, fragment_plan
from repro.sim import FluidSimulator
from repro.sql import translate
from repro.workloads import build_relation, chain_join, one_tuple_per_page_payload

SQL = (
    "SELECT s1_l, count(*) AS n "
    "FROM s1, s2 "
    "WHERE s1_r = s2_l AND s2_r BETWEEN 0 AND 80 "
    "GROUP BY s1_l ORDER BY n DESC LIMIT 5"
)


def main() -> None:
    machine = paper_machine()
    schema = chain_join(2, rows_per_relation=1500, seed=4)
    # A wide side relation whose scan is IO-bound, queried concurrently.
    payload = one_tuple_per_page_payload(machine.page_size)
    build_relation(
        schema.catalog, schema.array, "wide", n_rows=2500, payload_size=payload
    )

    print("SQL:", SQL)
    translated = translate(SQL, schema.catalog)
    print()
    print("Chosen plan:")
    print(translated.plan.pretty())

    estimate = estimate_plan(translated.plan, schema.catalog, machine=machine)
    graph = fragment_plan(translated.plan, estimate)
    print()
    print(f"{len(graph)} fragments (tasks):")
    tasks = graph.to_tasks()
    for fragment, task in zip(graph.fragments, tasks):
        kind = "IO-bound" if is_io_bound(task, machine) else "CPU-bound"
        print(
            f"  {task.name:36s} T={task.seq_time:7.3f}s "
            f"C={task.io_rate:5.1f} ios/s  {kind}  deps={sorted(fragment.depends_on)}"
        )

    # Co-schedule the query's fragments with a concurrent IO-bound scan.
    side = translate("SELECT count(*) FROM wide", schema.catalog)
    side_estimate = estimate_plan(side.plan, schema.catalog, machine=machine)
    side_tasks = fragment_plan(side.plan, side_estimate).to_tasks()
    result = FluidSimulator(machine).run(tasks + side_tasks, InterWithAdjPolicy())
    print()
    print(render_gantt(result, title="Adaptive schedule (with a concurrent bulk scan)"))

    rows = translated.run(schema.catalog)
    print()
    print("Actual result rows:")
    for row in rows:
        print(" ", row)


if __name__ == "__main__":
    main()
