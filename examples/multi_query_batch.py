"""Multi-query optimization and co-scheduling (the paper's future work).

Section 4 recommends, for multi-user systems: optimize each query
left-deep with seqcost ([HONG91]) and "rely on the tasks from different
queries submitted by multiple users to achieve maximum resource
utilizations using our scheduling algorithm."  The paper leaves the
full multi-query treatment to future work; this example runs our
implementation of it:

* three queries (a 3-way join plus two selections) are optimized
  individually,
* all their fragments are pooled into one adaptive scheduler run,
  respecting each query's internal blocking-edge dependencies,
* per-query response times are reported for the adaptive scheduler vs
  INTRA-ONLY.

Run:  python examples/multi_query_batch.py
"""

from repro.bench import format_table
from repro.core import IntraOnlyPolicy
from repro.optimizer import MultiQueryScheduler, Query, QuerySubmission
from repro.workloads import build_relation, chain_join, one_tuple_per_page_payload


def main() -> None:
    schema = chain_join(3, rows_per_relation=2000, seed=21)
    # Two wide-tuple relations (one tuple per 8K page) whose scans are
    # heavily IO-bound — the complement to the CPU-bound join work.
    payload = one_tuple_per_page_payload(8192)
    build_relation(
        schema.catalog, schema.array, "wide_a", n_rows=4000, payload_size=payload
    )
    build_relation(
        schema.catalog, schema.array, "wide_b", n_rows=3000, payload_size=payload
    )
    batch = [
        QuerySubmission("three-way-join", schema.query),
        QuerySubmission("bulk-scan-a", Query(relations=["wide_a"])),
        QuerySubmission("bulk-scan-b", Query(relations=["wide_b"]), arrival_time=2.0),
    ]

    scheduler = MultiQueryScheduler(schema.catalog)
    adaptive = scheduler.run(batch)
    intra = scheduler.run(batch, policy=IntraOnlyPolicy())

    rows = []
    for name in ("three-way-join", "bulk-scan-a", "bulk-scan-b"):
        a = adaptive.outcome(name)
        i = intra.outcome(name)
        rows.append(
            (
                name,
                len(a.fragments),
                f"{a.response_time:.3f}",
                f"{i.response_time:.3f}",
            )
        )
    print(
        format_table(
            ["query", "fragments", "response WITH-ADJ (s)", "response INTRA (s)"],
            rows,
            title="Co-scheduling a query batch (fragments pooled across queries)",
        )
    )
    print()
    print(
        f"Batch elapsed: adaptive {adaptive.elapsed:.3f}s vs "
        f"intra-only {intra.elapsed:.3f}s; "
        f"mean response {adaptive.mean_response_time:.3f}s vs "
        f"{intra.mean_response_time:.3f}s."
    )
    print()
    print("Schedule trace (adaptive):")
    for record in sorted(adaptive.schedule.records, key=lambda r: r.started_at):
        print(
            f"  {record.task.name:34s} [{record.started_at:7.3f} -> "
            f"{record.finished_at:7.3f}]"
        )


if __name__ == "__main__":
    main()
