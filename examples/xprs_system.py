"""The XprsSystem facade: DDL, SQL, and EXPLAIN in five minutes.

Builds a small employee/department database behind the Figure-2
architecture (one master "backend" object owning catalog, optimizer,
parallelizer and scheduler), runs SQL through it, and shows the
EXPLAIN report: the chosen plan with blocking edges, the fragment
profiles, and the predicted adaptive schedule as a Gantt chart.

Run:  python examples/xprs_system.py
"""

from repro import XprsSystem


def main() -> None:
    system = XprsSystem()
    system.create_table(
        "emp",
        [("eid", "int4"), ("dept", "int4"), ("salary", "int4"), ("ename", "text")],
        [
            (i, i % 8, 1000 + (i * 37) % 2000, f"employee-{i:04d}" + "x" * 30)
            for i in range(3000)
        ],
    )
    system.create_table(
        "dept",
        [("did", "int4"), ("budget", "int4"), ("dname", "text")],
        [(i, 10_000 * (i + 1), f"department-{i}") for i in range(8)],
    )
    system.create_index("emp", "eid")

    print("Q1: top-paid employees")
    for row in system.execute(
        "SELECT ename, salary FROM emp ORDER BY salary DESC, ename ASC LIMIT 3"
    ):
        print("  ", row)

    print()
    print("Q2: headcount per department (join + group by)")
    for row in system.execute(
        "SELECT dname, count(*) AS headcount FROM emp, dept "
        "WHERE dept = did GROUP BY dname ORDER BY dname"
    ):
        print("  ", row)

    print()
    print("EXPLAIN of Q2:")
    report = system.explain(
        "SELECT dname, count(*) AS headcount FROM emp, dept "
        "WHERE dept = did GROUP BY dname"
    )
    print(report.pretty())


if __name__ == "__main__":
    main()
