"""Two-phase optimization of a multi-way join (Section 4).

Builds a 4-relation chain-join database on the real storage layer,
optimizes it in the three modes the paper discusses:

* left-deep + seqcost   — the [HONG91] baseline,
* bushy + seqcost       — bushy shapes without parallel-aware costing,
* bushy + parcost       — Section 4: plans costed by simulating the
                          adaptive scheduler over their fragments,

then shows the chosen plan trees, their fragment decompositions (with
blocking edges), the predicted schedules, and finally *executes* the
winning plan on the relational executor to verify the answer.

Run:  python examples/bushy_optimizer.py
"""

from repro import OptimizerMode, TwoPhaseOptimizer
from repro.bench import format_table
from repro.workloads import chain_join


def main() -> None:
    schema = chain_join(4, rows_per_relation=400, seed=11)
    print(f"Relations: {', '.join(schema.relation_names)}")
    print(f"Joins:     {'; '.join(repr(j) for j in schema.query.joins)}")
    print()

    optimizer = TwoPhaseOptimizer(schema.catalog)
    results = {}
    for mode in OptimizerMode:
        results[mode] = optimizer.optimize(schema.query, mode=mode)

    rows = []
    for mode, result in results.items():
        rows.append(
            (
                mode.value,
                len(result.parallel.fragments),
                f"{result.parallel.seqcost:.3f}",
                f"{result.predicted_elapsed:.3f}",
                f"{result.parallel.speedup:.2f}x",
            )
        )
    print(
        format_table(
            ["mode", "fragments", "seqcost (s)", "parcost (s)", "speedup"],
            rows,
            title="Phase 1+2 summary",
        )
    )
    print()

    best = results[OptimizerMode.BUSHY_PAR]
    print("Chosen plan (bushy + parcost):")
    print(best.plan.pretty())
    print()

    print("Fragments (tasks) and dependencies:")
    for fragment in best.parallel.fragments.fragments:
        print(
            f"  fragment {fragment.fragment_id}: root={fragment.root.label()}, "
            f"T={fragment.seq_time:.3f}s, D={fragment.io_count:.0f} ios, "
            f"C={fragment.io_rate:.1f} ios/s, deps={sorted(fragment.depends_on)}"
        )
    print()

    print("Predicted schedule (adaptive policy):")
    for record in sorted(best.parallel.schedule.records, key=lambda r: r.started_at):
        spans = ", ".join(f"{t:.3f}s:x={x:.2f}" for t, x in record.parallelism_history)
        print(
            f"  {record.task.name:30s} [{record.started_at:7.3f} -> "
            f"{record.finished_at:7.3f}]  {spans}"
        )
    print()

    rows_out = best.plan.to_operator(schema.catalog).run()
    print(f"Executed the chosen plan: {len(rows_out)} result rows.")


if __name__ == "__main__":
    main()
