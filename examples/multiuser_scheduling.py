"""Multi-user scheduling with continuous task queues.

The paper's algorithm "can be easily extended to handle a continuous
sequence of tasks ... all we need to do is to represent S_io and S_cpu
as queues."  This example feeds a Poisson stream of mixed tasks through
the continuous queues and compares:

* INTRA-ONLY vs the adaptive scheduler — throughput under arrivals;
* extreme pairing vs the shortest-job-first heuristic — "if we want to
  minimize the response time of individual queries instead of the
  total elapsed time, a shortest-job-first heuristic can be used."

Run:  python examples/multiuser_scheduling.py
"""

from statistics import mean

from repro import FluidSimulator, InterWithAdjPolicy, IntraOnlyPolicy, paper_machine
from repro.bench import format_table
from repro.workloads import (
    WorkloadConfig,
    WorkloadKind,
    generate_tasks,
    poisson_arrivals,
)


def main() -> None:
    machine = paper_machine()
    config = WorkloadConfig(n_tasks=20, max_pages=2000)

    rows = []
    for policy_factory, label in [
        (lambda: IntraOnlyPolicy(), "INTRA-ONLY"),
        (lambda: InterWithAdjPolicy(), "INTER-WITH-ADJ (extreme pairing)"),
        (lambda: InterWithAdjPolicy(pairing="sjf"), "INTER-WITH-ADJ (SJF)"),
    ]:
        response_times = []
        makespans = []
        waits = []
        for seed in range(5):
            tasks = generate_tasks(
                WorkloadKind.RANDOM, seed=seed, machine=machine, config=config
            )
            stream = poisson_arrivals(tasks, rate_per_second=0.15, seed=seed)
            result = FluidSimulator(machine).run(list(stream), policy_factory())
            response_times.append(result.mean_response_time)
            makespans.append(result.elapsed)
            waits.append(mean(r.wait_time for r in result.records))
        rows.append(
            (
                label,
                f"{mean(response_times):8.2f}",
                f"{mean(waits):8.2f}",
                f"{mean(makespans):8.2f}",
            )
        )

    print(
        format_table(
            ["scheduler", "mean response (s)", "mean wait (s)", "makespan (s)"],
            rows,
            title=(
                "Multi-user: 20 tasks arriving as a Poisson stream "
                "(mean over 5 seeds)"
            ),
        )
    )
    print()
    print(
        "The adaptive scheduler overlaps IO-bound and CPU-bound queries, so\n"
        "queries wait less than under INTRA-ONLY; SJF pairing further\n"
        "trades makespan for response time, as Section 2.5 suggests."
    )


if __name__ == "__main__":
    main()
