"""The system catalog: relation name → schema, storage, stats, indexes.

The catalog deliberately does not import the storage layer; it holds the
heap file and index objects the caller registers, so the dependency
points storage → catalog only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import DuplicateRelationError, UnknownRelationError
from .schema import Schema
from .statistics import RelationStats


@dataclass
class IndexEntry:
    """Catalog record for one index.

    Attributes:
        name: index name, unique within the catalog.
        column: indexed column name.
        clustered: whether the heap is ordered on the indexed column.
            The paper's workload uses an *unclustered* index on ``a`` to
            make IO-bound index scans possible.
        index: the index object (a ``repro.storage.btree.BTreeIndex``).
    """

    name: str
    column: str
    clustered: bool
    index: Any


@dataclass
class TableEntry:
    """Catalog record for one relation."""

    name: str
    schema: Schema
    heap: Any
    stats: RelationStats | None = None
    indexes: dict[str, IndexEntry] = field(default_factory=dict)

    def index_on(self, column: str) -> IndexEntry | None:
        """The first index on ``column``, or None."""
        for entry in self.indexes.values():
            if entry.column == column:
                return entry
        return None


class Catalog:
    """A simple in-memory system catalog."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}

    def create_table(self, name: str, schema: Schema, heap: Any) -> TableEntry:
        """Register a relation.

        Raises:
            DuplicateRelationError: if the name is taken.
        """
        if name in self._tables:
            raise DuplicateRelationError(name)
        entry = TableEntry(name=name, schema=schema, heap=heap)
        self._tables[name] = entry
        return entry

    def drop_table(self, name: str) -> None:
        """Remove a relation.

        Raises:
            UnknownRelationError: if no such relation exists.
        """
        if name not in self._tables:
            raise UnknownRelationError(name)
        del self._tables[name]

    def table(self, name: str) -> TableEntry:
        """Look up a relation by name.

        Raises:
            UnknownRelationError: if no such relation exists.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether a relation called ``name`` exists."""
        return name in self._tables

    def tables(self) -> Iterator[TableEntry]:
        """Iterate over all registered relations."""
        return iter(self._tables.values())

    def set_stats(self, name: str, stats: RelationStats) -> None:
        """Attach statistics to a relation (ANALYZE)."""
        self.table(name).stats = stats

    def add_index(
        self,
        table_name: str,
        index_name: str,
        column: str,
        index: Any,
        *,
        clustered: bool = False,
    ) -> IndexEntry:
        """Register an index on an existing relation."""
        table = self.table(table_name)
        if index_name in table.indexes:
            raise DuplicateRelationError(index_name)
        table.schema.index_of(column)  # raises UnknownColumnError if bad
        entry = IndexEntry(
            name=index_name, column=column, clustered=clustered, index=index
        )
        table.indexes[index_name] = entry
        return entry

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables
