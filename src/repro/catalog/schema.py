"""Relation schemas and row encoding.

A :class:`Schema` is an ordered list of named, typed columns.  Rows are
plain Python tuples positionally matching the schema; the schema knows
how to validate, encode and decode them for storage in slotted pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..errors import SchemaError, UnknownColumnError
from .types import ColumnType, type_by_name

Row = tuple


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")

    def __repr__(self) -> str:
        return f"{self.name}={self.type.name}"


class Schema:
    """An ordered collection of columns with row codec support.

    Supports construction either from :class:`Column` objects or from
    ``(name, type_name)`` pairs::

        Schema.of(("a", "int4"), ("b", "text"))
    """

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    @classmethod
    def of(cls, *specs: tuple[str, str]) -> "Schema":
        """Build a schema from ``(name, type_name)`` pairs."""
        return cls([Column(name, type_by_name(tname)) for name, tname in specs])

    # -- container protocol ---------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, key: int | str) -> Column:
        if isinstance(key, str):
            return self._columns[self.index_of(key)]
        return self._columns[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self._columns)
        return f"Schema({inner})"

    def index_of(self, name: str) -> int:
        """Position of the column called ``name``.

        Raises:
            UnknownColumnError: if no such column exists.
        """
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name) from None

    def has_column(self, name: str) -> bool:
        """Whether a column called ``name`` exists."""
        return name in self._index

    def names(self) -> tuple[str, ...]:
        """The column names, in schema order."""
        return tuple(c.name for c in self._columns)

    # -- schema algebra (used by joins/projections) ---------------------------

    def concat(self, other: "Schema", *, prefixes: tuple[str, str] | None = None) -> "Schema":
        """Schema of the concatenation of rows from ``self`` and ``other``.

        Column-name clashes are resolved with ``prefixes`` (e.g. the two
        relation names); without prefixes a clash raises SchemaError.
        """
        left, right = list(self._columns), list(other._columns)
        clash = {c.name for c in left} & {c.name for c in right}
        if clash and prefixes is None:
            raise SchemaError(f"column name clash in join schema: {sorted(clash)}")
        if clash:
            lp, rp = prefixes  # type: ignore[misc]
            left = [
                Column(f"{lp}_{c.name}", c.type) if c.name in clash else c for c in left
            ]
            right = [
                Column(f"{rp}_{c.name}", c.type) if c.name in clash else c for c in right
            ]
        return Schema(left + right)

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to the given column names, in the given order."""
        return Schema([self[self.index_of(n)] for n in names])

    # -- row codec -------------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Coerce a row to this schema, raising SchemaError on mismatch."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self._columns)} columns"
            )
        return tuple(col.type.validate(v) for col, v in zip(self._columns, row))

    def encode_row(self, row: Sequence[Any]) -> bytes:
        """Encode a validated row to its storage representation."""
        parts = [col.type.encode(v) for col, v in zip(self._columns, row)]
        return b"".join(parts)

    def decode_row(self, data: bytes, offset: int = 0) -> Row:
        """Decode one row starting at ``offset``."""
        values = []
        for col in self._columns:
            value, consumed = col.type.decode(data, offset)
            values.append(value)
            offset += consumed
        return tuple(values)

    def encoded_size(self, row: Sequence[Any]) -> int:
        """Encoded size in bytes of a validated row."""
        return sum(
            col.type.encoded_size(v) for col, v in zip(self._columns, row)
        )
