"""Column types for the reproduction's relational layer.

XPRS is built on Postgres; the paper's workload uses the schema
``r1(a = int4, b = text)`` where ``b`` is a variable-size string used to
control tuple sizes.  We implement the small type system those
experiments need: 4-byte integers, 8-byte floats and variable-length
text, each with a fixed-layout binary encoding so records can be stored
in slotted pages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from ..errors import SchemaError

_INT4 = struct.Struct("<i")
_FLOAT8 = struct.Struct("<d")
_LEN = struct.Struct("<I")

#: Range of a 4-byte signed integer.
INT4_MIN = -(2**31)
INT4_MAX = 2**31 - 1


@dataclass(frozen=True)
class ColumnType:
    """A column type with a binary encoding.

    Attributes:
        name: SQL-ish type name (``int4``, ``float8``, ``text``).
        fixed_size: encoded size in bytes for fixed-width types, or
            ``None`` for variable-width types.
    """

    name: str
    fixed_size: int | None

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to this type, or raise SchemaError."""
        raise NotImplementedError

    def encode(self, value: Any) -> bytes:
        """Encode a validated value to bytes."""
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> tuple[Any, int]:
        """Decode a value at ``offset``; return (value, bytes consumed)."""
        raise NotImplementedError

    def encoded_size(self, value: Any) -> int:
        """Encoded size in bytes of a validated value."""
        if self.fixed_size is not None:
            return self.fixed_size
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


class Int4Type(ColumnType):
    """4-byte signed integer, like Postgres ``int4``.

    Encoded as a null-flag byte followed by 4 payload bytes (zeroed for
    NULL), so every int4 costs 5 bytes on disk.
    """

    def __init__(self) -> None:
        super().__init__(name="int4", fixed_size=5)

    def validate(self, value: Any) -> int | None:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"int4 requires an int or None, got {value!r}")
        if not INT4_MIN <= value <= INT4_MAX:
            raise SchemaError(f"int4 out of range: {value}")
        return value

    def encode(self, value: int | None) -> bytes:
        if value is None:
            return b"\x00" + b"\x00\x00\x00\x00"
        return b"\x01" + _INT4.pack(value)

    def decode(self, data: bytes, offset: int) -> tuple[int | None, int]:
        if data[offset] == 0:
            return None, 5
        (value,) = _INT4.unpack_from(data, offset + 1)
        return value, 5


class Float8Type(ColumnType):
    """8-byte IEEE double, like Postgres ``float8``.

    Encoded as a null-flag byte followed by 8 payload bytes.
    """

    def __init__(self) -> None:
        super().__init__(name="float8", fixed_size=9)

    def validate(self, value: Any) -> float | None:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"float8 requires a number or None, got {value!r}")
        return float(value)

    def encode(self, value: float | None) -> bytes:
        if value is None:
            return b"\x00" + b"\x00" * 8
        return b"\x01" + _FLOAT8.pack(value)

    def decode(self, data: bytes, offset: int) -> tuple[float | None, int]:
        if data[offset] == 0:
            return None, 9
        (value,) = _FLOAT8.unpack_from(data, offset + 1)
        return value, 9


class TextType(ColumnType):
    """Variable-length string, like Postgres ``text``.

    ``None`` is stored as a zero-length marker distinct from the empty
    string (length prefix ``0xFFFFFFFF``), because the paper's most
    CPU-bound relation sets ``b`` to NULL in every tuple.
    """

    _NULL_MARKER = 0xFFFFFFFF

    def __init__(self) -> None:
        super().__init__(name="text", fixed_size=None)

    def validate(self, value: Any) -> str | None:
        if value is None:
            return None
        if not isinstance(value, str):
            raise SchemaError(f"text requires a str or None, got {value!r}")
        return value

    def encode(self, value: str | None) -> bytes:
        if value is None:
            return _LEN.pack(self._NULL_MARKER)
        raw = value.encode("utf-8")
        if len(raw) >= self._NULL_MARKER:
            raise SchemaError("text value too large to encode")
        return _LEN.pack(len(raw)) + raw

    def decode(self, data: bytes, offset: int) -> tuple[str | None, int]:
        (length,) = _LEN.unpack_from(data, offset)
        if length == self._NULL_MARKER:
            return None, 4
        start = offset + 4
        return data[start : start + length].decode("utf-8"), 4 + length

    def encoded_size(self, value: str | None) -> int:
        if value is None:
            return 4
        return 4 + len(value.encode("utf-8"))


#: Singleton instances — types are stateless, share them.
INT4 = Int4Type()
FLOAT8 = Float8Type()
TEXT = TextType()

_BY_NAME = {t.name: t for t in (INT4, FLOAT8, TEXT)}


def type_by_name(name: str) -> ColumnType:
    """Look up a column type by its SQL-ish name.

    Raises:
        SchemaError: if the name is not a known type.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise SchemaError(f"unknown column type: {name!r}") from None
