"""Catalog subsystem: types, schemas, statistics and the system catalog."""

from .catalog import Catalog, IndexEntry, TableEntry
from .schema import Column, Row, Schema
from .statistics import (
    ColumnStats,
    RelationStats,
    build_column_stats,
    build_relation_stats,
    equi_depth_histogram,
)
from .types import FLOAT8, INT4, INT4_MAX, INT4_MIN, TEXT, ColumnType, type_by_name

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "ColumnType",
    "FLOAT8",
    "INT4",
    "INT4_MAX",
    "INT4_MIN",
    "IndexEntry",
    "RelationStats",
    "Row",
    "Schema",
    "TEXT",
    "TableEntry",
    "build_column_stats",
    "build_relation_stats",
    "equi_depth_histogram",
    "type_by_name",
]
