"""Relation statistics for cost estimation.

The optimizer (Section 4) needs conventional System-R-style statistics:
cardinality, page count, per-column distinct counts, min/max, and an
equi-depth histogram for range selectivities.  XPRS keeps "data
distribution information in the system catalog or in the root node of an
index"; we keep it here and let the range-partitioning code consult it
to find balanced partitions.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column.

    Attributes:
        n_distinct: estimated number of distinct values.
        min_value / max_value: observed extrema (None for all-NULL).
        null_fraction: fraction of NULL values.
        histogram: equi-depth bucket boundaries (ascending), such that
            each adjacent pair bounds roughly the same number of rows.
    """

    n_distinct: int
    min_value: Any
    max_value: Any
    null_fraction: float = 0.0
    histogram: tuple = ()

    def selectivity_eq(self, value: Any) -> float:
        """Selectivity of ``col = value`` (uniform over distinct values)."""
        if self.n_distinct <= 0:
            return 0.0
        if self.min_value is not None and isinstance(value, (int, float)):
            if value < self.min_value or value > self.max_value:
                return 0.0
        return (1.0 - self.null_fraction) / self.n_distinct

    def selectivity_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Selectivity of ``low <= col <= high`` (either bound optional).

        Uses the histogram when available, otherwise linear
        interpolation between min and max; falls back to the System-R
        default of 1/3 for an open range when no stats apply.
        """
        if low is None and high is None:
            return 1.0 - self.null_fraction
        if self.histogram and len(self.histogram) >= 2:
            frac = self._histogram_fraction(low, high)
        elif (
            self.min_value is not None
            and self.max_value is not None
            and isinstance(self.min_value, (int, float))
        ):
            span = float(self.max_value) - float(self.min_value)
            if span <= 0:
                inside = (low is None or low <= self.min_value) and (
                    high is None or high >= self.max_value
                )
                frac = 1.0 if inside else 0.0
            else:
                lo = float(self.min_value) if low is None else max(float(low), float(self.min_value))
                hi = float(self.max_value) if high is None else min(float(high), float(self.max_value))
                frac = max(0.0, (hi - lo) / span)
        else:
            frac = 1.0 / 3.0
        del low_inclusive, high_inclusive  # bounds treated as closed; cheap approximation
        return max(0.0, min(1.0, frac * (1.0 - self.null_fraction)))

    def _histogram_fraction(self, low: Any, high: Any) -> float:
        """Fraction of rows in [low, high] according to the histogram."""
        bounds = self.histogram
        n_buckets = len(bounds) - 1

        def position(value: Any, *, right: bool) -> float:
            """Fractional bucket index of ``value`` in the histogram."""
            if right:
                i = bisect.bisect_right(bounds, value)
            else:
                i = bisect.bisect_left(bounds, value)
            if i == 0:
                return 0.0
            if i > n_buckets:
                return float(n_buckets)
            lo, hi = bounds[i - 1], bounds[i]
            if isinstance(lo, (int, float)) and hi != lo:
                inner = (float(value) - float(lo)) / (float(hi) - float(lo))
                return (i - 1) + max(0.0, min(1.0, inner))
            return float(i - 1)

        lo_pos = 0.0 if low is None else position(low, right=False)
        hi_pos = float(n_buckets) if high is None else position(high, right=True)
        return max(0.0, (hi_pos - lo_pos) / n_buckets)


@dataclass(frozen=True)
class RelationStats:
    """Statistics for one relation.

    Attributes:
        row_count: number of rows.
        page_count: number of disk pages.
        avg_row_size: mean encoded row size in bytes.
        columns: per-column statistics, keyed by column name.
    """

    row_count: int
    page_count: int
    avg_row_size: float
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def rows_per_page(self) -> float:
        """Average number of rows on each page."""
        if self.page_count == 0:
            return 0.0
        return self.row_count / self.page_count

    def column(self, name: str) -> ColumnStats | None:
        """Stats for one column, or None when unknown."""
        return self.columns.get(name)


def build_column_stats(
    values: Sequence[Any],
    *,
    n_histogram_buckets: int = 10,
) -> ColumnStats:
    """Compute :class:`ColumnStats` by scanning a column's values."""
    non_null = [v for v in values if v is not None]
    null_fraction = 0.0 if not values else 1.0 - len(non_null) / len(values)
    if not non_null:
        return ColumnStats(
            n_distinct=0, min_value=None, max_value=None, null_fraction=null_fraction
        )
    ordered = sorted(non_null)
    histogram = equi_depth_histogram(ordered, n_histogram_buckets)
    return ColumnStats(
        n_distinct=len(set(non_null)),
        min_value=ordered[0],
        max_value=ordered[-1],
        null_fraction=null_fraction,
        histogram=histogram,
    )


def equi_depth_histogram(ordered: Sequence[Any], n_buckets: int) -> tuple:
    """Equi-depth bucket boundaries over pre-sorted values.

    Returns ``n_buckets + 1`` boundaries (possibly fewer for tiny
    inputs), first = min and last = max.
    """
    if not ordered:
        return ()
    n_buckets = max(1, min(n_buckets, len(ordered)))
    bounds = [ordered[0]]
    for i in range(1, n_buckets):
        bounds.append(ordered[(i * len(ordered)) // n_buckets])
    bounds.append(ordered[-1])
    return tuple(bounds)


def build_relation_stats(
    rows: Iterable[Sequence[Any]],
    column_names: Sequence[str],
    *,
    page_count: int,
    avg_row_size: float,
    n_histogram_buckets: int = 10,
) -> RelationStats:
    """Compute full relation statistics from a row iterable."""
    materialized = [tuple(r) for r in rows]
    per_column: dict[str, ColumnStats] = {}
    for i, name in enumerate(column_names):
        per_column[name] = build_column_stats(
            [r[i] for r in materialized], n_histogram_buckets=n_histogram_buckets
        )
    return RelationStats(
        row_count=len(materialized),
        page_count=page_count,
        avg_row_size=avg_row_size,
        columns=per_column,
    )
