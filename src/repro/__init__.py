"""Reproduction of *Exploiting Inter-Operation Parallelism in XPRS*
(Wei Hong, UCB/ERL M92/3, January 1992).

The package implements the paper's adaptive scheduling algorithm — pair
the most IO-bound with the most CPU-bound task at their IO-CPU balance
point and keep the machine there by dynamically adjusting degrees of
intra-operation parallelism — together with every substrate it needs: a
striped storage layer, a relational executor, plan fragmentation, a
two-phase query optimizer with the Section-4 ``parcost`` extension, two
simulation engines and a real multiprocessing master/slave executor.

Quickstart::

    from repro import run_figure7

    result = run_figure7(engine="micro", seeds=(0, 1, 2))
    print(result.to_table())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .bench import calibrate, run_figure7
from .config import DiskProfile, MachineConfig, paper_machine
from .core import (
    BalancePoint,
    IOPattern,
    InterWithAdjPolicy,
    InterWithoutAdjPolicy,
    IntraOnlyPolicy,
    Task,
    balance_point,
    inter_time,
    inter_worthwhile,
    intra_time,
    is_cpu_bound,
    is_io_bound,
    make_task,
    max_parallelism,
)
from .errors import ReproError
from .faults import (
    CircuitBreaker,
    FaultSchedule,
    RetryPolicy,
    load_schedule,
    preset_schedule,
)
from .optimizer import JoinPredicate, OptimizerMode, Query, TwoPhaseOptimizer, parcost
from .plans import fragment_plan
from .service import QueryService, mixed_tenant_config, poisson_stream
from .sim import FluidSimulator, MicroSimulator, ScanSpec, spec_for_io_rate
from .sql import run_sql, translate as translate_sql
from .system import ExplainReport, XprsSystem
from .workloads import WorkloadKind, generate_specs, generate_tasks

__version__ = "1.0.0"

__all__ = [
    "BalancePoint",
    "CircuitBreaker",
    "DiskProfile",
    "FaultSchedule",
    "FluidSimulator",
    "IOPattern",
    "InterWithAdjPolicy",
    "InterWithoutAdjPolicy",
    "IntraOnlyPolicy",
    "JoinPredicate",
    "MachineConfig",
    "MicroSimulator",
    "OptimizerMode",
    "Query",
    "QueryService",
    "ReproError",
    "RetryPolicy",
    "ScanSpec",
    "ExplainReport",
    "Task",
    "TwoPhaseOptimizer",
    "XprsSystem",
    "WorkloadKind",
    "__version__",
    "balance_point",
    "calibrate",
    "fragment_plan",
    "generate_specs",
    "generate_tasks",
    "inter_time",
    "inter_worthwhile",
    "intra_time",
    "is_cpu_bound",
    "is_io_bound",
    "load_schedule",
    "make_task",
    "max_parallelism",
    "mixed_tenant_config",
    "paper_machine",
    "parcost",
    "poisson_stream",
    "preset_schedule",
    "run_figure7",
    "run_sql",
    "spec_for_io_rate",
    "translate_sql",
]
