"""Seeded property-based fuzzer with shrinking (repro.check pillar 3).

A :class:`Scenario` is a plain-data description of one randomized
workload: task rates, sizes, io patterns, partitioning styles, arrival
offsets, a scheduling policy, and optionally a fault schedule.
:func:`generate_scenario` derives one deterministically from a seed;
:func:`run_case` runs it through every applicable invariant and
differential check and returns failure strings; :func:`shrink` greedily
minimizes a failing scenario (drop tasks, halve sizes, simplify
patterns, drop faults) while it keeps failing, yielding the smallest
reproducer to debug.  ``python -m repro check`` drives all of this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..config import MachineConfig, paper_machine
from ..core import InterWithAdjPolicy, InterWithoutAdjPolicy, IntraOnlyPolicy
from ..core.task import IOPattern
from ..errors import ReproError
from ..sim.micro import MicroSimulator, spec_for_io_rate
from ..sim.fluid import FluidSimulator
from .differential import (
    check_executor_vs_protocol,
    check_micro_vs_fluid,
    check_optimizer_fast_path,
    check_recursion_vs_fluid,
)
from .invariants import InvariantChecker

POLICIES = ("inter-adj", "intra-only", "inter-no-adj")


@dataclass(frozen=True)
class SpecParams:
    """One fuzzed task, as shrinkable plain data."""

    io_rate: float
    n_pages: int
    pattern: str = "seq"  # "seq" | "random"
    partitioning: str = "page"  # "page" | "range"
    arrival: float = 0.0


@dataclass(frozen=True)
class Scenario:
    """One fuzz case; printable as a minimal reproducer."""

    seed: int
    specs: tuple[SpecParams, ...]
    policy: str = "inter-adj"
    faults: bool = False

    def describe(self) -> str:
        """Render the scenario as a paste-able reproducer block."""
        lines = [f"Scenario(seed={self.seed}, policy={self.policy!r}, "
                 f"faults={self.faults})"]
        for i, s in enumerate(self.specs):
            lines.append(
                f"  t{i}: io_rate={s.io_rate:.2f} n_pages={s.n_pages} "
                f"pattern={s.pattern} partitioning={s.partitioning} "
                f"arrival={s.arrival:g}"
            )
        return "\n".join(lines)


def generate_scenario(seed: int) -> Scenario:
    """Deterministically derive a scenario from one seed."""
    rng = random.Random(seed)
    n_tasks = rng.randint(2, 6)
    specs = []
    for __ in range(n_tasks):
        pattern = "random" if rng.random() < 0.25 else "seq"
        # Random io is capped by the disks' random service rate;
        # sequential by the almost-sequential rate.
        rate = rng.uniform(5.0, 30.0 if pattern == "random" else 55.0)
        partitioning = "range" if rng.random() < 0.3 else "page"
        arrival = round(rng.uniform(0.0, 2.0), 3) if rng.random() < 0.3 else 0.0
        specs.append(
            SpecParams(
                io_rate=round(rate, 2),
                n_pages=rng.randint(50, 400),
                pattern=pattern,
                partitioning=partitioning,
                arrival=arrival,
            )
        )
    return Scenario(
        seed=seed,
        specs=tuple(specs),
        policy=rng.choice(POLICIES),
        faults=rng.random() < 0.15,
    )


def _build_specs(scenario: Scenario, machine: MachineConfig):
    return [
        spec_for_io_rate(
            f"t{i}",
            machine,
            io_rate=p.io_rate,
            n_pages=p.n_pages,
            pattern=IOPattern.RANDOM if p.pattern == "random" else IOPattern.SEQUENTIAL,
            partitioning=p.partitioning,
            arrival_time=p.arrival,
        )
        for i, p in enumerate(scenario.specs)
    ]


def _policy(name: str):
    if name == "intra-only":
        return IntraOnlyPolicy(integral=True)
    if name == "inter-no-adj":
        return InterWithoutAdjPolicy(integral=True)
    return InterWithAdjPolicy(integral=True)


def run_case(
    scenario: Scenario,
    machine: MachineConfig | None = None,
    *,
    deep: bool = True,
    executor: bool = False,
) -> list[str]:
    """All applicable checks for one scenario; returns failure strings."""
    machine = machine or paper_machine()
    failures: list[str] = []
    try:
        specs = _build_specs(scenario, machine)
    except ReproError as exc:
        return [f"scenario build failed: {exc}"]
    tasks = [s.to_task(machine) for s in specs]
    policy = _policy(scenario.policy)
    invariants = InvariantChecker(collect=True, deep=deep)

    if scenario.faults:
        # Fault runs exercise the invariants under crashes and stalls;
        # the fluid engine has no fault model, so no differential.
        from ..faults.schedule import random_schedule

        schedule = random_schedule(
            scenario.seed, task_names=tuple(s.name for s in specs)
        )
        try:
            MicroSimulator(machine, faults=schedule, invariants=invariants).run(
                specs, policy
            )
        except ReproError as exc:
            failures.append(f"micro fault run raised: {exc}")
        failures.extend(invariants.violations)
        return failures

    try:
        failures.extend(
            check_micro_vs_fluid(
                specs, machine, policy=policy, invariants=invariants
            )
        )
    except ReproError as exc:
        failures.append(f"engine run raised: {exc}")
    failures.extend(invariants.violations)

    if all(p.arrival == 0.0 for p in scenario.specs):
        # The T_n(S) recursion has no arrival model.
        try:
            failures.extend(check_recursion_vs_fluid(tasks, machine))
        except ReproError as exc:
            failures.append(f"recursion check raised: {exc}")

    if scenario.seed % 5 == 0:
        failures.extend(_optimizer_case(scenario.seed))

    if executor and scenario.seed % 25 == 0:
        rng = random.Random(scenario.seed ^ 0xE0)
        failures.extend(
            check_executor_vs_protocol(
                n_rows=rng.randrange(200, 500),
                parallelism=rng.randint(1, 3),
                adjustments=(
                    (rng.randrange(5, 15), rng.randint(1, 4)),
                    (rng.randrange(15, 30), rng.randint(1, 4)),
                ),
            )
        )
    return failures


def _optimizer_case(seed: int) -> list[str]:
    """Fast-path-vs-reference on one seeded random query."""
    from ..workloads.queries import chain_join, star_join

    rng = random.Random(seed ^ 0x0F)
    if rng.random() < 0.5:
        schema = chain_join(
            rng.randint(3, 5), rows_per_relation=rng.randrange(100, 600), seed=seed
        )
    else:
        schema = star_join(
            rng.randint(2, 4),
            fact_rows=rng.randrange(200, 800),
            dimension_rows=rng.randrange(40, 160),
            seed=seed,
        )
    return check_optimizer_fast_path(schema)


# ---------------------------------------------------------------------------
# shrinking


def _candidates(scenario: Scenario):
    """Simplification steps, most aggressive first."""
    specs = scenario.specs
    if len(specs) > 1:
        for i in range(len(specs)):
            yield replace(scenario, specs=specs[:i] + specs[i + 1 :])
    if scenario.faults:
        yield replace(scenario, faults=False)
    for i, p in enumerate(specs):
        if p.n_pages > 20:
            yield replace(
                scenario,
                specs=specs[:i]
                + (replace(p, n_pages=max(10, p.n_pages // 2)),)
                + specs[i + 1 :],
            )
        if p.arrival > 0:
            yield replace(
                scenario,
                specs=specs[:i] + (replace(p, arrival=0.0),) + specs[i + 1 :],
            )
        if p.pattern == "random":
            yield replace(
                scenario,
                specs=specs[:i] + (replace(p, pattern="seq"),) + specs[i + 1 :],
            )
        if p.partitioning == "range":
            yield replace(
                scenario,
                specs=specs[:i]
                + (replace(p, partitioning="page"),)
                + specs[i + 1 :],
            )
    if scenario.policy != "intra-only":
        yield replace(scenario, policy="intra-only")


def shrink(
    scenario: Scenario,
    machine: MachineConfig | None = None,
    *,
    max_steps: int = 200,
    run=None,
) -> Scenario:
    """Greedily minimize a failing scenario while it keeps failing.

    ``run`` defaults to :func:`run_case`; tests inject predicates to
    exercise the shrinker without needing a real engine bug on hand.
    """
    machine = machine or paper_machine()
    if run is None:
        run = run_case
    if not run(scenario, machine):
        return scenario
    current = scenario
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            steps += 1
            if run(candidate, machine):
                current = candidate
                improved = True
                break
            if steps >= max_steps:
                break
    return current


# ---------------------------------------------------------------------------
# fuzz campaign + smoke


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    cases: int = 0
    failures: list[tuple[Scenario, list[str]]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    n: int,
    *,
    seed: int = 0,
    machine: MachineConfig | None = None,
    deep: bool = True,
    executor: bool = False,
    do_shrink: bool = False,
    progress=None,
) -> FuzzReport:
    """Run ``n`` seeded cases starting at ``seed``."""
    machine = machine or paper_machine()
    report = FuzzReport()
    for i in range(n):
        scenario = generate_scenario(seed + i)
        failures = run_case(
            scenario, machine, deep=deep, executor=executor
        )
        report.cases += 1
        if failures:
            if do_shrink:
                scenario = shrink(scenario, machine)
                failures = run_case(scenario, machine, deep=deep)
            report.failures.append((scenario, failures))
        if progress is not None and (i + 1) % 25 == 0:
            progress(i + 1, n, len(report.failures))
    return report


def smoke_lines(seed: int = 0) -> list[str]:
    """One quick pass over every pillar; lines for the CLI smoke."""
    machine = paper_machine()
    lines: list[str] = []

    def report(label: str, failures: list[str]) -> None:
        if failures:
            lines.append(f"smoke failed: {label}: {failures[0]}")
        else:
            lines.append(f"smoke ok: {label}")

    inv = InvariantChecker(collect=True)
    scenario = generate_scenario(seed)
    report("invariants+micro-vs-fluid", run_case(scenario, machine))

    from ..workloads.mixes import WorkloadKind, generate_specs

    for kind in (WorkloadKind.ALL_IO, WorkloadKind.RANDOM):
        specs = generate_specs(kind, seed=seed, machine=machine)
        report(
            f"differential {kind.name.lower()}",
            check_micro_vs_fluid(specs, machine, invariants=inv),
        )
    report("invariant hooks", [] if inv.ok else inv.violations)

    from ..core import make_task

    tasks = [
        make_task("io", io_rate=55.0, seq_time=12.0),
        make_task("cpu", io_rate=8.0, seq_time=20.0),
    ]
    report("recursion-vs-fluid", check_recursion_vs_fluid(tasks, machine))
    report("optimizer fast-path", _optimizer_case(seed))
    report(
        "executor exactly-once",
        check_executor_vs_protocol(
            n_rows=300, parallelism=2, adjustments=((8, 4), (20, 2))
        ),
    )
    return lines
