"""Runtime invariant checker for both execution engines.

The engines accept an ``invariants=`` argument (default ``None``) and
call back into it only from *cold* sites — task start, adjustment
apply, task completion, end of run for the micro engine; once per
event for the fluid engine, whose events are coarse.  With the checker
off every hook is a single ``is not None`` test, following the same
zero-cost-when-off idiom as the tracer, so corpus byte-identity and
the perf benches are untouched.

Invariant catalogue (see docs/CHECKING.md for the derivations):

* **page conservation** — across any number of adjustment rounds,
  crashes and resumes, ``pages_done + inflight + unclaimed ==
  n_pages`` and no page (or key) is claimable by two slaves.
* **virtual-clock monotonicity** — the engine clock never runs
  backwards between hook sites.
* **queue non-negativity** — ``0 <= free_processors <= N``.
* **parallelism bounds** — every running degree satisfies
  ``1 <= x <= N`` and ``x <= maxp`` (pattern-aware bandwidth wall,
  with half-a-processor slack for the micro engine's integral
  rounding).
* **utilization** — CPU and IO utilization of a finished run are
  ``<= 1 + epsilon``.
* **protocol-generation monotonicity** — a run's ``adjust_epoch``
  only ever grows.
* **checkpoint roundtrip** — at every round boundary, the engine's
  checkpoint survives ``to_dict -> json -> from_dict`` losslessly
  (``deep=True`` only; this one is O(state) per boundary).

The checker is one-run state (it remembers the last clock and epoch);
build a fresh one per run or call :meth:`reset`.
"""

from __future__ import annotations

import json

from ..errors import InvariantViolation

_ABS_EPS = 1e-9


class InvariantChecker:
    """Collects or raises invariant violations from engine hook sites.

    Args:
        epsilon: relative slack on utilization and bounds checks.
        collect: record violations in :attr:`violations` instead of
            raising :class:`~repro.errors.InvariantViolation` at the
            first one (the fuzzer collects; tests usually raise).
        deep: also verify the checkpoint dict/JSON roundtrip at micro
            round boundaries (O(state) per boundary, so opt-out for
            large workloads).
    """

    def __init__(
        self,
        *,
        epsilon: float = 1e-6,
        collect: bool = False,
        deep: bool = True,
    ) -> None:
        self.epsilon = epsilon
        self.collect = collect
        self.deep = deep
        self.violations: list[str] = []
        self.checks = 0
        self._last_clock = float("-inf")
        self._last_epoch: dict[int, int] = {}

    def reset(self) -> None:
        """Clear violations, counters and all per-run state."""
        self.violations.clear()
        self.checks = 0
        self.new_run()

    def new_run(self) -> None:
        """Forget per-run state (clock, epochs) but keep violations."""
        self._last_clock = float("-inf")
        self._last_epoch.clear()

    @property
    def ok(self) -> bool:
        return not self.violations

    def _fail(self, site: str, detail: str) -> None:
        if self.collect:
            self.violations.append(f"[{site}] {detail}")
            return
        raise InvariantViolation(site, detail)

    def _clock(self, site: str, now: float) -> None:
        if now < self._last_clock - _ABS_EPS:
            self._fail(
                site,
                f"clock went backwards: {now!r} after {self._last_clock!r}",
            )
        self._last_clock = max(self._last_clock, now)

    # -- micro engine ---------------------------------------------------------

    def micro_site(self, engine, run, site: str) -> None:
        """Hook for the micro engine's cold sites.

        ``engine`` is a ``_MicroEngine`` and ``run`` the ``_TaskRun``
        the site acted on (``None`` for engine-wide sites); both are
        duck-typed so this module imports nothing from ``repro.sim``.
        """
        self.checks += 1
        label = f"micro:{site}"
        self._clock(label, engine.clock)
        machine = engine.machine
        n = machine.processors
        free = engine.free_processors
        if not 0 <= free <= n:
            self._fail(label, f"free_processors={free} outside [0, {n}]")
        for other in engine.running.values():
            self._check_parallelism(
                label, other, machine, integral_slack=0.5
            )
        if run is not None:
            epoch = run.adjust_epoch
            last = self._last_epoch.get(run.task.task_id, -1)
            if epoch < last:
                self._fail(
                    label,
                    f"{run.task.name}: adjust_epoch regressed {last} -> {epoch}",
                )
            self._last_epoch[run.task.task_id] = max(last, epoch)
            if not run.adjusting:
                self._check_conservation(label, run)
        if (
            self.deep
            and site in ("adjust", "complete")
            and not any(r.adjusting for r in engine.running.values())
        ):
            self._check_checkpoint_roundtrip(label, engine)

    def micro_end(self, engine, result) -> None:
        """Hook at the end of a micro run, with its ScheduleResult."""
        self.checks += 1
        label = "micro:end"
        eps = self.epsilon
        if result.cpu_utilization > 1.0 + eps:
            self._fail(
                label, f"cpu_utilization={result.cpu_utilization!r} > 1"
            )
        if result.io_utilization > 1.0 + eps:
            self._fail(label, f"io_utilization={result.io_utilization!r} > 1")
        elapsed = result.elapsed
        for disk in engine.disks:
            if disk.busy_time > elapsed * (1.0 + eps) + _ABS_EPS:
                self._fail(
                    label,
                    f"disk {disk.disk_id} busy {disk.busy_time!r}s in an "
                    f"{elapsed!r}s run",
                )

    def _check_parallelism(
        self, label: str, run, machine, *, integral_slack: float
    ) -> None:
        x = run.parallelism
        n = machine.processors
        eps = self.epsilon
        if not 1.0 - eps <= x <= n + eps:
            self._fail(
                label, f"{run.task.name}: parallelism {x!r} outside [1, {n}]"
            )
        task = run.task
        if task.io_rate > 0:
            # The pattern-aware bandwidth wall (classify.max_parallelism
            # inlined to keep this module import-free).  The micro engine
            # rounds continuous degrees to integers, so allow half a
            # processor of rounding slack.
            from ..core.classify import max_parallelism

            maxp = max_parallelism(task, machine)
            if x > maxp * (1.0 + eps) + integral_slack:
                self._fail(
                    label,
                    f"{task.name}: parallelism {x!r} exceeds maxp {maxp!r}",
                )

    def _check_conservation(self, label: str, run) -> None:
        """pages_done + inflight + unclaimed == n_pages, no double claim."""
        name = run.task.name
        n_pages = run.spec.n_pages
        inflight: list[int] = []
        claims: dict[int, int] = {}
        for slave in sorted(run.slaves.values(), key=lambda s: s.slave_id):
            if slave.crashed:
                continue
            if slave.busy and slave.inflight_page is not None:
                inflight.append(slave.inflight_page)
            if run.page_mode:
                pos = slave.cursor
                for seg in slave.segments:
                    page = seg.first_at_or_after(pos)
                    while page is not None:
                        claims[page] = claims.get(page, 0) + 1
                        pos = page + 1
                        page = page + seg.stride
                        if page > seg.hi:
                            page = None
            else:
                for lo, hi in slave.intervals:
                    for key in range(lo, hi + 1):
                        claims[key] = claims.get(key, 0) + 1
        harvest = getattr(run, "harvest", None)
        if harvest:
            for intervals in harvest.values():
                for lo, hi in intervals:
                    for key in range(lo, hi + 1):
                        claims[key] = claims.get(key, 0) + 1
        doubled = sorted(p for p, c in claims.items() if c > 1)
        if doubled:
            self._fail(
                label,
                f"{name}: pages claimable by two slaves: {doubled[:8]}",
            )
        overlap = sorted(set(inflight) & set(claims))
        if overlap:
            self._fail(
                label,
                f"{name}: in-flight pages still claimable: {overlap[:8]}",
            )
        if len(inflight) != len(set(inflight)):
            self._fail(label, f"{name}: page in flight twice: {inflight}")
        total = run.pages_done + len(inflight) + len(claims)
        if total != n_pages:
            self._fail(
                label,
                f"{name}: page conservation violated — done={run.pages_done} "
                f"inflight={len(inflight)} unclaimed={len(claims)} "
                f"!= n_pages={n_pages}",
            )

    def _check_checkpoint_roundtrip(self, label: str, engine) -> None:
        checkpoint = engine.checkpoint()
        wire = json.loads(json.dumps(checkpoint.to_dict()))
        restored = type(checkpoint).from_dict(wire)
        if restored != checkpoint:
            self._fail(
                label,
                "checkpoint changed across to_dict/json/from_dict at "
                f"t={checkpoint.taken_at!r}",
            )

    # -- fluid engine ---------------------------------------------------------

    def fluid_event(self, state, *, machine, cpu_busy: float) -> None:
        """Hook after each fluid event's advance+settle."""
        self.checks += 1
        label = "fluid:event"
        self._clock(label, state.clock)
        n = machine.processors
        eps = self.epsilon
        for run in state.running:
            self._check_parallelism(label, run, machine, integral_slack=0.0)
            if run.remaining < -1e-6:
                self._fail(
                    label,
                    f"{run.task.name}: remaining work {run.remaining!r} < 0",
                )
        if cpu_busy > n * state.clock * (1.0 + eps) + _ABS_EPS:
            self._fail(
                label,
                f"cpu_busy={cpu_busy!r} exceeds {n} processors x "
                f"{state.clock!r}s",
            )

    def fluid_end(self, result) -> None:
        """Hook at the end of a fluid run, with its ScheduleResult."""
        self.checks += 1
        label = "fluid:end"
        eps = self.epsilon
        if result.cpu_utilization > 1.0 + eps:
            self._fail(
                label, f"cpu_utilization={result.cpu_utilization!r} > 1"
            )
        if result.io_utilization > 1.0 + eps:
            self._fail(label, f"io_utilization={result.io_utilization!r} > 1")
