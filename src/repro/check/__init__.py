"""repro.check — runtime invariants, differential testing and fuzzing.

Three pillars (see docs/CHECKING.md):

* :class:`InvariantChecker` — opt-in runtime assertions wired into both
  engines via their ``invariants=`` argument; zero-cost when off.
* :mod:`repro.check.differential` — the same randomized workload run
  through micro-vs-fluid, recursion-vs-fluid, optimizer
  fast-vs-reference, and the real executor vs the simulated protocol,
  with bounded-divergence comparisons.
* :mod:`repro.check.fuzz` — a seeded scenario generator, property
  runner and shrinker behind ``python -m repro check``.
"""

from __future__ import annotations

from .invariants import InvariantChecker

__all__ = ["InvariantChecker"]
