"""Differential checks: run the same workload through independent paths.

Each check returns a list of divergence strings (empty = agreement), so
the fuzzer can aggregate them and tests can assert emptiness.  The four
pairs, and what "agreement" means for each:

* **micro vs fluid** — same specs, same integral policy.  The engines
  model the same Section-2 schedule at different granularity (pages vs
  rates), so elapsed time, io utilization and CPU utilization must
  agree to a *bounded* divergence; exact equality is not expected.
  CPU utilization is compared like-with-like in both semantics —
  *occupancy* (processors held, the fluid engine's native integral)
  against occupancy, and *service* (processors computing, the micro
  engine's native per-page sum) against service — now that each engine
  reports both; comparing one engine's occupancy against the other's
  service would diverge by ~0.45 on IO-heavy mixes and told us
  nothing.  See docs/CHECKING.md.
* **recursion vs fluid** — the ``T_n(S)`` closed-form recursion and
  the fluid engine with zero adjustment overhead are the same
  function; they must agree to numerical tolerance (1e-4 relative).
* **optimizer fast path vs reference** — byte-identical plan shape and
  bit-identical parcost on every query; the fast path promises plan
  identity, so *any* difference is a bug.
* **real executor vs protocol semantics** — the multiprocessing
  Figure-5/6 executor must deliver every row exactly once under any
  adjustment schedule, the same exactly-once guarantee the micro
  engine's conservation invariant asserts for the simulated protocol.
"""

from __future__ import annotations

from ..config import MachineConfig, paper_machine
from ..core import InterWithAdjPolicy, make_task
from ..core.recursion import elapsed_time_recursion
from ..sim.fluid import FluidSimulator
from ..sim.micro import MicroSimulator

#: Bounded-divergence tolerances for micro-vs-fluid, calibrated over
#: the seeded workload mixes and fuzz campaigns.  Three regimes, from
#: tight to loose (see docs/CHECKING.md for the mechanics):
#:
#: * page-partitioned sequential scans agree tightly (worst observed
#:   rel elapsed 0.17 across the seeded mixes);
#: * random-io tasks diverge more — micro simulates per-disk queueing,
#:   and integral slaves over 4 disks leave disks idle in ways the
#:   fluid bandwidth split cannot see (a lone random scan shows ~0.13);
#: * range-partitioned (Figure 6) scans can phase-lock: contiguous key
#:   intervals over round-robin striping make every slave rotate disks
#:   in step, and when interval starts collide mod ``disks`` one disk
#:   serves two slaves every cycle while another idles (a lone 5-slave
#:   range scan shows ~0.55).  Inherent to the protocol, not a bug —
#:   recorded in ROADMAP "Open items".
REL_ELAPSED_SEQ = 0.25
REL_ELAPSED_RANDOM = 0.45
REL_ELAPSED_RANGE = 0.65
ABS_IO_UTIL = 0.25
ABS_IO_UTIL_LOOSE = 0.35
#: CPU utilization, compared per semantics (occupancy vs occupancy,
#: service vs service).  Worst observed across the seeded mixes (four
#: kinds x four seeds) is 0.026; the loose tier covers random io's
#: disk-queueing artifacts, and the range tier covers Figure-6
#: phase-lock, where slaves hold their processors through serialized
#: disk rotations (worst observed 0.27 over the 100-seed fuzz
#: campaign) — the same protocol artifact behind REL_ELAPSED_RANGE.
ABS_CPU_UTIL = 0.10
ABS_CPU_UTIL_LOOSE = 0.20
ABS_CPU_UTIL_RANGE = 0.35


def check_micro_vs_fluid(
    specs,
    machine: MachineConfig | None = None,
    *,
    policy=None,
    invariants=None,
    rel_elapsed: float | None = None,
    abs_io_util: float | None = None,
    abs_cpu_util: float | None = None,
) -> list[str]:
    """Run ``specs`` through both engines; return bounded divergences."""
    from ..core.task import IOPattern

    machine = machine or paper_machine()
    policy = policy or InterWithAdjPolicy(integral=True)
    any_random = any(s.pattern == IOPattern.RANDOM for s in specs)
    any_range = any(s.partitioning == "range" for s in specs)
    if rel_elapsed is None:
        rel_elapsed = REL_ELAPSED_SEQ
        if any_random:
            rel_elapsed = REL_ELAPSED_RANDOM
        if any_range:
            rel_elapsed = REL_ELAPSED_RANGE
    if abs_io_util is None:
        abs_io_util = (
            ABS_IO_UTIL_LOOSE if any_random or any_range else ABS_IO_UTIL
        )
    if abs_cpu_util is None:
        abs_cpu_util = ABS_CPU_UTIL
        if any_random:
            abs_cpu_util = ABS_CPU_UTIL_LOOSE
        if any_range:
            abs_cpu_util = ABS_CPU_UTIL_RANGE
    tasks = [spec.to_task(machine) for spec in specs]
    micro = MicroSimulator(machine, invariants=invariants).run(specs, policy)
    if invariants is not None:
        invariants.new_run()
    fluid = FluidSimulator(machine, invariants=invariants).run(tasks, policy)
    if invariants is not None:
        invariants.new_run()
    divergences: list[str] = []
    denom = max(fluid.elapsed, 1e-9)
    rel = abs(micro.elapsed - fluid.elapsed) / denom
    if rel > rel_elapsed:
        divergences.append(
            f"micro-vs-fluid elapsed diverges: micro={micro.elapsed:.4f} "
            f"fluid={fluid.elapsed:.4f} (rel {rel:.3f} > {rel_elapsed})"
        )
    d_io = abs(micro.io_utilization - fluid.io_utilization)
    if d_io > abs_io_util:
        divergences.append(
            f"micro-vs-fluid io utilization diverges: "
            f"micro={micro.io_utilization:.3f} "
            f"fluid={fluid.io_utilization:.3f} (delta {d_io:.3f})"
        )
    for semantics in ("occupancy", "service"):
        attr = f"cpu_utilization_{semantics}"
        d_cpu = abs(getattr(micro, attr) - getattr(fluid, attr))
        if d_cpu > abs_cpu_util:
            divergences.append(
                f"micro-vs-fluid cpu utilization ({semantics}) diverges: "
                f"micro={getattr(micro, attr):.3f} "
                f"fluid={getattr(fluid, attr):.3f} (delta {d_cpu:.3f})"
            )
    return divergences


def check_recursion_vs_fluid(
    tasks, machine: MachineConfig | None = None, *, rel: float = 1e-4
) -> list[str]:
    """The closed-form recursion and the overhead-free fluid engine."""
    machine = machine or paper_machine()
    recursion = elapsed_time_recursion(list(tasks), machine)
    fluid = (
        FluidSimulator(machine, adjustment_overhead=0.0)
        .run(list(tasks), InterWithAdjPolicy())
        .elapsed
    )
    if abs(fluid - recursion) > rel * max(abs(recursion), 1.0):
        return [
            f"recursion-vs-fluid elapsed diverges: recursion={recursion!r} "
            f"fluid={fluid!r}"
        ]
    return []


def check_optimizer_fast_path(schema, *, spaces=("left-deep", "right-deep", "bushy")) -> list[str]:
    """Fast path must reproduce the reference plan bit-for-bit."""
    from ..optimizer import (
        OptimizerCaches,
        ParcostObjective,
        enumerate_space,
        parcost,
        plan_shape_key,
    )

    divergences: list[str] = []
    for space in spaces:
        chosen = {}
        for fast_path in (False, True):
            caches = OptimizerCaches() if fast_path else None
            objective = ParcostObjective(schema.catalog, caches=caches)
            stats = caches.stats if caches is not None else None
            plan = enumerate_space(
                schema.query, schema.catalog, objective, space=space, stats=stats
            )
            chosen[fast_path] = (
                plan_shape_key(plan),
                parcost(plan, schema.catalog).hex(),
            )
        if chosen[False] != chosen[True]:
            divergences.append(
                f"optimizer fast path diverges in {space}: "
                f"reference={chosen[False]} fast={chosen[True]}"
            )
    return divergences


def check_executor_vs_protocol(
    *,
    n_rows: int = 400,
    parallelism: int = 2,
    adjustments=(),
) -> list[str]:
    """The real mp executor delivers every row exactly once.

    This is the executor-side twin of the micro engine's page
    conservation invariant: across the same Figure-5 adjustment
    schedule, the simulated protocol conserves pages and the real one
    must conserve rows.
    """
    from ..catalog import Schema
    from ..parallel import AdjustmentPlan, ParallelSeqScan
    from ..storage import DiskArray, HeapFile

    heap = HeapFile(
        Schema.of(("a", "int4"), ("b", "text")),
        DiskArray(MachineConfig(processors=2, disks=2)),
        name="check",
    )
    heap.insert_many([(i, f"p-{i}" + "x" * 40) for i in range(n_rows)])
    plans = [AdjustmentPlan(after_pages=a, parallelism=p) for a, p in adjustments]
    report = ParallelSeqScan(heap, parallelism=parallelism, adjustments=plans).run()
    divergences: list[str] = []
    got = sorted(r[0] for r in report.rows)
    if got != list(range(n_rows)):
        missing = sorted(set(range(n_rows)) - set(got))
        extra = sorted(k for k in set(got) if got.count(k) > 1)
        divergences.append(
            f"executor row conservation violated: missing={missing[:8]} "
            f"duplicated={extra[:8]}"
        )
    if report.pages_read != heap.page_count:
        divergences.append(
            f"executor page count diverges: read {report.pages_read} of "
            f"{heap.page_count}"
        )
    return divergences
