"""Heap files: unordered collections of records in slotted pages.

A heap file owns a sequence of :class:`SlottedPage` objects striped
across the disk array.  Records are addressed by :class:`RecordId`
(page number, slot).  The scan methods support the paper's *page
partitioning*: "given n processors, processor i processes disk pages
``{p | p mod n = i}``".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..catalog.schema import Row, Schema
from ..errors import PageFullError, StorageError
from .diskarray import DiskArray, FileExtent
from .page import SlottedPage


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of a record: (page number, slot)."""

    page_no: int
    slot: int


class HeapFile:
    """An append-oriented heap file of fixed-size slotted pages."""

    def __init__(self, schema: Schema, array: DiskArray, *, name: str = "") -> None:
        self.schema = schema
        self.array = array
        self.name = name
        self.extent: FileExtent = array.create_file()
        self._pages: list[SlottedPage] = []
        self._row_count = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self._row_count

    @property
    def page_size(self) -> int:
        return self.array.config.page_size

    def page(self, page_no: int) -> SlottedPage:
        """The page object for ``page_no``.

        Raises:
            StorageError: for an out-of-range page number.
        """
        if not 0 <= page_no < len(self._pages):
            raise StorageError(
                f"heap {self.name or self.extent.file_id}: "
                f"page {page_no} out of range [0, {len(self._pages)})"
            )
        return self._pages[page_no]

    def _new_page(self) -> SlottedPage:
        self.array.allocate_page(self.extent)
        page = SlottedPage(self.page_size)
        self._pages.append(page)
        return page

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: Sequence) -> RecordId:
        """Validate, encode and append one row; returns its RecordId."""
        validated = self.schema.validate_row(row)
        record = self.schema.encode_row(validated)
        if not self._pages:
            self._new_page()
        page = self._pages[-1]
        try:
            slot = page.insert(record)
        except PageFullError:
            page = self._new_page()
            slot = page.insert(record)
        self._row_count += 1
        return RecordId(len(self._pages) - 1, slot)

    def insert_many(self, rows: Sequence[Sequence]) -> list[RecordId]:
        """Bulk insert; returns the RecordIds in input order."""
        return [self.insert(row) for row in rows]

    def delete(self, rid: RecordId) -> None:
        """Delete the record at ``rid``."""
        self.page(rid.page_no).delete(rid.slot)
        self._row_count -= 1

    # -- access -----------------------------------------------------------------

    def fetch(self, rid: RecordId) -> Row:
        """Decode and return the row at ``rid``."""
        record = self.page(rid.page_no).read(rid.slot)
        return self.schema.decode_row(record)

    def scan(self) -> Iterator[tuple[RecordId, Row]]:
        """Full scan in page, then slot, order."""
        yield from self.scan_pages(range(len(self._pages)))

    def scan_pages(self, page_numbers) -> Iterator[tuple[RecordId, Row]]:
        """Scan only the given page numbers, in the given order."""
        for page_no in page_numbers:
            page = self.page(page_no)
            for slot, record in page.records():
                yield RecordId(page_no, slot), self.schema.decode_row(record)

    def partition_pages(self, n_partitions: int, partition: int) -> range:
        """Page numbers of one *page partition*: ``{p | p mod n == i}``.

        Raises:
            StorageError: for an invalid partition spec.
        """
        if n_partitions < 1 or not 0 <= partition < n_partitions:
            raise StorageError(
                f"bad page partition {partition}/{n_partitions}"
            )
        return range(partition, len(self._pages), n_partitions)

    def scan_partition(
        self, n_partitions: int, partition: int
    ) -> Iterator[tuple[RecordId, Row]]:
        """Scan one page partition (the paper's parallel seq-scan unit)."""
        yield from self.scan_pages(self.partition_pages(n_partitions, partition))

    # -- io accounting -----------------------------------------------------------

    def read_time(self, page_no: int) -> float:
        """Simulated io time for reading ``page_no`` (advances disk state)."""
        return self.array.read_time(self.extent, page_no)

    def avg_row_size(self) -> float:
        """Mean encoded row size, from a full scan (0.0 when empty)."""
        total = 0
        count = 0
        for page in self._pages:
            for __, record in page.records():
                total += len(record)
                count += 1
        return total / count if count else 0.0
