"""A pin-counted LRU buffer pool.

XPRS shares one buffer pool among all backends in shared memory.  The
pool caches ``(file_id, page_no)`` frames with pin counts; an unpinned
least-recently-used frame is evicted on miss.  Hit/miss counters feed
the cost model's effective io counts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import BufferPoolError
from .heap import HeapFile
from .page import SlottedPage

FrameKey = tuple[int, int]


@dataclass
class BufferStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _Frame:
    __slots__ = ("page", "pin_count")

    def __init__(self, page: SlottedPage) -> None:
        self.page = page
        self.pin_count = 0


class BufferPool:
    """An LRU page cache with pinning.

    Args:
        capacity: maximum number of cached frames.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool needs capacity >= 1")
        self.capacity = capacity
        self._frames: "OrderedDict[FrameKey, _Frame]" = OrderedDict()
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._frames)

    def get(self, heap: HeapFile, page_no: int, *, pin: bool = False) -> SlottedPage:
        """Fetch a page through the pool.

        A miss charges the heap's simulated disk read and may evict the
        LRU unpinned frame.

        Raises:
            BufferPoolError: when every frame is pinned and none can be
                evicted to make room.
        """
        key = (heap.extent.file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(key)
        else:
            self.stats.misses += 1
            heap.read_time(page_no)  # charge the simulated io
            self._make_room()
            frame = _Frame(heap.page(page_no))
            self._frames[key] = frame
        if pin:
            frame.pin_count += 1
        return frame.page

    def unpin(self, heap: HeapFile, page_no: int) -> None:
        """Release one pin on a cached page.

        Raises:
            BufferPoolError: if the page is not cached or not pinned.
        """
        key = (heap.extent.file_id, page_no)
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"page {key} is not in the pool")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {key} is not pinned")
        frame.pin_count -= 1

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for key, frame in self._frames.items():
            if frame.pin_count == 0:
                del self._frames[key]
                self.stats.evictions += 1
                return
        raise BufferPoolError("all frames are pinned; cannot evict")

    def contains(self, heap: HeapFile, page_no: int) -> bool:
        """Whether a page is currently cached."""
        return (heap.extent.file_id, page_no) in self._frames

    def clear(self) -> None:
        """Drop every unpinned frame."""
        pinned = {
            key: frame for key, frame in self._frames.items() if frame.pin_count
        }
        self._frames = OrderedDict(pinned)
