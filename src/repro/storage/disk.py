"""A single-disk timing and accounting model.

The disk does not store data (pages live in the heap files); it models
*when* an io request completes and *counts* requests, which is what the
paper's scheduling theory consumes.  Three access regimes from the
paper's measurements (Section 3):

* strictly sequential — the request's block number immediately follows
  the last block served (97 ios/s on the paper's disks);
* almost sequential — the request is near but not exactly the next
  block, e.g. parallel backends racing through one relation out of
  order (60 ios/s);
* random — anything else (35 ios/s).

:meth:`Disk.service_time` classifies a request against the last-served
block and returns the service time; :class:`DiskCounters` accumulates
per-regime counts so calibration benches can re-derive the bandwidth
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DiskProfile
from ..errors import ConfigError

#: How far (in blocks) past the last request still counts as "almost
#: sequential".  Parallel scans with n slaves land within roughly n
#: blocks of each other; the paper's 60 ios/s regime.
ALMOST_SEQ_WINDOW = 16


@dataclass
class DiskCounters:
    """Request counts per access regime."""

    sequential: int = 0
    almost_sequential: int = 0
    random: int = 0

    @property
    def total(self) -> int:
        return self.sequential + self.almost_sequential + self.random

    def reset(self) -> None:
        """Zero all counters."""
        self.sequential = 0
        self.almost_sequential = 0
        self.random = 0


@dataclass
class Disk:
    """One disk of the array.

    The disk remembers the positions of the last few *streams* it has
    served (``stream_memory`` slots), modelling the drive/controller
    track buffer: continuing or resuming a recently-seen sequential
    stream is cheap even if another stream's request was served in
    between; only a request far from every remembered stream pays the
    full seek.

    Attributes:
        disk_id: index within the array.
        profile: bandwidth profile (per-regime service rates).
        almost_seq_window: forward block distance tolerated as
            almost-sequential relative to a remembered stream position.
        stream_memory: how many concurrent stream positions the disk
            remembers (1 = classic single-head-position model).
    """

    disk_id: int
    profile: DiskProfile = field(default_factory=DiskProfile)
    almost_seq_window: int = ALMOST_SEQ_WINDOW
    stream_memory: int = 4

    def __post_init__(self) -> None:
        if self.almost_seq_window < 1:
            raise ConfigError("almost_seq_window must be >= 1")
        if self.stream_memory < 1:
            raise ConfigError("stream_memory must be >= 1")
        self._streams: list[int] = []  # recent positions, most recent last
        #: Memo of _match keyed by block, valid until _streams mutates.
        #: An elevator classifying a queue then serving the winner asks
        #: about the same block twice against unchanged streams.
        self._match_cache: dict[int, tuple[str, int | None]] = {}
        # DiskProfile is frozen, so the per-regime service times can be
        # computed once instead of dividing on every request.
        self._service_times = {
            "sequential": 1.0 / self.profile.seq_ios_per_sec,
            "almost_sequential": 1.0 / self.profile.almost_seq_ios_per_sec,
            "random": 1.0 / self.profile.random_ios_per_sec,
        }
        self.counters = DiskCounters()
        self.busy_time = 0.0

    def _match(self, block: int) -> tuple[str, int | None]:
        """(regime, matching stream index) for a request (memoized)."""
        cached = self._match_cache.get(block)
        if cached is not None:
            return cached
        best: tuple[str, int | None] = ("random", None)
        streams = self._streams
        last = len(streams) - 1
        for i, pos in enumerate(streams):
            delta = block - pos
            if delta == 1:
                if i == last:
                    best = ("sequential", i)
                    break
                best = ("almost_sequential", i)
            elif 0 <= delta <= self.almost_seq_window and best[0] == "random":
                best = ("almost_sequential", i)
        self._match_cache[block] = best
        return best

    def classify(self, block: int) -> str:
        """Regime of a request for ``block`` given the stream memory."""
        return self._match(block)[0]

    def service_time(self, block: int, *, multiplier: float = 1.0) -> float:
        """Service one request; returns its service time in seconds.

        Updates the stream memory, the per-regime counters and the
        accumulated busy time.

        Args:
            block: requested block number.
            multiplier: current bandwidth factor of this disk (fault
                injection: a disk at 50% bandwidth doubles every
                service time).  1.0 models a healthy disk.
        """
        if multiplier <= 0:
            raise ConfigError("multiplier must be positive")
        # The elevator usually classified this block moments ago; read
        # the memo directly to skip a call on the per-page hot path.
        cached = self._match_cache.get(block)
        regime, index = cached if cached is not None else self._match(block)
        counters = self.counters
        if regime == "sequential":
            counters.sequential += 1
        elif regime == "almost_sequential":
            counters.almost_sequential += 1
        else:
            counters.random += 1
        t = self._service_times[regime]
        if multiplier != 1.0:
            t = t / multiplier
        streams = self._streams
        if index is not None:
            streams.pop(index)
        streams.append(block)
        if len(streams) > self.stream_memory:
            streams.pop(0)
        self._match_cache.clear()
        self.busy_time += t
        return t

    def reset(self) -> None:
        """Forget all stream positions and zero all counters."""
        self._streams = []
        self._match_cache.clear()
        self.counters.reset()
        self.busy_time = 0.0

    @property
    def last_block(self) -> int | None:
        """Block number of the most recently served request."""
        return self._streams[-1] if self._streams else None
