"""Storage subsystem: pages, heaps, disk array, buffer pool, B+tree."""

from .btree import BTreeIndex
from .buffer import BufferPool, BufferStats
from .disk import ALMOST_SEQ_WINDOW, Disk, DiskCounters
from .diskarray import DiskArray, FileExtent, PageAddress
from .heap import HeapFile, RecordId
from .page import HEADER_SIZE, SLOT_SIZE, SlottedPage

__all__ = [
    "ALMOST_SEQ_WINDOW",
    "BTreeIndex",
    "BufferPool",
    "BufferStats",
    "Disk",
    "DiskArray",
    "DiskCounters",
    "FileExtent",
    "HEADER_SIZE",
    "HeapFile",
    "PageAddress",
    "RecordId",
    "SLOT_SIZE",
    "SlottedPage",
]
