"""A B+tree secondary index.

Maps column keys to :class:`~repro.storage.heap.RecordId` lists (a key
may be duplicated).  Leaves are chained for range scans.  The root
node's separator keys double as the coarse data-distribution info that
XPRS's range partitioning consults ("we try to find a balanced range
partition with data distribution information in the system catalog or
in the root node of an index").

An *unclustered* index on ``a`` is the paper's vehicle for IO-bound
tasks: each match costs one (random) heap page io.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..errors import BTreeError
from .heap import RecordId

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[list[RecordId]] = []
        self.next: "_Leaf | None" = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []


class BTreeIndex:
    """A B+tree from keys to lists of record ids.

    Args:
        order: maximum number of keys per node (fan-out - 1).
    """

    def __init__(self, *, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise BTreeError("B+tree order must be >= 3")
        self.order = order
        self._root: _Node = _Leaf()
        self._height = 1
        self._n_keys = 0
        self._n_entries = 0

    # -- public stats -------------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return self._n_keys

    def __len__(self) -> int:
        """Number of (key, record-id) entries."""
        return self._n_entries

    def root_separators(self) -> tuple:
        """The root's separator keys — coarse distribution info.

        For a leaf root this is its key list; range partitioning uses
        these to cut balanced intervals without a full scan.
        """
        return tuple(self._root.keys)

    # -- insertion ------------------------------------------------------------------

    def insert(self, key: Any, rid: RecordId) -> None:
        """Add one entry; duplicates of ``key`` accumulate."""
        if key is None:
            raise BTreeError("cannot index NULL keys")
        split = self._insert(self._root, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: Any, rid: RecordId):
        if isinstance(node, _Leaf):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(rid)
                self._n_entries += 1
                return None
            node.keys.insert(i, key)
            node.values.insert(i, [rid])
            self._n_keys += 1
            self._n_entries += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- lookup ---------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        assert isinstance(node, _Leaf)
        return node

    def search(self, key: Any) -> list[RecordId]:
        """Record ids for an exact key (empty list when absent)."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return list(leaf.values[i])
        return []

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, RecordId]]:
        """Yield ``(key, rid)`` in key order over [low, high].

        Either bound may be None (open).
        """
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            i = 0
        else:
            leaf = self._find_leaf(low)
            if low_inclusive:
                i = bisect.bisect_left(leaf.keys, low)
            else:
                i = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                for rid in leaf.values[i]:
                    yield key, rid
                i += 1
            leaf = leaf.next
            i = 0

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def keys(self) -> Iterator[Any]:
        """All distinct keys in ascending order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def check_invariants(self) -> None:
        """Verify structural invariants; raises BTreeError on violation.

        Used by property-based tests: key ordering within and across
        leaves, node occupancy bounds, and uniform leaf depth.
        """
        depths: set[int] = set()
        self._check(self._root, None, None, 1, depths, is_root=True)
        if len(depths) != 1:
            raise BTreeError(f"leaves at mixed depths: {sorted(depths)}")
        flat = list(self.keys())
        if flat != sorted(flat):
            raise BTreeError("leaf chain is not globally sorted")

    def _check(self, node, low, high, depth, depths, *, is_root):
        if node.keys != sorted(node.keys):
            raise BTreeError("node keys out of order")
        if not is_root and len(node.keys) > self.order:
            raise BTreeError("node overflow")
        for key in node.keys:
            if low is not None and key < low:
                raise BTreeError("key below subtree lower bound")
            if high is not None and key >= high:
                raise BTreeError("key above subtree upper bound")
        if isinstance(node, _Leaf):
            depths.add(depth)
            if len(node.keys) != len(node.values):
                raise BTreeError("leaf keys/values length mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise BTreeError("internal fan-out mismatch")
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check(child, bounds[i], bounds[i + 1], depth + 1, depths, is_root=False)
