"""Slotted disk pages.

The classic slotted-page layout: a small header, record data growing
from the front, and a slot directory growing from the back.  Each slot
holds ``(offset, length)`` for one record; a deleted record leaves a
tombstone slot (length 0) so record ids stay stable.

Layout (little-endian)::

    [ header: slot_count (u16) | free_offset (u16) ]
    [ record bytes ... -> ]
    [ free space ]
    [ <- ... slot directory: (offset u16, length u16) per slot ]
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..config import PAGE_SIZE
from ..errors import InvalidSlotError, PageFullError, RecordTooLargeError

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class SlottedPage:
    """A fixed-size page holding variable-length records in slots."""

    def __init__(self, page_size: int = PAGE_SIZE, *, data: bytes | None = None) -> None:
        self.page_size = page_size
        if data is not None:
            if len(data) != page_size:
                raise ValueError(
                    f"page image is {len(data)} bytes, expected {page_size}"
                )
            self._buf = bytearray(data)
            self._slot_count, self._free_offset = _HEADER.unpack_from(self._buf, 0)
        else:
            self._buf = bytearray(page_size)
            self._slot_count = 0
            self._free_offset = HEADER_SIZE
            self._write_header()

    # -- header ----------------------------------------------------------------

    def _write_header(self) -> None:
        _HEADER.pack_into(self._buf, 0, self._slot_count, self._free_offset)

    @property
    def slot_count(self) -> int:
        """Number of slots, including tombstones."""
        return self._slot_count

    @property
    def free_space(self) -> int:
        """Bytes available for one more record plus its slot."""
        directory_start = self.page_size - self._slot_count * SLOT_SIZE
        return max(0, directory_start - self._free_offset - SLOT_SIZE)

    @staticmethod
    def max_record_size(page_size: int = PAGE_SIZE) -> int:
        """Largest record that fits on an empty page of ``page_size``."""
        return page_size - HEADER_SIZE - SLOT_SIZE

    # -- slot directory ----------------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return self.page_size - (slot + 1) * SLOT_SIZE

    def _read_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self._slot_count:
            raise InvalidSlotError(f"slot {slot} out of range [0, {self._slot_count})")
        return _SLOT.unpack_from(self._buf, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buf, self._slot_pos(slot), offset, length)

    # -- record operations --------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record, returning its slot id.

        Raises:
            RecordTooLargeError: if the record can never fit on a page.
            PageFullError: if this page lacks the free space.
        """
        if not record:
            raise ValueError("cannot insert an empty record")
        if len(record) > self.max_record_size(self.page_size):
            raise RecordTooLargeError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        if len(record) > self.free_space:
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space} bytes free)"
            )
        offset = self._free_offset
        self._buf[offset : offset + len(record)] = record
        slot = self._slot_count
        self._slot_count += 1
        self._free_offset += len(record)
        self._write_slot(slot, offset, len(record))
        self._write_header()
        return slot

    def read(self, slot: int) -> bytes:
        """Return the record in ``slot``.

        Raises:
            InvalidSlotError: for out-of-range or deleted slots.
        """
        offset, length = self._read_slot(slot)
        if length == 0:
            raise InvalidSlotError(f"slot {slot} is deleted")
        return bytes(self._buf[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone the record in ``slot`` (space is not reclaimed)."""
        offset, length = self._read_slot(slot)
        if length == 0:
            raise InvalidSlotError(f"slot {slot} is already deleted")
        self._write_slot(slot, offset, 0)

    def is_live(self, slot: int) -> bool:
        """Whether ``slot`` holds a live (non-deleted) record."""
        __, length = self._read_slot(slot)
        return length > 0

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record in slot order."""
        for slot in range(self._slot_count):
            offset, length = self._read_slot(slot)
            if length:
                yield slot, bytes(self._buf[offset : offset + length])

    def live_count(self) -> int:
        """Number of live records."""
        return sum(1 for __ in self.records())

    def to_bytes(self) -> bytes:
        """The raw page image."""
        return bytes(self._buf)
