"""The striped disk array (Figure 1).

"All relations are striped sequentially, block by block, in a
round-robin fashion across the disk array to allow maximum i/o
bandwidth."  The array maps a file's logical page number to a
``(disk, block)`` pair and routes io-timing requests to the right
:class:`~repro.storage.disk.Disk`.

Block numbers on each disk are allocated per file extent, so two files
striped over the same array occupy disjoint block ranges and reading
them alternately forces seeks — exactly the effect behind the paper's
sequential/random bandwidth distinction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import StorageError
from .disk import Disk


@dataclass(frozen=True)
class PageAddress:
    """Physical location of one logical page."""

    disk_id: int
    block: int


class FileExtent:
    """Block allocation of one file across the array."""

    def __init__(self, file_id: int, array: "DiskArray") -> None:
        self.file_id = file_id
        self._array = array
        self._addresses: list[PageAddress] = []

    @property
    def page_count(self) -> int:
        return len(self._addresses)

    def address(self, page_no: int) -> PageAddress:
        """Physical address of logical page ``page_no``.

        Raises:
            StorageError: for an unallocated page number.
        """
        if not 0 <= page_no < len(self._addresses):
            raise StorageError(
                f"file {self.file_id}: page {page_no} not allocated "
                f"(have {len(self._addresses)})"
            )
        return self._addresses[page_no]

    def _append(self, addr: PageAddress) -> None:
        self._addresses.append(addr)


class DiskArray:
    """Round-robin striping of file pages across the disks."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.disks = [Disk(i, config.disk) for i in range(config.disks)]
        self._next_block = [0] * config.disks
        self._files: dict[int, FileExtent] = {}
        self._next_file_id = 0

    def create_file(self) -> FileExtent:
        """Allocate a new (empty) striped file."""
        extent = FileExtent(self._next_file_id, self)
        self._files[self._next_file_id] = extent
        self._next_file_id += 1
        return extent

    def allocate_page(self, extent: FileExtent) -> PageAddress:
        """Extend a file by one page, round-robin over the disks."""
        disk_id = extent.page_count % len(self.disks)
        block = self._next_block[disk_id]
        self._next_block[disk_id] += 1
        addr = PageAddress(disk_id, block)
        extent._append(addr)
        return addr

    def read_time(self, extent: FileExtent, page_no: int) -> float:
        """Simulated service time of reading one page, in seconds.

        Advances the owning disk's head position and counters.
        """
        addr = extent.address(page_no)
        return self.disks[addr.disk_id].service_time(addr.block)

    def disk_of(self, extent: FileExtent, page_no: int) -> Disk:
        """The disk holding a logical page."""
        return self.disks[extent.address(page_no).disk_id]

    def reset_counters(self) -> None:
        """Reset head positions and io counters on every disk."""
        for disk in self.disks:
            disk.reset()

    @property
    def total_ios(self) -> int:
        return sum(d.counters.total for d in self.disks)

    @property
    def busy_time(self) -> float:
        """Sum of per-disk busy time (for utilization accounting)."""
        return sum(d.busy_time for d in self.disks)
