"""Shared memos for the optimizer fast path.

``parcost(p, n)`` simulates the scheduling algorithm over a plan's
fragments, which makes it by far the most expensive cost function in
the system: the DP over connected subsets evaluates thousands of
candidate joins, and every evaluation used to mean a fresh bottom-up
estimate plus a full :class:`~repro.sim.fluid.FluidSimulator` run.  Two
observations make most of that work redundant:

* the DP reuses subplan *objects*, so per-node estimates can be
  memoized by ``node_id`` and only a candidate's new top nodes ever
  need estimating;
* the simulation depends only on the fragments' canonical scheduling
  signature (:meth:`~repro.plans.fragments.FragmentGraph.signature`),
  the machine and the policy — structurally equivalent subplans share
  one simulation.

:class:`OptimizerCaches` bundles both memos plus the hit/miss/skip
counters (:class:`CacheStats`) that ``optbench --json`` records, so a
benchmark entry states *why* it got faster.  Caching is exact — every
cached value is the float the uncached path would have computed — so a
fast-path optimizer chooses byte-identical plans; the golden-plan
corpus test replays both paths to prove it.

One caches object belongs to one ``(catalog, cost_model, machine
family)``; reusing it after the catalog's statistics change (ANALYZE)
would serve stale estimates.  Call :meth:`OptimizerCaches.clear` then.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plans.costing import NodeEstimate


@dataclass
class CacheStats:
    """Observability counters for one optimizer's fast path.

    Attributes:
        candidates: candidate plans the enumeration considered.
        pruned: candidates dropped without a full cost call (beaten on
            both the parcost lower bound and interesting order).
        costed: candidates that reached the cost function.
        parcost_hits: parcost calls answered from the signature cache.
        parcost_misses: parcost calls that ran a fresh simulation.
        estimate_hits: estimate requests whose whole plan tree was
            already in the node memo.
        estimate_misses: estimate requests that computed at least the
            plan's root node.
    """

    candidates: int = 0
    pruned: int = 0
    costed: int = 0
    parcost_hits: int = 0
    parcost_misses: int = 0
    estimate_hits: int = 0
    estimate_misses: int = 0

    @property
    def simulated(self) -> int:
        """Simulations actually run (alias of ``parcost_misses``)."""
        return self.parcost_misses

    @property
    def parcost_hit_rate(self) -> float:
        total = self.parcost_hits + self.parcost_misses
        return self.parcost_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counter dump (what ``optbench --json`` records)."""
        return {
            "candidates": self.candidates,
            "pruned": self.pruned,
            "costed": self.costed,
            "parcost_hits": self.parcost_hits,
            "parcost_misses": self.parcost_misses,
            "estimate_hits": self.estimate_hits,
            "estimate_misses": self.estimate_misses,
        }

    def reset(self) -> None:
        """Zero every counter (used between benchmark repeats)."""
        self.candidates = 0
        self.pruned = 0
        self.costed = 0
        self.parcost_hits = 0
        self.parcost_misses = 0
        self.estimate_hits = 0
        self.estimate_misses = 0

    def publish(self, registry, *, prefix: str = "optimizer") -> None:
        """Fold the counters into a unified metrics registry.

        Each field becomes the counter ``{prefix}.{field}`` on the
        given :class:`~repro.obs.MetricsRegistry`; values add, so
        publishing after every query accumulates whole-run totals when
        the stats are reset between queries (the hot enumeration loop
        keeps incrementing plain ints either way).
        """
        for key, value in self.as_dict().items():
            registry.counter(f"{prefix}.{key}").inc(value)


@dataclass
class OptimizerCaches:
    """The fast path's memos: node estimates plus parcost-by-signature.

    Attributes:
        node_estimates: ``node_id`` -> :class:`NodeEstimate`.  Node ids
            are process-unique, so entries from different plans never
            collide; the memo pays off because the DP reuses subplan
            objects across candidates.
        parcost_elapsed: ``(signature, machine, policy key)`` ->
            ``parcost`` (simulated elapsed seconds).
        stats: the counters above, shared with the enumeration loop.
    """

    node_estimates: dict[int, NodeEstimate] = field(default_factory=dict)
    parcost_elapsed: dict[tuple, float] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def clear(self) -> None:
        """Drop every memo (required after the catalog's stats change)."""
        self.node_estimates.clear()
        self.parcost_elapsed.clear()
        self.stats.reset()
