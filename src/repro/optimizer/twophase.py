"""The two-phase optimization strategy, extended per Section 4.

Phase 1 (compile time): conventional optimization of *sequential* plans.
[HONG91] searched left-deep trees with ``seqcost``; Section 4 extends
this to bushy trees with ``parcost`` for the single-user case.

Phase 2 (run time): parallelize the chosen sequential plan — decompose
it into fragments and schedule them with the adaptive algorithm.

Three optimizer modes map onto the paper:

* ``LEFT_DEEP_SEQ`` — [HONG91]: left-deep space, seqcost.  In a
  multi-user system this is the right choice: "we rely on the tasks
  from different queries submitted by multiple users to achieve maximum
  resource utilizations using our scheduling algorithm."
* ``BUSHY_SEQ`` — bushy space, still seqcost (an ablation: bushy shape
  without parallel-aware costing).
* ``BUSHY_PAR`` — Section 4: bushy space costed by ``parcost(p, n)``.

By default the optimizer runs its **fast path**: per-node estimate
memoization, signature-keyed parcost caching and branch-and-bound
candidate skipping (see :mod:`repro.optimizer.cache`).  The fast path
is plan-identical — ``fast_path=False`` searches exhaustively with no
memos and chooses the same plan with the same cost, which the
golden-plan corpus test asserts exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

from ..catalog.catalog import Catalog
from ..config import MachineConfig, paper_machine
from ..core.schedulers import SchedulingPolicy
from ..errors import OptimizerError
from ..plans.costing import CostModel, estimate_plan
from ..plans.nodes import PlanNode
from .cache import CacheStats, OptimizerCaches
from .enumeration import JOIN_METHODS, enumerate_space
from .parcost import ParallelCost, ParcostObjective, parallel_cost
from .query import Query


class OptimizerMode(Enum):
    """Which plan space and cost function the optimizer uses."""

    LEFT_DEEP_SEQ = "left-deep/seqcost"
    BUSHY_SEQ = "bushy/seqcost"
    BUSHY_PAR = "bushy/parcost"


@dataclass
class OptimizedQuery:
    """Output of the two-phase optimizer."""

    query: Query
    mode: OptimizerMode
    plan: PlanNode
    parallel: ParallelCost
    #: Fast-path counters covering this optimization (None when the
    #: optimizer ran with ``fast_path=False``).  A snapshot: numbers are
    #: cumulative per optimizer instance, captured at return time.
    stats: dict | None = None

    @property
    def predicted_elapsed(self) -> float:
        return self.parallel.elapsed


class TwoPhaseOptimizer:
    """Phase-1 plan choice plus phase-2 parallelization.

    Args:
        catalog: resolves schemas, indexes, statistics.
        machine: the run-time machine (known beforehand in the paper's
            single-user setting).
        cost_model: CPU constants shared by both cost functions.
        methods: join methods the enumerator may use.
        fast_path: enable the memoized/pruned optimizer (default).  The
            caches live on the optimizer instance and are shared across
            queries — correct as long as the catalog's statistics do
            not change underneath it; call ``caches.clear()`` after an
            ANALYZE-style refresh.
        tracer: a :class:`~repro.obs.Tracer`; each ``optimize`` call
            emits one deterministic instant on the ``optimizer`` track
            carrying this query's candidate/pruned/costed deltas.
            ``None`` (or the falsy NullTracer) records nothing.
        metrics: a :class:`~repro.obs.MetricsRegistry`; each
            ``optimize`` call folds this query's cache-counter deltas
            into ``optimizer.*`` counters and its phase-1 wall time into
            the ``optimizer.phase1_seconds`` histogram.  The hot
            enumeration loop keeps incrementing plain ints; the
            registry only sees per-call deltas.  ``None`` skips both.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        machine: MachineConfig | None = None,
        cost_model: CostModel | None = None,
        methods: tuple[str, ...] = JOIN_METHODS,
        fast_path: bool = True,
        tracer=None,
        metrics=None,
    ) -> None:
        self.catalog = catalog
        self.machine = machine or paper_machine()
        self.cost_model = cost_model
        self.methods = methods
        self.fast_path = fast_path
        self.caches: OptimizerCaches | None = (
            OptimizerCaches() if fast_path else None
        )
        self.tracer = tracer or None
        self.metrics = metrics

    @property
    def cache_stats(self) -> CacheStats | None:
        """Cumulative fast-path counters (None with ``fast_path=False``)."""
        return self.caches.stats if self.caches is not None else None

    # -- phase 1 -------------------------------------------------------------------

    def choose_plan(self, query: Query, mode: OptimizerMode) -> PlanNode:
        """Phase 1: pick the best sequential plan under ``mode``."""
        if mode == OptimizerMode.BUSHY_PAR:
            space = "bushy"
            cost = ParcostObjective(
                self.catalog,
                machine=self.machine,
                cost_model=self.cost_model,
                caches=self.caches,
            )
        elif mode == OptimizerMode.BUSHY_SEQ:
            space = "bushy"
            cost = self._seqcost
        elif mode == OptimizerMode.LEFT_DEEP_SEQ:
            space = "left-deep"
            cost = self._seqcost
        else:  # pragma: no cover - exhaustiveness guard
            raise OptimizerError(f"unknown mode: {mode!r}")
        return enumerate_space(
            query,
            self.catalog,
            cost,
            space=space,
            methods=self.methods,
            stats=self.cache_stats,
        )

    def _seqcost(self, plan: PlanNode) -> float:
        caches = self.caches
        if caches is not None:
            if plan.node_id in caches.node_estimates:
                caches.stats.estimate_hits += 1
            else:
                caches.stats.estimate_misses += 1
        return estimate_plan(
            plan,
            self.catalog,
            cost_model=self.cost_model,
            machine=self.machine,
            cache=caches.node_estimates if caches is not None else None,
        ).seqcost()

    # -- phase 2 -------------------------------------------------------------------

    def parallelize(
        self, plan: PlanNode, *, policy: SchedulingPolicy | None = None
    ) -> ParallelCost:
        """Phase 2: fragment the plan and schedule its tasks."""
        return parallel_cost(
            plan,
            self.catalog,
            machine=self.machine,
            cost_model=self.cost_model,
            policy=policy,
            caches=self.caches,
        )

    # -- both ---------------------------------------------------------------------

    def optimize(
        self,
        query: Query,
        *,
        mode: OptimizerMode = OptimizerMode.BUSHY_PAR,
        policy: SchedulingPolicy | None = None,
        budget=None,
        now: float = 0.0,
    ) -> OptimizedQuery:
        """Run both phases and return the full result.

        Args:
            budget: an optional
                :class:`~repro.recovery.DeadlineBudget`.  A blown
                budget raises
                :class:`~repro.errors.DeadlineExceededError` before any
                enumeration; a *tight* one (``budget.degraded(now)``)
                deterministically degrades ``BUSHY_PAR`` to the cheap
                ``LEFT_DEEP_SEQ`` space instead of spending the
                remaining budget enumerating bushy shapes.
            now: the virtual time the budget is measured against.

        Raises:
            DeadlineExceededError: ``budget`` was already exceeded.
        """
        if budget is not None:
            budget.require(now)
            if mode == OptimizerMode.BUSHY_PAR and budget.degraded(now):
                mode = OptimizerMode.LEFT_DEEP_SEQ
        stats = self.cache_stats
        observing = self.tracer is not None or self.metrics is not None
        before = stats.as_dict() if observing and stats is not None else None
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        plan = self.choose_plan(query, mode)
        if self.metrics is not None:
            self.metrics.histogram("optimizer.phase1_seconds").observe(
                time.perf_counter() - t0
            )
        parallel = self.parallelize(plan, policy=policy)
        if observing and stats is not None:
            after = stats.as_dict()
            assert before is not None
            delta = {
                key: max(0, after[key] - before[key]) for key in after
            }
            if self.metrics is not None:
                for key, value in delta.items():
                    self.metrics.counter(f"optimizer.{key}").inc(value)
            if self.tracer is not None:
                # Deterministic: virtual t=0, counter deltas only — no
                # wall time reaches the trace.
                self.tracer.instant(
                    f"optimize {len(query.relations)} relations",
                    t=0.0,
                    track="optimizer",
                    cat="optimizer",
                    args={
                        "mode": mode.value,
                        "candidates": delta["candidates"],
                        "pruned": delta["pruned"],
                        "costed": delta["costed"],
                    },
                )
        return OptimizedQuery(
            query=query,
            mode=mode,
            plan=plan,
            parallel=parallel,
            stats=stats.as_dict() if stats is not None else None,
        )
