"""Query specifications and the join graph.

A :class:`Query` is a select-project-join block: base relations,
equi-join predicates between pairs of them, per-relation selection
predicates and an optional final projection.  Column names must be
unique across the relations of one query (the workload generator
guarantees this), which keeps join schemas flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..catalog.catalog import Catalog
from ..errors import OptimizerError
from ..executor.expressions import Expression


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_rel.left_col = right_rel.right_col``."""

    left_rel: str
    left_col: str
    right_rel: str
    right_col: str

    def connects(self, a: frozenset[str], b: frozenset[str]) -> bool:
        """Does this predicate join relation sets ``a`` and ``b``?"""
        return (self.left_rel in a and self.right_rel in b) or (
            self.left_rel in b and self.right_rel in a
        )

    def oriented(self, outer: frozenset[str]) -> tuple[str, str]:
        """(outer column, inner column) given which side is the outer."""
        if self.left_rel in outer:
            return self.left_col, self.right_col
        return self.right_col, self.left_col

    def __repr__(self) -> str:
        return f"{self.left_rel}.{self.left_col} = {self.right_rel}.{self.right_col}"


@dataclass
class Query:
    """A select-project-join query block.

    Attributes:
        relations: base relation names, in no particular order.
        joins: equi-join predicates.
        selections: per-relation selection predicates (pushed down to
            the scans by the optimizer).
        projection: optional output column list.
    """

    relations: list[str]
    joins: list[JoinPredicate] = field(default_factory=list)
    selections: dict[str, Expression] = field(default_factory=dict)
    projection: tuple[str, ...] | None = None

    def validate(self, catalog: Catalog) -> None:
        """Check the query is well-formed against ``catalog``.

        Raises:
            OptimizerError: on unknown relations/columns, duplicate
                column names across relations, or join predicates that
                reference relations outside the query.
        """
        if not self.relations:
            raise OptimizerError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise OptimizerError("duplicate relation in query")
        seen: dict[str, str] = {}
        for rel in self.relations:
            schema = catalog.table(rel).schema
            for column in schema.names():
                if column in seen:
                    raise OptimizerError(
                        f"column {column!r} appears in both {seen[column]!r} "
                        f"and {rel!r}; query columns must be unique"
                    )
                seen[column] = rel
        rels = set(self.relations)
        for join in self.joins:
            if join.left_rel not in rels or join.right_rel not in rels:
                raise OptimizerError(f"join {join!r} references unknown relation")
            if seen.get(join.left_col) != join.left_rel:
                raise OptimizerError(f"{join.left_col!r} is not a column of {join.left_rel!r}")
            if seen.get(join.right_col) != join.right_rel:
                raise OptimizerError(f"{join.right_col!r} is not a column of {join.right_rel!r}")
        for rel in self.selections:
            if rel not in rels:
                raise OptimizerError(f"selection on unknown relation {rel!r}")

    def joins_between(
        self, a: Iterable[str], b: Iterable[str]
    ) -> list[JoinPredicate]:
        """All join predicates connecting relation sets ``a`` and ``b``."""
        fa, fb = frozenset(a), frozenset(b)
        return [j for j in self.joins if j.connects(fa, fb)]

    def join_index(self) -> "JoinGraph":
        """A precomputed :class:`JoinGraph` over this query.

        The DP in :func:`~repro.optimizer.enumeration.enumerate_space`
        calls :meth:`joins_between` and :meth:`is_connected` once per
        subset split, which scans ``self.joins`` every time.  The index
        answers both from per-relation adjacency plus a per-subset
        connectivity memo.  It is a snapshot: mutating the query after
        building the index is not reflected.
        """
        return JoinGraph(self)

    def is_connected(self, subset: frozenset[str]) -> bool:
        """Is the join graph restricted to ``subset`` connected?"""
        if len(subset) <= 1:
            return True
        remaining = set(subset)
        frontier = {next(iter(subset))}
        remaining -= frontier
        while frontier and remaining:
            reachable = set()
            for join in self.joins:
                if join.left_rel in frontier and join.right_rel in remaining:
                    reachable.add(join.right_rel)
                if join.right_rel in frontier and join.left_rel in remaining:
                    reachable.add(join.left_rel)
            frontier = reachable
            remaining -= reachable
        return not remaining


class JoinGraph:
    """Precomputed adjacency view of one query's join graph.

    Answers the two questions the enumeration DP hammers —
    :meth:`joins_between` and :meth:`is_connected` — without rescanning
    ``query.joins``.  Results are exactly those of the
    :class:`Query` methods: predicate lists come back in ``query.joins``
    order (the enumerator's choice of primary predicate, and therefore
    the chosen plan, must not depend on which path built the list).
    """

    def __init__(self, query: Query) -> None:
        self.query = query
        #: relation -> set of directly joined relations.
        self.adjacency: dict[str, set[str]] = {r: set() for r in query.relations}
        #: unordered relation pair -> [(position in query.joins, predicate)].
        self._by_pair: dict[frozenset[str], list[tuple[int, JoinPredicate]]] = {}
        for position, join in enumerate(query.joins):
            self.adjacency.setdefault(join.left_rel, set()).add(join.right_rel)
            self.adjacency.setdefault(join.right_rel, set()).add(join.left_rel)
            pair = frozenset((join.left_rel, join.right_rel))
            self._by_pair.setdefault(pair, []).append((position, join))
        self._connected: dict[frozenset[str], bool] = {}

    def joins_between(
        self, a: frozenset[str], b: frozenset[str]
    ) -> list[JoinPredicate]:
        """Predicates connecting ``a`` and ``b``, in ``query.joins`` order."""
        found: list[tuple[int, JoinPredicate]] = []
        for ra in a:
            for rb in self.adjacency.get(ra, ()):
                if rb in b:
                    found.extend(self._by_pair[frozenset((ra, rb))])
        found.sort(key=lambda entry: entry[0])
        return [join for __, join in found]

    def is_connected(self, subset: frozenset[str]) -> bool:
        """Memoized connectivity of the join graph restricted to ``subset``."""
        cached = self._connected.get(subset)
        if cached is not None:
            return cached
        if len(subset) <= 1:
            result = True
        else:
            remaining = set(subset)
            start = next(iter(subset))
            frontier = {start}
            remaining.discard(start)
            while frontier and remaining:
                reachable = set()
                for rel in frontier:
                    reachable |= self.adjacency.get(rel, set()) & remaining
                frontier = reachable
                remaining -= reachable
            result = not remaining
        self._connected[subset] = result
        return result
