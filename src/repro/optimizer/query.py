"""Query specifications and the join graph.

A :class:`Query` is a select-project-join block: base relations,
equi-join predicates between pairs of them, per-relation selection
predicates and an optional final projection.  Column names must be
unique across the relations of one query (the workload generator
guarantees this), which keeps join schemas flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..catalog.catalog import Catalog
from ..errors import OptimizerError
from ..executor.expressions import Expression


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_rel.left_col = right_rel.right_col``."""

    left_rel: str
    left_col: str
    right_rel: str
    right_col: str

    def connects(self, a: frozenset[str], b: frozenset[str]) -> bool:
        """Does this predicate join relation sets ``a`` and ``b``?"""
        return (self.left_rel in a and self.right_rel in b) or (
            self.left_rel in b and self.right_rel in a
        )

    def oriented(self, outer: frozenset[str]) -> tuple[str, str]:
        """(outer column, inner column) given which side is the outer."""
        if self.left_rel in outer:
            return self.left_col, self.right_col
        return self.right_col, self.left_col

    def __repr__(self) -> str:
        return f"{self.left_rel}.{self.left_col} = {self.right_rel}.{self.right_col}"


@dataclass
class Query:
    """A select-project-join query block.

    Attributes:
        relations: base relation names, in no particular order.
        joins: equi-join predicates.
        selections: per-relation selection predicates (pushed down to
            the scans by the optimizer).
        projection: optional output column list.
    """

    relations: list[str]
    joins: list[JoinPredicate] = field(default_factory=list)
    selections: dict[str, Expression] = field(default_factory=dict)
    projection: tuple[str, ...] | None = None

    def validate(self, catalog: Catalog) -> None:
        """Check the query is well-formed against ``catalog``.

        Raises:
            OptimizerError: on unknown relations/columns, duplicate
                column names across relations, or join predicates that
                reference relations outside the query.
        """
        if not self.relations:
            raise OptimizerError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise OptimizerError("duplicate relation in query")
        seen: dict[str, str] = {}
        for rel in self.relations:
            schema = catalog.table(rel).schema
            for column in schema.names():
                if column in seen:
                    raise OptimizerError(
                        f"column {column!r} appears in both {seen[column]!r} "
                        f"and {rel!r}; query columns must be unique"
                    )
                seen[column] = rel
        rels = set(self.relations)
        for join in self.joins:
            if join.left_rel not in rels or join.right_rel not in rels:
                raise OptimizerError(f"join {join!r} references unknown relation")
            if seen.get(join.left_col) != join.left_rel:
                raise OptimizerError(f"{join.left_col!r} is not a column of {join.left_rel!r}")
            if seen.get(join.right_col) != join.right_rel:
                raise OptimizerError(f"{join.right_col!r} is not a column of {join.right_rel!r}")
        for rel in self.selections:
            if rel not in rels:
                raise OptimizerError(f"selection on unknown relation {rel!r}")

    def joins_between(
        self, a: Iterable[str], b: Iterable[str]
    ) -> list[JoinPredicate]:
        """All join predicates connecting relation sets ``a`` and ``b``."""
        fa, fb = frozenset(a), frozenset(b)
        return [j for j in self.joins if j.connects(fa, fb)]

    def is_connected(self, subset: frozenset[str]) -> bool:
        """Is the join graph restricted to ``subset`` connected?"""
        if len(subset) <= 1:
            return True
        remaining = set(subset)
        frontier = {next(iter(subset))}
        remaining -= frontier
        while frontier and remaining:
            reachable = set()
            for join in self.joins:
                if join.left_rel in frontier and join.right_rel in remaining:
                    reachable.add(join.right_rel)
                if join.right_rel in frontier and join.left_rel in remaining:
                    reachable.add(join.left_rel)
            frontier = reachable
            remaining -= reachable
        return not remaining
