"""Join-order enumeration: access paths, join methods, plan spaces.

The conventional (System-R style) layer under the two-phase strategy:

* access paths — sequential scan with the pushed-down selection, plus
  an index scan when an index covers a bounded column;
* join methods — hash join, merge join (with sorts), nested loops;
* plan spaces — ``left-deep`` (the [HONG91] space: the inner of every
  join is a base relation), ``right-deep`` (the [SCHN90] shape: the
  outer of every join is a base relation, so hash-join builds stack up
  and the probes pipeline) and ``bushy`` (joins over joins, Section 4;
  subsumes both).

Dynamic programming over connected subsets, cross products avoided
whenever the join graph is connected.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterator

from ..catalog.catalog import Catalog
from ..errors import OptimizerError
from ..executor.expressions import column_bounds
from ..plans import nodes as pn
from .query import JoinPredicate, Query

#: Join method names accepted by the enumerator.
JOIN_METHODS = ("hash", "merge", "nestloop")

PlanCost = Callable[[pn.PlanNode], float]


def access_paths(query: Query, relation: str, catalog: Catalog) -> list[pn.PlanNode]:
    """All access paths for one base relation.

    Always the predicate-pushing SeqScan; an IndexScan for each index
    whose column is bounded by the selection (or, unbounded, when the
    index is clustered — a cheap ordered full scan).
    """
    predicate = query.selections.get(relation)
    paths: list[pn.PlanNode] = [pn.SeqScanNode(relation, predicate)]
    entry = catalog.table(relation)
    for index in entry.indexes.values():
        if predicate is None:
            continue
        low, high = column_bounds(predicate, index.column)
        if low is None and high is None:
            continue
        paths.append(
            pn.IndexScanNode(
                relation,
                index.name,
                low=low,
                high=high,
                predicate=predicate,
            )
        )
    return paths


def join_candidates(
    outer: pn.PlanNode,
    inner: pn.PlanNode,
    predicates: list[JoinPredicate],
    outer_rels: frozenset[str],
    *,
    methods: tuple[str, ...] = JOIN_METHODS,
) -> Iterator[pn.PlanNode]:
    """All join operators combining two subplans.

    With an equi-join predicate available: hash, merge (adding sorts)
    and nested loops.  Without one (cross product): nested loops only.
    """
    if not predicates:
        if "nestloop" in methods:
            yield pn.NestLoopJoinNode(outer, inner, None)
        return
    primary = predicates[0]
    outer_col, inner_col = primary.oriented(outer_rels)
    # Extra predicates become residual filters on top of the join.

    def residual(join: pn.PlanNode) -> pn.PlanNode:
        from ..executor.expressions import And, col, eq

        extra = predicates[1:]
        if not extra:
            return join
        conjs = []
        for predicate in extra:
            a, b = predicate.oriented(outer_rels)
            conjs.append(eq(col(a), col(b)))
        return pn.FilterNode(join, And(*conjs) if len(conjs) > 1 else conjs[0])

    if "hash" in methods:
        yield residual(pn.HashJoinNode(outer, inner, outer_col, inner_col))
    if "merge" in methods:
        yield residual(
            pn.MergeJoinNode(
                pn.SortNode(outer, (outer_col,)),
                pn.SortNode(inner, (inner_col,)),
                outer_col,
                inner_col,
            )
        )
    if "nestloop" in methods:
        from ..executor.expressions import col, eq

        yield residual(
            pn.NestLoopJoinNode(outer, inner, eq(col(outer_col), col(inner_col)))
        )


def _proper_subsets(subset: frozenset[str]) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
    """Unordered 2-partitions of ``subset`` (each yielded once)."""
    items = sorted(subset)
    anchor = items[0]
    rest = items[1:]
    for size in range(0, len(rest) + 1):
        for combo in combinations(rest, size):
            left = frozenset((anchor, *combo))
            right = subset - left
            if right:
                yield left, right


def enumerate_space(
    query: Query,
    catalog: Catalog,
    cost: PlanCost,
    *,
    space: str = "bushy",
    methods: tuple[str, ...] = JOIN_METHODS,
    avoid_cross_products: bool = True,
) -> pn.PlanNode:
    """Dynamic-programming search for the cheapest plan.

    Args:
        query: the query block.
        catalog: resolves schemas, indexes and statistics.
        cost: plan-cost function (seqcost or parcost); lower is better.
        space: ``"left-deep"``, ``"right-deep"`` or ``"bushy"``.
        methods: join methods to consider.
        avoid_cross_products: skip unconnected splits when the join
            graph is connected.

    Returns the best complete plan (projection applied when requested).
    """
    if space not in ("left-deep", "right-deep", "bushy"):
        raise OptimizerError(f"unknown plan space: {space!r}")
    query.validate(catalog)
    relations = [frozenset([r]) for r in query.relations]
    best: dict[frozenset[str], tuple[float, pn.PlanNode]] = {}
    for rel_set in relations:
        (name,) = rel_set
        candidates = access_paths(query, name, catalog)
        best[rel_set] = min(((cost(p), p) for p in candidates), key=lambda t: t[0])
    full = frozenset(query.relations)
    allow_cross = not (avoid_cross_products and query.is_connected(full))
    for size in range(2, len(query.relations) + 1):
        for subset in map(frozenset, combinations(sorted(full), size)):
            if not allow_cross and not query.is_connected(subset):
                continue
            candidates: list[tuple[float, pn.PlanNode]] = []
            for left, right in _proper_subsets(subset):
                pairs = [(left, right), (right, left)]
                for outer_set, inner_set in pairs:
                    if space == "left-deep" and len(inner_set) != 1:
                        continue
                    if space == "right-deep" and len(outer_set) != 1:
                        continue
                    if outer_set not in best or inner_set not in best:
                        continue
                    predicates = query.joins_between(outer_set, inner_set)
                    if not predicates and not allow_cross:
                        continue
                    outer_plan = best[outer_set][1]
                    inner_plan = best[inner_set][1]
                    for join in join_candidates(
                        outer_plan, inner_plan, predicates, outer_set, methods=methods
                    ):
                        candidates.append((cost(join), join))
            if candidates:
                best[subset] = min(candidates, key=lambda t: t[0])
    if full not in best:
        raise OptimizerError("no plan found (disconnected join graph?)")
    plan = best[full][1]
    if query.projection:
        plan = pn.ProjectNode(plan, tuple(query.projection))
    return plan


def enumerate_all_bushy(
    query: Query,
    catalog: Catalog,
    *,
    methods: tuple[str, ...] = ("hash",),
    max_relations: int = 7,
) -> Iterator[pn.PlanNode]:
    """Yield *every* bushy plan (no pruning).

    Needed because "the calculation of parcost(p, n) depends on the
    structure of the entire plan tree which makes local pruning ...
    infeasible" (Section 4).  Exponential: capped at ``max_relations``.
    Projections are not applied; callers compare raw join trees.
    """
    if len(query.relations) > max_relations:
        raise OptimizerError(
            f"exhaustive enumeration capped at {max_relations} relations"
        )
    query.validate(catalog)
    full = frozenset(query.relations)
    avoid_cross = query.is_connected(full)
    memo: dict[frozenset[str], list[pn.PlanNode]] = {}

    def plans_for(subset: frozenset[str]) -> list[pn.PlanNode]:
        if subset in memo:
            return memo[subset]
        if len(subset) == 1:
            (name,) = subset
            result = access_paths(query, name, catalog)
        else:
            result = []
            for left, right in _proper_subsets(subset):
                if avoid_cross and not (
                    query.is_connected(left) and query.is_connected(right)
                ):
                    continue
                predicates = query.joins_between(left, right)
                if avoid_cross and not predicates:
                    continue
                for outer_set, inner_set in ((left, right), (right, left)):
                    preds = query.joins_between(outer_set, inner_set)
                    for outer_plan in plans_for(outer_set):
                        for inner_plan in plans_for(inner_set):
                            result.extend(
                                join_candidates(
                                    outer_plan,
                                    inner_plan,
                                    preds,
                                    outer_set,
                                    methods=methods,
                                )
                            )
        memo[subset] = result
        return result

    yield from plans_for(full)
