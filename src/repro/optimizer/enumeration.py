"""Join-order enumeration: access paths, join methods, plan spaces.

The conventional (System-R style) layer under the two-phase strategy:

* access paths — sequential scan with the pushed-down selection, plus
  an index scan when an index covers a bounded column;
* join methods — hash join, merge join (with sorts), nested loops;
* plan spaces — ``left-deep`` (the [HONG91] space: the inner of every
  join is a base relation), ``right-deep`` (the [SCHN90] shape: the
  outer of every join is a base relation, so hash-join builds stack up
  and the probes pipeline) and ``bushy`` (joins over joins, Section 4;
  subsumes both).

Dynamic programming over connected subsets, cross products avoided
whenever the join graph is connected.  Ties on cost are broken by a
deterministic canonical plan key (:func:`plan_shape_key`), so the
chosen plan never depends on candidate generation order — which is what
lets the fast path (memoized parcost plus branch-and-bound skipping,
see :mod:`repro.optimizer.cache`) promise byte-identical plans: a
candidate is only skipped when its provable cost lower bound *strictly*
exceeds the incumbent's true cost and the incumbent also covers its
interesting order, so no skipped candidate could have won either the
cost comparison or the tie-break.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterator

from ..catalog.catalog import Catalog
from ..errors import OptimizerError
from ..executor.expressions import column_bounds
from ..plans import nodes as pn
from .cache import CacheStats
from .query import JoinPredicate, Query

#: Join method names accepted by the enumerator.
JOIN_METHODS = ("hash", "merge", "nestloop")

PlanCost = Callable[[pn.PlanNode], float]


def access_paths(query: Query, relation: str, catalog: Catalog) -> list[pn.PlanNode]:
    """All access paths for one base relation.

    Always the predicate-pushing SeqScan; an IndexScan for each index
    whose column is bounded by the selection (or, unbounded, when the
    index is clustered — a cheap ordered full scan).
    """
    predicate = query.selections.get(relation)
    paths: list[pn.PlanNode] = [pn.SeqScanNode(relation, predicate)]
    entry = catalog.table(relation)
    for index in entry.indexes.values():
        if predicate is None:
            continue
        low, high = column_bounds(predicate, index.column)
        if low is None and high is None:
            continue
        paths.append(
            pn.IndexScanNode(
                relation,
                index.name,
                low=low,
                high=high,
                predicate=predicate,
            )
        )
    return paths


def join_candidates(
    outer: pn.PlanNode,
    inner: pn.PlanNode,
    predicates: list[JoinPredicate],
    outer_rels: frozenset[str],
    *,
    methods: tuple[str, ...] = JOIN_METHODS,
) -> Iterator[pn.PlanNode]:
    """All join operators combining two subplans.

    With an equi-join predicate available: hash, merge (adding sorts)
    and nested loops.  Without one (cross product): nested loops only.
    """
    if not predicates:
        if "nestloop" in methods:
            yield pn.NestLoopJoinNode(outer, inner, None)
        return
    primary = predicates[0]
    outer_col, inner_col = primary.oriented(outer_rels)
    # Extra predicates become residual filters on top of the join.

    def residual(join: pn.PlanNode) -> pn.PlanNode:
        from ..executor.expressions import And, col, eq

        extra = predicates[1:]
        if not extra:
            return join
        conjs = []
        for predicate in extra:
            a, b = predicate.oriented(outer_rels)
            conjs.append(eq(col(a), col(b)))
        return pn.FilterNode(join, And(*conjs) if len(conjs) > 1 else conjs[0])

    if "hash" in methods:
        yield residual(pn.HashJoinNode(outer, inner, outer_col, inner_col))
    if "merge" in methods:
        yield residual(
            pn.MergeJoinNode(
                pn.SortNode(outer, (outer_col,)),
                pn.SortNode(inner, (inner_col,)),
                outer_col,
                inner_col,
            )
        )
    if "nestloop" in methods:
        from ..executor.expressions import col, eq

        yield residual(
            pn.NestLoopJoinNode(outer, inner, eq(col(outer_col), col(inner_col)))
        )


def plan_shape_key(plan: pn.PlanNode) -> str:
    """A deterministic canonical key for a plan's structure.

    Built purely from node labels and tree shape — no node ids, no
    object identity — so structurally equal plans map to equal keys
    regardless of when or by which code path they were constructed.
    Used as the cost tie-breaker: the DP keeps the candidate minimizing
    ``(cost, plan_shape_key)``, making the chosen plan independent of
    candidate generation order (and therefore reproducible across the
    cached and uncached optimizer paths and stable in the golden-plan
    corpus).
    """
    if not plan.children:
        return plan.label()
    inner = ",".join(plan_shape_key(child) for child in plan.children)
    return f"{plan.label()}[{inner}]"


def delivered_order(plan: pn.PlanNode) -> tuple[str, ...]:
    """The sort order a subplan's output is known to satisfy.

    Sort delivers its keys; merge join preserves the outer's join
    column; order-preserving unary operators (filter, project, limit)
    pass their child's order through; everything else delivers none.
    This is the "interesting order" side of dominance pruning: an
    incumbent only shadows a pruned candidate when it delivers at least
    the candidate's order.
    """
    if isinstance(plan, pn.SortNode):
        return tuple(plan.columns)
    if isinstance(plan, pn.MergeJoinNode):
        return (plan.outer_column,)
    if isinstance(plan, (pn.FilterNode, pn.ProjectNode, pn.LimitNode)):
        return delivered_order(plan.children[0])
    return ()


def _order_covered(candidate: tuple[str, ...], incumbent: tuple[str, ...]) -> bool:
    """Does ``incumbent`` deliver every order ``candidate`` delivers?"""
    return incumbent[: len(candidate)] == candidate


#: Relative margin a candidate's lower bound must clear before it is
#: pruned.  The bound is mathematically ``<= parcost``, but the two
#: sides are computed through different float summation orders, so the
#: bound can land a few ulps (~1e-16 relative) *above* the true cost.
#: Requiring ``bound > incumbent * (1 + margin)`` absorbs that rounding
#: noise with seven orders of magnitude to spare while costing
#: essentially no pruning power.
PRUNE_MARGIN = 1e-9


def _proper_subsets(subset: frozenset[str]) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
    """Unordered 2-partitions of ``subset`` (each yielded once)."""
    items = sorted(subset)
    anchor = items[0]
    rest = items[1:]
    for size in range(0, len(rest) + 1):
        for combo in combinations(rest, size):
            left = frozenset((anchor, *combo))
            right = subset - left
            if right:
                yield left, right


class _Incumbent:
    """Streaming best-candidate tracker for one DP subset.

    Keeps the candidate minimizing ``(cost, plan_shape_key)``.  When the
    cost function exposes ``lower_bound`` (the fast path's
    :class:`~repro.optimizer.parcost.ParcostObjective`), candidates
    whose provable bound exceeds the current incumbent's true cost by
    :data:`PRUNE_MARGIN` — and whose interesting order the incumbent
    covers — are dropped without the expensive cost call.  Safety: the
    skipped candidate's true cost is ``>= bound - ulp noise >
    incumbent >= final best``, so it can never win or even tie the
    ``(cost, key)`` minimum; near-ties inside the margin are always
    costed and settled by the key, keeping the chosen plan
    byte-identical to the unpruned search.
    """

    __slots__ = ("cost_fn", "lower_bound", "stats", "cost", "key", "plan", "order")

    def __init__(self, cost_fn: PlanCost, stats: CacheStats | None) -> None:
        self.cost_fn = cost_fn
        self.lower_bound = getattr(cost_fn, "lower_bound", None)
        self.stats = stats
        self.cost: float | None = None
        self.key: str | None = None
        self.plan: pn.PlanNode | None = None
        self.order: tuple[str, ...] = ()

    def offer(self, candidate: pn.PlanNode) -> None:
        stats = self.stats
        if stats is not None:
            stats.candidates += 1
        if self.cost is not None and self.lower_bound is not None:
            if self.lower_bound(candidate) > self.cost * (
                1.0 + PRUNE_MARGIN
            ) and _order_covered(delivered_order(candidate), self.order):
                if stats is not None:
                    stats.pruned += 1
                return
        cost = self.cost_fn(candidate)
        if stats is not None:
            stats.costed += 1
        key = plan_shape_key(candidate)
        if self.cost is None or (cost, key) < (self.cost, self.key):
            self.cost = cost
            self.key = key
            self.plan = candidate
            self.order = delivered_order(candidate)


def enumerate_space(
    query: Query,
    catalog: Catalog,
    cost: PlanCost,
    *,
    space: str = "bushy",
    methods: tuple[str, ...] = JOIN_METHODS,
    avoid_cross_products: bool = True,
    stats: CacheStats | None = None,
) -> pn.PlanNode:
    """Dynamic-programming search for the cheapest plan.

    Args:
        query: the query block.
        catalog: resolves schemas, indexes and statistics.
        cost: plan-cost function (seqcost or parcost); lower is better.
            When it exposes a ``lower_bound(plan)`` method (see
            :class:`~repro.optimizer.parcost.ParcostObjective`),
            candidates provably beaten by the running incumbent are
            skipped without costing.
        space: ``"left-deep"``, ``"right-deep"`` or ``"bushy"``.
        methods: join methods to consider.
        avoid_cross_products: skip unconnected splits when the join
            graph is connected.
        stats: optional counters (candidates/pruned/costed) for
            observability; shared with the caches' stats when the fast
            path is on.

    Returns the best complete plan (projection applied when requested).
    Ties on cost are broken by :func:`plan_shape_key`, so the result is
    independent of enumeration order and of whether pruning ran.
    """
    if space not in ("left-deep", "right-deep", "bushy"):
        raise OptimizerError(f"unknown plan space: {space!r}")
    query.validate(catalog)
    graph = query.join_index()
    best: dict[frozenset[str], tuple[float, pn.PlanNode]] = {}
    for name in query.relations:
        rel_set = frozenset([name])
        incumbent = _Incumbent(cost, stats)
        for path in access_paths(query, name, catalog):
            incumbent.offer(path)
        assert incumbent.plan is not None and incumbent.cost is not None
        best[rel_set] = (incumbent.cost, incumbent.plan)
    full = frozenset(query.relations)
    allow_cross = not (avoid_cross_products and graph.is_connected(full))
    for size in range(2, len(query.relations) + 1):
        for subset in map(frozenset, combinations(sorted(full), size)):
            if not allow_cross and not graph.is_connected(subset):
                continue
            incumbent = _Incumbent(cost, stats)
            for left, right in _proper_subsets(subset):
                pairs = [(left, right), (right, left)]
                for outer_set, inner_set in pairs:
                    if space == "left-deep" and len(inner_set) != 1:
                        continue
                    if space == "right-deep" and len(outer_set) != 1:
                        continue
                    if outer_set not in best or inner_set not in best:
                        continue
                    predicates = graph.joins_between(outer_set, inner_set)
                    if not predicates and not allow_cross:
                        continue
                    outer_plan = best[outer_set][1]
                    inner_plan = best[inner_set][1]
                    for join in join_candidates(
                        outer_plan, inner_plan, predicates, outer_set, methods=methods
                    ):
                        incumbent.offer(join)
            if incumbent.plan is not None and incumbent.cost is not None:
                best[subset] = (incumbent.cost, incumbent.plan)
    if full not in best:
        raise OptimizerError("no plan found (disconnected join graph?)")
    plan = best[full][1]
    if query.projection:
        plan = pn.ProjectNode(plan, tuple(query.projection))
    return plan


def enumerate_all_bushy(
    query: Query,
    catalog: Catalog,
    *,
    methods: tuple[str, ...] = ("hash",),
    max_relations: int = 7,
) -> Iterator[pn.PlanNode]:
    """Yield *every* bushy plan (no pruning).

    Needed because "the calculation of parcost(p, n) depends on the
    structure of the entire plan tree which makes local pruning ...
    infeasible" (Section 4).  Exponential: capped at ``max_relations``.
    Projections are not applied; callers compare raw join trees.
    """
    if len(query.relations) > max_relations:
        raise OptimizerError(
            f"exhaustive enumeration capped at {max_relations} relations"
        )
    query.validate(catalog)
    graph = query.join_index()
    full = frozenset(query.relations)
    avoid_cross = graph.is_connected(full)
    memo: dict[frozenset[str], list[pn.PlanNode]] = {}

    def plans_for(subset: frozenset[str]) -> list[pn.PlanNode]:
        if subset in memo:
            return memo[subset]
        if len(subset) == 1:
            (name,) = subset
            result = access_paths(query, name, catalog)
        else:
            result = []
            for left, right in _proper_subsets(subset):
                if avoid_cross and not (
                    graph.is_connected(left) and graph.is_connected(right)
                ):
                    continue
                predicates = graph.joins_between(left, right)
                if avoid_cross and not predicates:
                    continue
                for outer_set, inner_set in ((left, right), (right, left)):
                    preds = graph.joins_between(outer_set, inner_set)
                    for outer_plan in plans_for(outer_set):
                        for inner_plan in plans_for(inner_set):
                            result.extend(
                                join_candidates(
                                    outer_plan,
                                    inner_plan,
                                    preds,
                                    outer_set,
                                    methods=methods,
                                )
                            )
        memo[subset] = result
        return result

    yield from plans_for(full)
