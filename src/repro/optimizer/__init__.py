"""Optimizer subsystem: query specs, enumeration, parcost, two-phase."""

from .enumeration import (
    JOIN_METHODS,
    access_paths,
    enumerate_all_bushy,
    enumerate_space,
    join_candidates,
)
from .multiquery import (
    MultiQueryResult,
    MultiQueryScheduler,
    QueryOutcome,
    QuerySubmission,
    rewire_dependencies,
)
from .parcost import ParallelCost, parallel_cost, parcost
from .query import JoinPredicate, Query
from .twophase import OptimizedQuery, OptimizerMode, TwoPhaseOptimizer

__all__ = [
    "JOIN_METHODS",
    "JoinPredicate",
    "MultiQueryResult",
    "MultiQueryScheduler",
    "OptimizedQuery",
    "OptimizerMode",
    "ParallelCost",
    "Query",
    "QueryOutcome",
    "QuerySubmission",
    "TwoPhaseOptimizer",
    "access_paths",
    "enumerate_all_bushy",
    "enumerate_space",
    "join_candidates",
    "parallel_cost",
    "parcost",
    "rewire_dependencies",
]
