"""Optimizer subsystem: query specs, enumeration, parcost, two-phase."""

from .cache import CacheStats, OptimizerCaches
from .enumeration import (
    JOIN_METHODS,
    access_paths,
    delivered_order,
    enumerate_all_bushy,
    enumerate_space,
    join_candidates,
    plan_shape_key,
)
from .multiquery import (
    MultiQueryResult,
    MultiQueryScheduler,
    QueryOutcome,
    QuerySubmission,
    rewire_dependencies,
)
from .parcost import (
    ParallelCost,
    ParcostObjective,
    parallel_cost,
    parcost,
    parcost_lower_bound,
)
from .query import JoinGraph, JoinPredicate, Query
from .twophase import OptimizedQuery, OptimizerMode, TwoPhaseOptimizer

__all__ = [
    "JOIN_METHODS",
    "CacheStats",
    "JoinGraph",
    "JoinPredicate",
    "MultiQueryResult",
    "MultiQueryScheduler",
    "OptimizedQuery",
    "OptimizerCaches",
    "OptimizerMode",
    "ParallelCost",
    "ParcostObjective",
    "Query",
    "QueryOutcome",
    "QuerySubmission",
    "TwoPhaseOptimizer",
    "access_paths",
    "delivered_order",
    "enumerate_all_bushy",
    "enumerate_space",
    "join_candidates",
    "parallel_cost",
    "parcost",
    "parcost_lower_bound",
    "plan_shape_key",
    "rewire_dependencies",
]
