"""Parallel optimization and scheduling of multiple queries.

The paper's second piece of future work: "So far, we have only studied
the parallel optimization problem of a single query.  We also plan to
extend our results to deal with parallel optimization of multiple
queries."

Section 4's multi-user advice is the blueprint: "We still find the best
parallel plan for each query using only intra-operation parallelism
with the algorithm in [HONG91], but we rely on the tasks from different
queries submitted by multiple users to achieve maximum resource
utilizations using our scheduling algorithm."  This module implements
exactly that pipeline:

1. phase 1 per query (any :class:`OptimizerMode`);
2. fragment every chosen plan, preserving intra-query dependencies;
3. pool all fragments into one adaptive scheduler run (optionally with
   per-query arrival times);
4. report per-query response times alongside the batch elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..catalog.catalog import Catalog
from ..config import MachineConfig, paper_machine
from ..core.schedulers import InterWithAdjPolicy, SchedulingPolicy
from ..core.task import Task
from ..errors import OptimizerError
from ..plans.costing import CostModel, estimate_plan
from ..plans.fragments import FragmentGraph, fragment_plan
from ..plans.nodes import PlanNode
from ..sim.fluid import FluidSimulator, ScheduleResult
from .query import Query
from .twophase import OptimizerMode, TwoPhaseOptimizer


@dataclass(frozen=True)
class QuerySubmission:
    """One user query entering the system.

    Attributes:
        name: label used in reports.
        query: the query block.
        arrival_time: submission time (0.0 = present at batch start).
    """

    name: str
    query: Query
    arrival_time: float = 0.0


@dataclass
class QueryOutcome:
    """Per-query results of a multi-query schedule."""

    submission: QuerySubmission
    plan: PlanNode
    fragments: FragmentGraph
    tasks: list[Task] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def response_time(self) -> float:
        return self.finished_at - self.submission.arrival_time


@dataclass
class MultiQueryResult:
    """Outcome of optimizing and scheduling a query batch."""

    outcomes: list[QueryOutcome]
    schedule: ScheduleResult

    @property
    def elapsed(self) -> float:
        return self.schedule.elapsed

    @property
    def mean_response_time(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.response_time for o in self.outcomes) / len(self.outcomes)

    def outcome(self, name: str) -> QueryOutcome:
        """The outcome of the query submitted as ``name``."""
        for outcome in self.outcomes:
            if outcome.submission.name == name:
                return outcome
        raise OptimizerError(f"no query named {name!r} in this batch")


class MultiQueryScheduler:
    """Optimize a batch of queries and co-schedule all their fragments.

    Args:
        catalog: shared catalog (all queries run against it).
        machine: the machine configuration.
        cost_model: CPU constants for estimation.
        mode: phase-1 optimizer mode per query.  The paper's multi-user
            recommendation is LEFT_DEEP_SEQ — inter-operation
            parallelism then comes from *other queries'* tasks.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        machine: MachineConfig | None = None,
        cost_model: CostModel | None = None,
        mode: OptimizerMode = OptimizerMode.LEFT_DEEP_SEQ,
    ) -> None:
        self.catalog = catalog
        self.machine = machine or paper_machine()
        self.cost_model = cost_model
        self.mode = mode
        self._optimizer = TwoPhaseOptimizer(
            catalog, machine=self.machine, cost_model=cost_model
        )

    def optimize_batch(
        self, submissions: Sequence[QuerySubmission]
    ) -> list[QueryOutcome]:
        """Phase 1 + fragmentation for every query; no scheduling yet."""
        if not submissions:
            raise OptimizerError("empty query batch")
        names = [s.name for s in submissions]
        if len(set(names)) != len(names):
            raise OptimizerError("duplicate query names in batch")
        outcomes = []
        caches = self._optimizer.caches
        for submission in submissions:
            plan = self._optimizer.choose_plan(submission.query, self.mode)
            # The optimizer's node memo already holds every estimate the
            # phase-1 search produced for this plan's nodes; threading it
            # through makes this a lookup instead of a recosting pass.
            estimate = estimate_plan(
                plan,
                self.catalog,
                cost_model=self.cost_model,
                machine=self.machine,
                cache=caches.node_estimates if caches is not None else None,
            )
            fragments = fragment_plan(plan, estimate)
            named = [
                fragment.to_task(
                    name=f"{submission.name}/frag{fragment.fragment_id}"
                )
                for fragment in fragments.fragments
            ]
            id_by_fragment = {
                fragment.fragment_id: task.task_id
                for fragment, task in zip(fragments.fragments, named)
            }
            wired = [
                task.with_dependencies(
                    id_by_fragment[d] for d in fragment.depends_on
                )
                for fragment, task in zip(fragments.fragments, named)
            ]
            # with_arrival re-keys ids, so re-wire the dependencies.
            arrived = [t.with_arrival(submission.arrival_time) for t in wired]
            tasks = rewire_dependencies(wired, arrived)
            outcomes.append(
                QueryOutcome(
                    submission=submission,
                    plan=plan,
                    fragments=fragments,
                    tasks=tasks,
                )
            )
        return outcomes

    def run(
        self,
        submissions: Sequence[QuerySubmission],
        *,
        policy: SchedulingPolicy | None = None,
    ) -> MultiQueryResult:
        """Optimize the batch and simulate its co-scheduled execution."""
        outcomes = self.optimize_batch(submissions)
        pooled: list[Task] = []
        for outcome in outcomes:
            pooled.extend(outcome.tasks)
        simulator = FluidSimulator(self.machine)
        schedule = simulator.run(pooled, policy or InterWithAdjPolicy())
        for outcome in outcomes:
            records = [
                schedule.record_for(task) for task in outcome.tasks
            ]
            outcome.started_at = min(r.started_at for r in records)
            outcome.finished_at = max(r.finished_at for r in records)
        return MultiQueryResult(outcomes=outcomes, schedule=schedule)


def rewire_dependencies(
    originals: Sequence[Task], rekeyed: Sequence[Task]
) -> list[Task]:
    """Re-attach intra-batch dependencies after task ids changed.

    :meth:`~repro.core.task.Task.with_arrival` returns a copy with a
    *fresh* ``task_id``, which orphans every ``depends_on`` edge between
    tasks of the same batch.  Given the original tasks and their
    positionally matching re-keyed copies, this rewrites each copy's
    dependencies in terms of the new ids.  Both the multi-query batch
    pipeline and the serving layer
    (:mod:`repro.service`) stamp arrival times this way.

    Args:
        originals: tasks whose ``depends_on`` sets reference ids within
            ``originals`` itself.
        rekeyed: the same tasks, in the same order, after an
            id-re-keying copy such as ``with_arrival``.

    Raises:
        OptimizerError: on a length mismatch or a dependency pointing
            outside the batch.
    """
    if len(originals) != len(rekeyed):
        raise OptimizerError(
            "rewire_dependencies: originals and rekeyed differ in length "
            f"({len(originals)} vs {len(rekeyed)})"
        )
    new_id = {
        original.task_id: copy.task_id
        for original, copy in zip(originals, rekeyed)
    }
    rewired: list[Task] = []
    for original, copy in zip(originals, rekeyed):
        try:
            deps = [new_id[d] for d in original.depends_on]
        except KeyError as missing:
            raise OptimizerError(
                f"task {original.name!r} depends on id {missing.args[0]} "
                "which is not part of the batch"
            ) from None
        rewired.append(copy.with_dependencies(deps))
    return rewired
