"""Parallel cost estimation — ``parcost(p, n)`` (Section 4).

"Let T_n(S) be the elapsed time of executing a set of tasks S with n
processors ... This formula is derived directly from our scheduling
algorithm.  We compute parallel execution cost of a plan as
``parcost(p, n) = T_n(F(p))``."

The recursion in the paper *is* a deterministic simulation of the
adaptive scheduling algorithm over the plan's fragments, respecting the
order-dependencies between them.  We therefore compute it by running the
fluid engine with the INTER-WITH-ADJ policy over the fragment tasks —
the same machinery the runtime uses, so the estimate and the execution
agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..config import MachineConfig, paper_machine
from ..core.schedulers import InterWithAdjPolicy, SchedulingPolicy
from ..core.task import Task
from ..plans.costing import CostModel, PlanEstimate, estimate_plan
from ..plans.fragments import FragmentGraph, fragment_plan
from ..plans.nodes import PlanNode
from ..sim.fluid import FluidSimulator, ScheduleResult


@dataclass
class ParallelCost:
    """The full parcost computation for one plan."""

    plan: PlanNode
    estimate: PlanEstimate
    fragments: FragmentGraph
    tasks: list[Task]
    schedule: ScheduleResult

    @property
    def elapsed(self) -> float:
        """``parcost(p, n)`` — predicted parallel elapsed time."""
        return self.schedule.elapsed

    @property
    def seqcost(self) -> float:
        """The conventional sequential cost of the same plan."""
        return self.estimate.seqcost()

    @property
    def speedup(self) -> float:
        return self.seqcost / self.elapsed if self.elapsed > 0 else 0.0


def parallel_cost(
    plan: PlanNode,
    catalog: Catalog,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    policy: SchedulingPolicy | None = None,
) -> ParallelCost:
    """Compute ``parcost(p, n)`` with full intermediate artifacts.

    Args:
        plan: the sequential plan to parallelize.
        catalog: resolves statistics.
        machine: the target machine (``n`` is its processor count).
        cost_model: CPU-time constants for the sequential estimates.
        policy: scheduling policy to simulate (default: the paper's
            INTER-WITH-ADJ algorithm).
    """
    machine = machine or paper_machine()
    estimate = estimate_plan(plan, catalog, cost_model=cost_model, machine=machine)
    fragments = fragment_plan(plan, estimate)
    tasks = fragments.to_tasks()
    simulator = FluidSimulator(machine, adjustment_overhead=0.0)
    schedule = simulator.run(list(tasks), policy or InterWithAdjPolicy())
    return ParallelCost(
        plan=plan,
        estimate=estimate,
        fragments=fragments,
        tasks=tasks,
        schedule=schedule,
    )


def parcost(
    plan: PlanNode,
    catalog: Catalog,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
) -> float:
    """``parcost(p, n)`` as a plain number (the optimizer's cost hook)."""
    return parallel_cost(
        plan, catalog, machine=machine, cost_model=cost_model
    ).elapsed
