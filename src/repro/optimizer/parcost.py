"""Parallel cost estimation — ``parcost(p, n)`` (Section 4).

"Let T_n(S) be the elapsed time of executing a set of tasks S with n
processors ... This formula is derived directly from our scheduling
algorithm.  We compute parallel execution cost of a plan as
``parcost(p, n) = T_n(F(p))``."

The recursion in the paper *is* a deterministic simulation of the
adaptive scheduling algorithm over the plan's fragments, respecting the
order-dependencies between them.  We therefore compute it by running the
fluid engine with the INTER-WITH-ADJ policy over the fragment tasks —
the same machinery the runtime uses, so the estimate and the execution
agree by construction.

Because the simulation depends only on the fragments' canonical
scheduling signature, the machine and the policy, structurally
equivalent subplans share one simulation: with an
:class:`~repro.optimizer.cache.OptimizerCaches` attached, repeat
signatures are answered from the memo with the exact float the fresh
run would have produced.  :class:`ParcostObjective` packages the cached
cost function together with the provable lower bound
``parcost >= max(seqcost / N, D / B)`` that the enumeration's
branch-and-bound skip relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..config import MachineConfig, paper_machine
from ..core.schedulers import (
    InterWithAdjPolicy,
    InterWithoutAdjPolicy,
    IntraOnlyPolicy,
    SchedulingPolicy,
)
from ..core.task import Task
from ..plans.costing import CostModel, PlanEstimate, estimate_plan
from ..plans.fragments import FragmentGraph, fragment_plan
from ..plans.nodes import PlanNode
from ..sim.fluid import FluidSimulator, ScheduleResult
from .cache import OptimizerCaches


@dataclass
class ParallelCost:
    """The full parcost computation for one plan."""

    plan: PlanNode
    estimate: PlanEstimate
    fragments: FragmentGraph
    tasks: list[Task]
    schedule: ScheduleResult

    @property
    def elapsed(self) -> float:
        """``parcost(p, n)`` — predicted parallel elapsed time."""
        return self.schedule.elapsed

    @property
    def seqcost(self) -> float:
        """The conventional sequential cost of the same plan."""
        return self.estimate.seqcost()

    @property
    def speedup(self) -> float:
        return self.seqcost / self.elapsed if self.elapsed > 0 else 0.0


def _policy_cache_key(policy: SchedulingPolicy | None) -> tuple | None:
    """A hashable configuration key for ``policy``, or None if unknown.

    Only exact instances of the three stock policies are keyable: a
    subclass (or a policy carrying external state, like the serving
    gate) could decide differently for the same configuration, so it
    must not share cache entries.  ``None`` means "do not cache".
    """
    if policy is None:
        policy = _DEFAULT_POLICY
    cls = type(policy)
    if cls is InterWithAdjPolicy:
        return (
            "INTER-WITH-ADJ",
            policy.integral,
            policy.use_effective_bandwidth,
            policy.pairing,
            policy.degradation_aware,
            policy.rebalance_threshold,
        )
    if cls is InterWithoutAdjPolicy:
        return (
            "INTER-WITHOUT-ADJ",
            policy.integral,
            policy.use_effective_bandwidth,
        )
    if cls is IntraOnlyPolicy:
        return ("INTRA-ONLY", policy.integral)
    return None


#: Shared default policy instance; ``FluidSimulator.run`` resets it, so
#: reuse is safe and saves one construction per parcost call.
_DEFAULT_POLICY = InterWithAdjPolicy()


def _simulate(
    fragments: FragmentGraph,
    machine: MachineConfig,
    policy: SchedulingPolicy | None,
) -> tuple[list[Task], ScheduleResult]:
    tasks = fragments.to_tasks()
    simulator = FluidSimulator(machine, adjustment_overhead=0.0)
    schedule = simulator.run(list(tasks), policy or _DEFAULT_POLICY)
    return tasks, schedule


def parcost_lower_bound(estimate: PlanEstimate, machine: MachineConfig) -> float:
    """A provable lower bound on ``parcost(p, n)`` from cheap estimates.

    The fluid engine caps the aggregate progress rate at ``N``
    sequential-seconds per second (the processors) and the aggregate io
    service rate at the nominal bandwidth ``B`` (effective bandwidth
    never exceeds it), and adjustment overhead only adds work, so::

        parcost(p, n) >= max(seqcost(p) / N, D(p) / B)

    Candidates whose bound already exceeds the incumbent's true cost
    cannot win and are skipped without simulating (branch-and-bound;
    the skip is strict-inequality-only, so tie-breaking — and therefore
    the chosen plan — is unchanged).
    """
    return max(
        estimate.seqcost() / machine.processors,
        estimate.total_ios() / machine.io_bandwidth,
    )


def parallel_cost(
    plan: PlanNode,
    catalog: Catalog,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    policy: SchedulingPolicy | None = None,
    caches: OptimizerCaches | None = None,
    estimate: PlanEstimate | None = None,
) -> ParallelCost:
    """Compute ``parcost(p, n)`` with full intermediate artifacts.

    Args:
        plan: the sequential plan to parallelize.
        catalog: resolves statistics.
        machine: the target machine (``n`` is its processor count).
        cost_model: CPU-time constants for the sequential estimates.
        policy: scheduling policy to simulate (default: the paper's
            INTER-WITH-ADJ algorithm).
        caches: optional fast-path memos; node estimates are reused and
            the signature cache is (re)populated with this run's
            elapsed time.
        estimate: a precomputed :class:`PlanEstimate` for ``plan``
            (e.g. the one the enumeration already derived), threaded
            through instead of recosting the tree.

    The full artifacts (fragments, tasks, schedule trace) always come
    from a fresh simulation of *this* plan's tasks, so ``schedule``
    records match ``tasks`` by id even when the scalar cache is warm.
    """
    machine = machine or paper_machine()
    if estimate is None:
        estimate = estimate_plan(
            plan,
            catalog,
            cost_model=cost_model,
            machine=machine,
            cache=caches.node_estimates if caches is not None else None,
        )
    fragments = fragment_plan(plan, estimate)
    tasks, schedule = _simulate(fragments, machine, policy)
    if caches is not None:
        key = _policy_cache_key(policy)
        if key is not None:
            caches.parcost_elapsed[(fragments.signature(), machine, key)] = (
                schedule.elapsed
            )
    return ParallelCost(
        plan=plan,
        estimate=estimate,
        fragments=fragments,
        tasks=tasks,
        schedule=schedule,
    )


def parcost(
    plan: PlanNode,
    catalog: Catalog,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    policy: SchedulingPolicy | None = None,
    caches: OptimizerCaches | None = None,
    estimate: PlanEstimate | None = None,
) -> float:
    """``parcost(p, n)`` as a plain number (the optimizer's cost hook).

    With ``caches`` attached, plans whose fragment signature was already
    simulated (for this machine and policy configuration) return the
    memoized elapsed time without running the engine.
    """
    machine = machine or paper_machine()
    if caches is None:
        return parallel_cost(
            plan,
            catalog,
            machine=machine,
            cost_model=cost_model,
            policy=policy,
        ).elapsed
    if estimate is None:
        estimate = estimate_plan(
            plan,
            catalog,
            cost_model=cost_model,
            machine=machine,
            cache=caches.node_estimates,
        )
    fragments = fragment_plan(plan, estimate)
    key = _policy_cache_key(policy)
    if key is None:
        caches.stats.parcost_misses += 1
        return _simulate(fragments, machine, policy)[1].elapsed
    cache_key = (fragments.signature(), machine, key)
    cached = caches.parcost_elapsed.get(cache_key)
    if cached is not None:
        caches.stats.parcost_hits += 1
        return cached
    caches.stats.parcost_misses += 1
    elapsed = _simulate(fragments, machine, policy)[1].elapsed
    caches.parcost_elapsed[cache_key] = elapsed
    return elapsed


class ParcostObjective:
    """``parcost`` as a pluggable enumeration objective.

    Callable like the plain cost hook, but optionally memoized
    (``caches``) and exposing :meth:`lower_bound` so
    :func:`~repro.optimizer.enumeration.enumerate_space` can
    branch-and-bound.  With ``caches=None`` this is the unoptimized
    path: every call estimates, fragments and simulates from scratch
    and no pruning hook is offered — the reference the golden-plan
    corpus compares the fast path against.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        machine: MachineConfig | None = None,
        cost_model: CostModel | None = None,
        policy: SchedulingPolicy | None = None,
        caches: OptimizerCaches | None = None,
    ) -> None:
        self.catalog = catalog
        self.machine = machine or paper_machine()
        self.cost_model = cost_model
        self.policy = policy
        self.caches = caches
        # One-slot memo: enumeration probes lower_bound(plan) and then
        # costs the same plan object, so the estimate built for the
        # bound is handed straight to parcost instead of re-walked.
        self._memo_id = -1
        self._memo_estimate: PlanEstimate | None = None
        if caches is None:
            # Shadow the method: the unoptimized reference path offers no
            # pruning hook, so the enumeration costs every candidate.
            self.lower_bound = None  # type: ignore[assignment]

    @property
    def stats(self):
        return self.caches.stats if self.caches is not None else None

    def __call__(self, plan: PlanNode) -> float:
        estimate = self._estimate(plan) if self.caches is not None else None
        return parcost(
            plan,
            self.catalog,
            machine=self.machine,
            cost_model=self.cost_model,
            policy=self.policy,
            caches=self.caches,
            estimate=estimate,
        )

    def _estimate(self, plan: PlanNode) -> PlanEstimate:
        caches = self.caches
        if caches is not None and self._memo_id == plan.node_id:
            assert self._memo_estimate is not None
            caches.stats.estimate_hits += 1
            return self._memo_estimate
        cache = caches.node_estimates if caches is not None else None
        if caches is not None:
            if plan.node_id in caches.node_estimates:
                caches.stats.estimate_hits += 1
            else:
                caches.stats.estimate_misses += 1
        estimate = estimate_plan(
            plan,
            self.catalog,
            cost_model=self.cost_model,
            machine=self.machine,
            cache=cache,
        )
        if caches is not None:
            self._memo_id = plan.node_id
            self._memo_estimate = estimate
        return estimate

    def lower_bound(self, plan: PlanNode) -> float:
        """Cheap provable bound (see :func:`parcost_lower_bound`)."""
        return parcost_lower_bound(self._estimate(plan), self.machine)
