"""Fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is a plain, ordered list of fault events — the
*plan* of a chaos run.  It is deliberately dumb: no randomness, no
engine knowledge.  Determinism comes from here being pure data; the
:class:`~repro.faults.injector.FaultInjector` turns the plan into timed
engine callbacks.

Four fault kinds, mirroring what the XPRS adjustment protocol must
survive (ISSUE: robustness):

* :class:`DiskDegradation` — a per-disk bandwidth multiplier over an
  interval (``factor = 0.5`` halves every service rate of that disk).
* :class:`DiskStall` — a disk stops dispatching new requests for a
  window (an in-flight request completes normally).
* :class:`SlaveCrash` — one slave backend of a running task dies
  mid-page; the master must restart its stride so no page is lost.
* :class:`MessageFault` — the next master/slave protocol leg at or
  after ``at`` is dropped (never delivered; the master's timeout must
  abort the round) or delayed by ``extra`` seconds.

Schedules can be written by hand, loaded from a JSON file
(:func:`load_schedule`), taken from a named preset
(:func:`preset_schedule`) or drawn from a seeded generator
(:func:`random_schedule`) for property tests.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..errors import FaultError


@dataclass(frozen=True)
class DiskDegradation:
    """Scale one disk's bandwidth by ``factor`` during an interval."""

    disk: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise FaultError("degrade: disk must be >= 0")
        if self.start < 0 or self.duration <= 0:
            raise FaultError("degrade: need start >= 0 and duration > 0")
        if not 0.0 < self.factor <= 1.0:
            raise FaultError("degrade: factor must be in (0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class DiskStall:
    """One disk dispatches nothing during ``[at, at + duration)``."""

    disk: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise FaultError("stall: disk must be >= 0")
        if self.at < 0 or self.duration <= 0:
            raise FaultError("stall: need at >= 0 and duration > 0")

    @property
    def end(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class SlaveCrash:
    """Kill one active slave backend at time ``at``.

    Attributes:
        at: when the crash fires.
        task: name of the task whose slave dies; ``None`` picks a task
            deterministically from the injector's seeded RNG.
        slave_index: index into the task's active (non-retired) slaves,
            taken modulo their count; ``None`` picks one from the RNG.
    """

    at: float
    task: str | None = None
    slave_index: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("crash: at must be >= 0")


@dataclass(frozen=True)
class MessageFault:
    """Drop or delay the next protocol message at or after ``at``.

    Attributes:
        at: earliest simulated time this fault can claim a message.
        kind: ``"drop"`` (the leg is never delivered) or ``"delay"``.
        extra: added latency in seconds (``delay`` only).
    """

    at: float
    kind: str = "drop"
    extra: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("message: at must be >= 0")
        if self.kind not in ("drop", "delay"):
            raise FaultError(f"message: unknown kind {self.kind!r}")
        if self.kind == "delay" and self.extra <= 0:
            raise FaultError("message: delay needs extra > 0")


@dataclass(frozen=True)
class MasterCrash:
    """The whole engine dies at time ``at``.

    Unlike a :class:`SlaveCrash` (which the master repairs in-line),
    a master crash ends the run: the engine raises
    :class:`~repro.errors.MasterCrashError` out of ``run()``.  Only the
    recovery harness (:func:`repro.recovery.run_with_recovery`) can
    continue — by resuming from the last checkpoint, or from scratch
    when checkpointing is off.
    """

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("master-crash: at must be >= 0")


@dataclass(frozen=True)
class QueryDeadline:
    """Cancel one task cooperatively when it is unfinished at ``at``.

    The engine-level form of a deadline budget: when the task named
    ``task`` has not completed by ``at``, the master cancels it at a
    clean event boundary — slaves released, in-flight adjustment rounds
    staled out, page conservation intact — and records a
    :class:`~repro.errors.DeadlineExceededError` in the fault log
    instead of wedging.

    Attributes:
        at: the absolute virtual-time deadline.
        task: name of the task under the deadline.
    """

    at: float
    task: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError("deadline: at must be >= 0")
        if not self.task:
            raise FaultError("deadline: a task name is required")


Fault = (
    DiskDegradation
    | DiskStall
    | SlaveCrash
    | MessageFault
    | MasterCrash
    | QueryDeadline
)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered plan of fault events."""

    faults: tuple[Fault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def degradations(self) -> tuple[DiskDegradation, ...]:
        return tuple(f for f in self.faults if isinstance(f, DiskDegradation))

    @property
    def stalls(self) -> tuple[DiskStall, ...]:
        return tuple(f for f in self.faults if isinstance(f, DiskStall))

    @property
    def crashes(self) -> tuple[SlaveCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, SlaveCrash))

    @property
    def message_faults(self) -> tuple[MessageFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, MessageFault))

    @property
    def master_crashes(self) -> tuple[MasterCrash, ...]:
        return tuple(f for f in self.faults if isinstance(f, MasterCrash))

    @property
    def deadlines(self) -> tuple[QueryDeadline, ...]:
        return tuple(f for f in self.faults if isinstance(f, QueryDeadline))

    def without_master_crashes(self) -> "FaultSchedule":
        """This schedule with every :class:`MasterCrash` removed."""
        return FaultSchedule(
            tuple(f for f in self.faults if not isinstance(f, MasterCrash))
        )

    def validate_against(self, n_disks: int) -> None:
        """Reject faults naming a disk outside ``[0, n_disks)``."""
        for fault in self.faults:
            disk = getattr(fault, "disk", None)
            if disk is not None and disk >= n_disks:
                raise FaultError(
                    f"fault names disk {disk} but the machine has {n_disks}"
                )


# ---------------------------------------------------------------------------
# parsing


_KIND_KEYS = {
    "degrade": ("disk", "start", "duration", "factor"),
    "stall": ("disk", "at", "duration"),
    "crash": ("at", "task", "slave_index"),
    "drop": ("at",),
    "delay": ("at", "extra"),
    "master-crash": ("at",),
    "deadline": ("at", "task"),
}


def fault_from_dict(raw: dict) -> Fault:
    """Build one fault from its JSON dict (see ``docs/FAULTS.md``)."""
    if not isinstance(raw, dict):
        raise FaultError(f"fault entry must be an object, got {raw!r}")
    kind = raw.get("kind")
    if kind not in _KIND_KEYS:
        raise FaultError(f"unknown fault kind: {kind!r}")
    unknown = set(raw) - set(_KIND_KEYS[kind]) - {"kind"}
    if unknown:
        raise FaultError(f"{kind}: unknown keys {sorted(unknown)}")
    args = {k: raw[k] for k in _KIND_KEYS[kind] if k in raw}
    try:
        if kind == "degrade":
            return DiskDegradation(**args)
        if kind == "stall":
            return DiskStall(**args)
        if kind == "crash":
            return SlaveCrash(**args)
        if kind == "drop":
            return MessageFault(kind="drop", **args)
        if kind == "master-crash":
            return MasterCrash(**args)
        if kind == "deadline":
            return QueryDeadline(**args)
        return MessageFault(kind="delay", **args)
    except TypeError as exc:
        raise FaultError(f"{kind}: {exc}") from None


def schedule_from_dicts(entries: list[dict]) -> FaultSchedule:
    """A schedule from a list of fault dicts."""
    return FaultSchedule(tuple(fault_from_dict(e) for e in entries))


def load_schedule(path: str) -> FaultSchedule:
    """Load a schedule from a JSON file: ``{"faults": [...]}``."""
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise FaultError(f"cannot read fault schedule {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise FaultError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(raw, dict) or "faults" not in raw:
        raise FaultError(f'{path}: expected an object with a "faults" list')
    if not isinstance(raw["faults"], list):
        raise FaultError(f'{path}: "faults" must be a list')
    return schedule_from_dicts(raw["faults"])


# ---------------------------------------------------------------------------
# presets and generators


def preset_schedule(name: str, *, horizon: float = 60.0) -> FaultSchedule:
    """A named, fully deterministic schedule scaled to ``horizon`` seconds.

    Presets:
        ``slow-disk`` — disk 0 at half bandwidth from ``horizon/3`` on.
        ``stall``     — two transient stalls on disks 0 and 1.
        ``crashes``   — three slave crashes spread over the run.
        ``messages``  — dropped and delayed protocol legs.
        ``mixed``     — all of the above at once.
        ``crash-heavy`` — three master crashes plus slave crashes and a
        degradation: the recovery benchmark's schedule.
    """
    t = horizon
    table: dict[str, tuple[Fault, ...]] = {
        "slow-disk": (
            DiskDegradation(disk=0, start=t / 3, duration=t, factor=0.5),
        ),
        "stall": (
            DiskStall(disk=0, at=t / 4, duration=t / 20),
            DiskStall(disk=1, at=t / 2, duration=t / 20),
        ),
        "crashes": (
            SlaveCrash(at=t / 5),
            SlaveCrash(at=2 * t / 5),
            SlaveCrash(at=3 * t / 5),
        ),
        "messages": (
            MessageFault(at=t / 10, kind="drop"),
            MessageFault(at=t / 4, kind="delay", extra=t / 100),
            MessageFault(at=t / 2, kind="drop"),
        ),
    }
    table["mixed"] = (
        table["slow-disk"]
        + table["stall"][:1]
        + table["crashes"][:2]
        + table["messages"]
    )
    # The recovery benchmark's schedule: three whole-engine crashes late
    # in the run (where a restart-from-scratch hurts most) on top of the
    # usual slave crashes and a mid-run degradation.
    table["crash-heavy"] = (
        DiskDegradation(disk=0, start=t / 4, duration=t / 2, factor=0.6),
        SlaveCrash(at=t / 6),
        SlaveCrash(at=t / 2),
        MasterCrash(at=0.35 * t),
        MasterCrash(at=0.6 * t),
        MasterCrash(at=0.85 * t),
    )
    try:
        return FaultSchedule(table[name])
    except KeyError:
        raise FaultError(
            f"unknown preset {name!r}; choose from {sorted(table)}"
        ) from None


def random_schedule(
    seed: int,
    *,
    horizon: float = 60.0,
    n_disks: int = 4,
    task_names: tuple[str, ...] = (),
    max_faults: int = 8,
) -> FaultSchedule:
    """A seeded random schedule for property tests.

    Same ``(seed, horizon, n_disks, task_names, max_faults)`` always
    yields the same schedule.
    """
    rng = random.Random(seed)
    faults: list[Fault] = []
    for __ in range(rng.randint(1, max_faults)):
        kind = rng.choice(("degrade", "stall", "crash", "drop", "delay"))
        at = rng.uniform(0.0, horizon)
        if kind == "degrade":
            faults.append(
                DiskDegradation(
                    disk=rng.randrange(n_disks),
                    start=at,
                    duration=rng.uniform(horizon / 20, horizon / 2),
                    factor=rng.uniform(0.25, 0.9),
                )
            )
        elif kind == "stall":
            faults.append(
                DiskStall(
                    disk=rng.randrange(n_disks),
                    at=at,
                    duration=rng.uniform(horizon / 100, horizon / 10),
                )
            )
        elif kind == "crash":
            task = rng.choice(task_names) if task_names and rng.random() < 0.7 else None
            faults.append(SlaveCrash(at=at, task=task))
        elif kind == "drop":
            faults.append(MessageFault(at=at, kind="drop"))
        else:
            faults.append(MessageFault(at=at, kind="delay", extra=rng.uniform(0.01, 0.2)))
    faults.sort(key=_fault_time)
    return FaultSchedule(tuple(faults))


def with_deadlines(
    schedule: FaultSchedule,
    seed: int,
    *,
    horizon: float,
    task_names: tuple[str, ...],
    max_deadlines: int = 2,
) -> FaultSchedule:
    """Layer seeded :class:`QueryDeadline` events onto a schedule.

    A *separate* generator on a separate RNG so the draw sequence of
    :func:`random_schedule` (pinned by the frozen trace corpus) is
    untouched.  Deadlines land in the middle half of the horizon, where
    the named tasks are typically still running.
    """
    if not task_names:
        raise FaultError("with_deadlines: task_names must be non-empty")
    rng = random.Random(f"deadlines:{seed}")
    extra: list[Fault] = []
    for __ in range(rng.randint(1, max_deadlines)):
        extra.append(
            QueryDeadline(
                at=rng.uniform(horizon / 4, 3 * horizon / 4),
                task=rng.choice(task_names),
            )
        )
    faults = list(schedule.faults) + extra
    faults.sort(key=_fault_time)
    return FaultSchedule(tuple(faults))


def _fault_time(fault: Fault) -> float:
    return getattr(fault, "start", None) or getattr(fault, "at", 0.0)
