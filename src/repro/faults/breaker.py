"""A circuit breaker for the admission gate.

Classic three-state machine driven by simulated time:

* **closed** — submissions flow; consecutive shed events are counted,
  and reaching ``failure_threshold`` opens the breaker.
* **open** — every offer is rejected immediately (no queueing work,
  no retry churn against a saturated service) until ``cooldown``
  seconds pass.
* **half-open** — one probe submission is let through; success closes
  the breaker, failure re-opens it for another cooldown.

Beyond the reactive failure count, the breaker *proactively* opens
under sustained degradation: :meth:`observe_bandwidth` is fed the
measured-to-nominal bandwidth ratio each gate round, and a ratio below
``degraded_fraction`` lasting ``degraded_grace`` seconds trips it —
shedding load before the queues overflow, which is exactly when a
degraded machine needs relief.  Every transition is appended to
:attr:`timeline`, the breaker-state series the robustness metrics
report.
"""

from __future__ import annotations

from ..errors import FaultError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Admission-gate circuit breaker (see the module docstring).

    Args:
        failure_threshold: consecutive failures that open the breaker.
        cooldown: seconds the breaker stays open before half-opening.
        degraded_fraction: measured/nominal bandwidth ratio below which
            the machine counts as degraded.
        degraded_grace: seconds of sustained degradation that trip the
            breaker proactively.
        tracer: a :class:`~repro.obs.Tracer`; every state transition is
            additionally emitted as an instant on the ``breaker`` track.
            ``None`` (or the falsy NullTracer) records nothing.  The
            :attr:`timeline` attribute is kept either way, so existing
            consumers are unaffected.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 4,
        cooldown: float = 30.0,
        degraded_fraction: float = 0.6,
        degraded_grace: float = 15.0,
        tracer=None,
    ) -> None:
        if failure_threshold < 1:
            raise FaultError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise FaultError("cooldown must be positive")
        if not 0.0 < degraded_fraction <= 1.0:
            raise FaultError("degraded_fraction must be in (0, 1]")
        if degraded_grace < 0:
            raise FaultError("degraded_grace must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.degraded_fraction = degraded_fraction
        self.degraded_grace = degraded_grace
        self.tracer = tracer or None
        self.reset()

    def reset(self) -> None:
        """Return to a fresh closed breaker with an empty timeline."""
        self.state = CLOSED
        self.timeline: list[tuple[float, str]] = [(0.0, CLOSED)]
        self.open_rejections = 0
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._degraded_since: float | None = None

    # -- transitions --------------------------------------------------------------

    def _transition(self, now: float, state: str) -> None:
        if state != self.state:
            self.state = state
            self.timeline.append((now, state))
            if self.tracer is not None:
                self.tracer.instant(
                    f"breaker {state}",
                    t=now,
                    track="breaker",
                    cat="fault",
                )

    def _open(self, now: float) -> None:
        self._transition(now, OPEN)
        self._opened_at = now
        self._failures = 0
        self._probe_inflight = False

    # -- gate interface -----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a submission be offered right now?

        In the open state, returns ``False`` until the cooldown ends,
        then half-opens and admits exactly one probe at a time.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.cooldown:
                self.open_rejections += 1
                return False
            self._transition(now, HALF_OPEN)
        # Half-open: one probe in flight at a time.
        if self._probe_inflight:
            self.open_rejections += 1
            return False
        self._probe_inflight = True
        return True

    def record_success(self, now: float) -> None:
        """An offered submission was accepted by the queues."""
        self._failures = 0
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._transition(now, CLOSED)

    def record_failure(self, now: float) -> None:
        """An offered submission was shed (queue full)."""
        if self.state == HALF_OPEN:
            self._open(now)
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._open(now)

    def observe_bandwidth(self, now: float, fraction: float) -> None:
        """Feed the measured/nominal bandwidth ratio; trip if sustained low."""
        if fraction >= self.degraded_fraction:
            self._degraded_since = None
            return
        if self._degraded_since is None:
            self._degraded_since = now
            return
        if (
            self.state == CLOSED
            and now - self._degraded_since >= self.degraded_grace
        ):
            self._open(now)
