"""The fault injector: live fault state plus the fault log.

The injector is the bridge between a pure :class:`FaultSchedule` and an
execution engine.  The engine owns the event heap, so *it* arms the
timed transitions (degradation begin/end, stall begin, crash instants)
and calls back into the injector, which tracks:

* which :class:`~repro.faults.schedule.DiskDegradation` windows are
  active per disk (:meth:`multiplier` is their product);
* until when each disk is stalled (:meth:`stalled_until`);
* which :class:`~repro.faults.schedule.MessageFault` is next in line
  (:meth:`message_fate` consumes them in ``at`` order);
* a seeded RNG used for crash-target picks, so a schedule that says
  "crash *someone*" is still deterministic per seed;
* the :class:`FaultLog` — every injected fault and every tolerance
  action (re-read pages, aborted adjustment rounds) as a timestamped,
  byte-reproducible trace.

One injector serves one engine run.  :meth:`reset` rewinds it so the
same instance can drive a repeat run (the determinism tests do).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import FaultError
from .schedule import DiskDegradation, DiskStall, FaultSchedule


@dataclass
class FaultLog:
    """Timestamped trace and counters of one faulted run."""

    events: list[tuple[float, str, str]] = field(default_factory=list)
    degradations: int = 0
    stalls: int = 0
    crashes: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    pages_reread: int = 0
    adjust_timeouts: int = 0
    adjust_aborts: int = 0
    master_crashes: int = 0
    deadline_cancels: int = 0

    def record(self, t: float, kind: str, detail: str) -> None:
        """Append one ``(t, kind, detail)`` event."""
        self.events.append((t, kind, detail))

    @property
    def faults_injected(self) -> int:
        """Total faults that actually fired (not merely scheduled)."""
        return (
            self.degradations
            + self.stalls
            + self.crashes
            + self.messages_dropped
            + self.messages_delayed
            + self.master_crashes
            + self.deadline_cancels
        )

    def to_lines(self) -> list[str]:
        """The event trace as stable, printable lines."""
        return [
            f"t={t:10.3f}  {kind:<8s} {detail}" for t, kind, detail in self.events
        ]


class FaultInjector:
    """Live fault state for one engine run (see the module docstring).

    Args:
        schedule: the fault plan.
        seed: seeds the RNG used for unspecified crash targets.
    """

    def __init__(self, schedule: FaultSchedule, *, seed: int = 0) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultError("injector needs a FaultSchedule")
        self.schedule = schedule
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Rewind all live state for a fresh run of the same schedule."""
        self.rng = random.Random(self.seed)
        self.log = FaultLog()
        self._active: dict[int, list[DiskDegradation]] = {}
        self._stalled_until: dict[int, float] = {}
        self._message_queue = sorted(
            self.schedule.message_faults, key=lambda f: f.at
        )

    # -- disk degradation ---------------------------------------------------------

    def begin_degradation(self, fault: DiskDegradation, now: float) -> None:
        """Activate a degradation window (called by the engine at start)."""
        self._active.setdefault(fault.disk, []).append(fault)
        self.log.degradations += 1
        self.log.record(
            now,
            "degrade",
            f"disk {fault.disk} at {fault.factor:.0%} bandwidth "
            f"for {fault.duration:g}s",
        )

    def end_degradation(self, fault: DiskDegradation, now: float) -> None:
        """Deactivate a degradation window (called by the engine at end)."""
        active = self._active.get(fault.disk, [])
        if fault in active:
            active.remove(fault)
            self.log.record(now, "recover", f"disk {fault.disk} back to full bandwidth")

    def multiplier(self, disk_id: int) -> float:
        """Current bandwidth factor of one disk (1.0 = healthy)."""
        factor = 1.0
        for fault in self._active.get(disk_id, []):
            factor *= fault.factor
        return factor

    # -- disk stalls --------------------------------------------------------------

    def begin_stall(self, fault: DiskStall, now: float) -> None:
        """Freeze a disk until the stall's end (called by the engine)."""
        until = max(self._stalled_until.get(fault.disk, 0.0), fault.end)
        self._stalled_until[fault.disk] = until
        self.log.stalls += 1
        self.log.record(
            now, "stall", f"disk {fault.disk} frozen for {fault.duration:g}s"
        )

    def stalled_until(self, disk_id: int) -> float:
        """Until when the disk dispatches nothing (0.0 = not stalled)."""
        return self._stalled_until.get(disk_id, 0.0)

    def skip_messages_before(self, t: float) -> None:
        """Drop pending message faults with ``at <= t`` (resume support).

        A resumed engine cannot know which message faults the crashed
        attempt had already consumed; the convention is that every fault
        timed at or before the checkpoint is spent.
        """
        self._message_queue = [f for f in self._message_queue if f.at > t]

    # -- protocol messages --------------------------------------------------------

    def message_fate(self, now: float) -> tuple[str, float]:
        """Fate of the next protocol leg sent at ``now``.

        Consumes at most one pending :class:`MessageFault` whose ``at``
        has passed.  Returns ``("ok", 0.0)``, ``("drop", 0.0)`` or
        ``("delay", extra_seconds)``.
        """
        if self._message_queue and self._message_queue[0].at <= now:
            fault = self._message_queue.pop(0)
            if fault.kind == "drop":
                self.log.messages_dropped += 1
                self.log.record(now, "drop", "protocol message lost")
                return "drop", 0.0
            self.log.messages_delayed += 1
            self.log.record(
                now, "delay", f"protocol message delayed {fault.extra:g}s"
            )
            return "delay", fault.extra
        return "ok", 0.0
