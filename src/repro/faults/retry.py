"""Retry with capped exponential backoff and deterministic jitter.

Used by the serving gate: a submission shed by a full queue (or a
breaker-open gate) is re-offered after a backoff delay instead of being
rejected outright.  The jitter decorrelates retry storms — but unlike
wall-clock jitter it is a pure function of ``(seed, submission_id,
attempt)``, so a seeded service run stays byte-reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes:
        max_retries: re-offers after the first failed attempt
            (0 disables retrying — the pre-hardening behaviour).
        base_delay: backoff before the first retry, seconds.
        multiplier: exponential growth factor per attempt.
        max_delay: backoff cap, seconds (before jitter).
        jitter: jitter span as a fraction of the backoff; the actual
            addition is drawn deterministically from
            ``[0, jitter * delay]``.
        seed: seeds the jitter stream.
    """

    max_retries: int = 3
    base_delay: float = 2.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError("max_retries must be >= 0")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise FaultError("need 0 < base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise FaultError("multiplier must be >= 1")
        if self.jitter < 0:
            raise FaultError("jitter must be >= 0")

    def backoff(self, submission_id: int, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based) of a submission."""
        if attempt < 0:
            raise FaultError("attempt must be >= 0")
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        spread = random.Random(
            f"{self.seed}:{submission_id}:{attempt}"
        ).uniform(0.0, self.jitter * delay)
        return delay + spread
