"""The chaos harness: the page-level simulator under injected faults.

One chaos run takes a mixed scan workload (an IO-bound scan, a
CPU-bound scan and a random-access range scan — the same shape the
paper's experiments stress), runs it healthy to measure a baseline,
then replays it under a :class:`~repro.faults.schedule.FaultSchedule`
with the degradation-aware INTER-WITH-ADJ policy and the hardened
adjustment protocol.  The :class:`ChaosReport` carries both runs, the
fault log and the tolerance verdict:

* every page processed exactly once (the engine raises on violation and
  a task cannot complete with pages missing);
* every adjustment timeout resolved by abort-and-restart — the number
  of aborts equals the number of timeouts, i.e. no round wedged.

Everything is a pure function of ``(workload, schedule, seed)``, so two
identical invocations print byte-identical reports — the determinism
tests rely on it.

This module imports the simulators and therefore must NOT be imported
from ``repro.faults.__init__`` (the simulators import that package).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig, paper_machine
from ..core.schedulers import InterWithAdjPolicy
from ..core.task import IOPattern
from ..errors import FaultError
from ..recovery.manager import RecoveryManager, RecoveryRun, run_with_recovery
from ..sim.fluid import ScheduleResult
from ..sim.micro import MicroSimulator, ScanSpec, spec_for_io_rate
from .injector import FaultLog
from .schedule import (
    FaultSchedule,
    MasterCrash,
    preset_schedule,
    random_schedule,
    with_deadlines,
)

#: Scan shapes of the standard chaos workload: (name, io rate in ios/s,
#: pages at full size, access pattern, partitioning protocol).
_WORKLOAD_SHAPE = (
    ("io0", 55.0, 1500, IOPattern.SEQUENTIAL, "page"),
    ("cpu0", 8.0, 400, IOPattern.SEQUENTIAL, "page"),
    ("rnd0", 20.0, 300, IOPattern.RANDOM, "range"),
)


def chaos_workload(
    machine: MachineConfig, *, scale: float = 1.0
) -> list[ScanSpec]:
    """The standard three-scan chaos workload, optionally shrunk.

    ``scale`` multiplies every page count (the ``--smoke`` run uses a
    small fraction to stay under a second of wall clock).
    """
    if scale <= 0:
        raise FaultError("scale must be positive")
    specs = []
    for name, io_rate, n_pages, pattern, partitioning in _WORKLOAD_SHAPE:
        specs.append(
            spec_for_io_rate(
                name,
                machine,
                io_rate=io_rate,
                n_pages=max(int(n_pages * scale), 8),
                pattern=pattern,
                partitioning=partitioning,
            )
        )
    return specs


@dataclass
class ChaosReport:
    """Outcome of one chaos run (healthy baseline + faulted replay).

    ``recovery`` is set when the schedule contained ``master-crash``
    faults: the faulted arm is then driven by
    :func:`~repro.recovery.manager.run_with_recovery` and ``faulted``
    is the final (completed) attempt's result.
    """

    schedule: FaultSchedule
    seed: int
    healthy: ScheduleResult
    faulted: ScheduleResult
    recovery: RecoveryRun | None = None

    @property
    def log(self) -> FaultLog:
        """The faulted run's fault log."""
        assert self.faulted.fault_log is not None
        return self.faulted.fault_log

    @property
    def slowdown(self) -> float:
        """Faulted elapsed over healthy elapsed."""
        if self.healthy.elapsed <= 0:
            return 1.0
        return self.faulted.elapsed / self.healthy.elapsed

    @property
    def wedged_adjustments(self) -> int:
        """Timed-out rounds that did *not* resolve via abort (want 0)."""
        return self.log.adjust_timeouts - self.log.adjust_aborts

    @property
    def ok(self) -> bool:
        """Did the run tolerate every fault?

        Completion of every task implies page conservation: the engine
        raises on any page processed twice, and a task only completes
        once every page is processed.  Deadline-cancelled tasks are
        accounted explicitly — completed plus cancelled must cover the
        healthy run's task set, so nothing vanishes silently.  On top
        of that, every protocol timeout must have resolved via
        abort-and-restart.
        """
        accounted = len(self.faulted.records) + len(
            self.faulted.cancel_records
        )
        return (
            accounted == len(self.healthy.records)
            and self.wedged_adjustments == 0
        )

    def to_lines(self) -> list[str]:
        """The report as stable, printable lines."""
        log = self.log
        lines = [
            f"chaos seed={self.seed} faults={len(self.schedule)} scheduled",
            f"healthy elapsed: {self.healthy.elapsed:.4f}s "
            f"({self.healthy.adjustments} adjustments)",
            f"faulted elapsed: {self.faulted.elapsed:.4f}s "
            f"({self.faulted.adjustments} adjustments, "
            f"slowdown {self.slowdown:.2f}x)",
            "fault log:",
            *("  " + line for line in log.to_lines()),
            "counters:",
            f"  faults injected:   {log.faults_injected}",
            f"  degradations:      {log.degradations}",
            f"  stalls:            {log.stalls}",
            f"  slave crashes:     {log.crashes}",
            f"  messages dropped:  {log.messages_dropped}",
            f"  messages delayed:  {log.messages_delayed}",
            f"  pages re-read:     {log.pages_reread}",
            f"  adjust timeouts:   {log.adjust_timeouts}",
            f"  adjust aborts:     {log.adjust_aborts}",
            f"  master crashes:    {log.master_crashes}",
            f"  deadline cancels:  {log.deadline_cancels}",
        ]
        if self.recovery is not None:
            rec = self.recovery
            lines += [
                "recovery:",
                f"  attempts:          {rec.attempts}",
                f"  checkpoints:       {rec.checkpoints}",
                f"  restores:          {rec.restores}",
                f"  lost work:         {rec.lost_work:.4f}s",
            ]
        cancelled = len(self.faulted.cancel_records)
        lines.append(
            f"verdict: {'OK' if self.ok else 'FAILED'} "
            f"({len(self.faulted.records)}+{cancelled}/"
            f"{len(self.healthy.records)} tasks, "
            f"{self.wedged_adjustments} wedged adjustments)"
        )
        return lines


def run_chaos(
    *,
    schedule: FaultSchedule | None = None,
    preset: str = "mixed",
    seed: int = 0,
    scale: float = 1.0,
    machine: MachineConfig | None = None,
    adjust_timeout: float = 0.5,
    consult_interval: float = 1.0,
) -> ChaosReport:
    """One chaos run: healthy baseline, then the faulted replay.

    Args:
        schedule: explicit fault schedule; ``None`` derives one from
            ``preset`` scaled to the measured healthy elapsed time.
        preset: preset name used when ``schedule`` is ``None``.
        seed: seeds both the workload's random block orders and the
            injector's crash-target picks.
        scale: workload size multiplier (smoke runs shrink it).
        machine: machine configuration (defaults to the paper machine).
        adjust_timeout: master's adjustment-round timeout, seconds.
        consult_interval: master-tick period, seconds; the policy needs
            ticks to notice mid-task bandwidth drift.
    """
    machine = machine or paper_machine()
    specs = chaos_workload(machine, scale=scale)

    def policy() -> InterWithAdjPolicy:
        return InterWithAdjPolicy(integral=True, degradation_aware=True)

    healthy = MicroSimulator(
        machine, seed=seed, consult_interval=consult_interval
    ).run(specs, policy())
    if schedule is None:
        schedule = preset_schedule(preset, horizon=healthy.elapsed)
    simulator = MicroSimulator(
        machine,
        seed=seed,
        consult_interval=consult_interval,
        faults=schedule,
        fault_seed=seed,
        adjust_timeout=adjust_timeout,
    )
    recovery: RecoveryRun | None = None
    if schedule.master_crashes:
        # Master crashes abort the whole run; drive it to completion
        # through the checkpoint/resume loop.
        recovery = run_with_recovery(
            simulator,
            specs,
            policy(),
            manager=RecoveryManager(min_interval=consult_interval),
        )
        faulted = recovery.result
    else:
        faulted = simulator.run(specs, policy())
    return ChaosReport(
        schedule=schedule,
        seed=seed,
        healthy=healthy,
        faulted=faulted,
        recovery=recovery,
    )


@dataclass
class SoakReport:
    """Aggregate verdict of a chaos soak (many schedules × seeds).

    A soak run is the recovery subsystem's endurance test: every run
    must conserve pages (completed + cancelled tasks cover the healthy
    task set) and resolve every adjustment timeout — one wedged round
    anywhere fails the whole soak.
    """

    n_schedules: int
    seeds: tuple[int, ...]
    runs: int = 0
    cancels: int = 0
    crashes: int = 0
    restores: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_lines(self) -> list[str]:
        """Render the soak summary block, one counter per line."""
        lines = [
            f"soak: {self.runs} runs "
            f"({self.n_schedules} schedules x seeds {list(self.seeds)})",
            f"  deadline cancels:  {self.cancels}",
            f"  master crashes:    {self.crashes}",
            f"  restores:          {self.restores}",
        ]
        lines.extend(f"  FAILED {failure}" for failure in self.failures)
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'} "
                     f"({len(self.failures)} failures)")
        return lines


def run_soak(
    *,
    n_schedules: int = 25,
    seeds: tuple[int, ...] = (0, 1, 2),
    scale: float = 0.2,
    machine: MachineConfig | None = None,
    max_deadlines: int = 2,
) -> SoakReport:
    """Chaos-soak the engine: random fault schedules layered with
    deadline cancellations, every combination checked for conservation
    and wedge-freedom.

    For each seed, ``n_schedules`` seeded random schedules are drawn
    against the measured healthy horizon, each layered with up to
    ``max_deadlines`` :class:`~repro.faults.schedule.QueryDeadline`
    events, and replayed.  Pure function of its arguments — a CI soak
    and a local one disagree only if the engine does.
    """
    machine = machine or paper_machine()
    task_names = tuple(shape[0] for shape in _WORKLOAD_SHAPE)
    report = SoakReport(n_schedules=n_schedules, seeds=tuple(seeds))
    for seed in seeds:
        horizon = MicroSimulator(
            machine, seed=seed, consult_interval=1.0
        ).run(chaos_workload(machine, scale=scale),
              InterWithAdjPolicy(integral=True, degradation_aware=True),
              ).elapsed
        for index in range(n_schedules):
            schedule = random_schedule(
                index, horizon=horizon, task_names=task_names
            )
            schedule = with_deadlines(
                schedule,
                index,
                horizon=horizon,
                task_names=task_names,
                max_deadlines=max_deadlines,
            )
            if index % 5 == 0:
                # Every fifth schedule also loses the master mid-run,
                # so the soak exercises checkpointed resume under
                # random fault mixes, not just the curated preset.
                schedule = FaultSchedule(
                    schedule.faults + (MasterCrash(at=0.4 * horizon),)
                )
            run = run_chaos(schedule=schedule, seed=seed, scale=scale)
            report.runs += 1
            report.cancels += len(run.faulted.cancel_records)
            if run.recovery is not None:
                report.crashes += run.recovery.crashes
                report.restores += run.recovery.restores
            else:
                report.crashes += run.log.master_crashes
            if not run.ok:
                accounted = len(run.faulted.records) + len(
                    run.faulted.cancel_records
                )
                report.failures.append(
                    f"seed={seed} schedule={index}: "
                    f"{accounted}/{len(run.healthy.records)} tasks, "
                    f"{run.wedged_adjustments} wedged"
                )
    return report
