"""The chaos harness: the page-level simulator under injected faults.

One chaos run takes a mixed scan workload (an IO-bound scan, a
CPU-bound scan and a random-access range scan — the same shape the
paper's experiments stress), runs it healthy to measure a baseline,
then replays it under a :class:`~repro.faults.schedule.FaultSchedule`
with the degradation-aware INTER-WITH-ADJ policy and the hardened
adjustment protocol.  The :class:`ChaosReport` carries both runs, the
fault log and the tolerance verdict:

* every page processed exactly once (the engine raises on violation and
  a task cannot complete with pages missing);
* every adjustment timeout resolved by abort-and-restart — the number
  of aborts equals the number of timeouts, i.e. no round wedged.

Everything is a pure function of ``(workload, schedule, seed)``, so two
identical invocations print byte-identical reports — the determinism
tests rely on it.

This module imports the simulators and therefore must NOT be imported
from ``repro.faults.__init__`` (the simulators import that package).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig, paper_machine
from ..core.schedulers import InterWithAdjPolicy
from ..core.task import IOPattern
from ..errors import FaultError
from ..sim.fluid import ScheduleResult
from ..sim.micro import MicroSimulator, ScanSpec, spec_for_io_rate
from .injector import FaultLog
from .schedule import FaultSchedule, preset_schedule

#: Scan shapes of the standard chaos workload: (name, io rate in ios/s,
#: pages at full size, access pattern, partitioning protocol).
_WORKLOAD_SHAPE = (
    ("io0", 55.0, 1500, IOPattern.SEQUENTIAL, "page"),
    ("cpu0", 8.0, 400, IOPattern.SEQUENTIAL, "page"),
    ("rnd0", 20.0, 300, IOPattern.RANDOM, "range"),
)


def chaos_workload(
    machine: MachineConfig, *, scale: float = 1.0
) -> list[ScanSpec]:
    """The standard three-scan chaos workload, optionally shrunk.

    ``scale`` multiplies every page count (the ``--smoke`` run uses a
    small fraction to stay under a second of wall clock).
    """
    if scale <= 0:
        raise FaultError("scale must be positive")
    specs = []
    for name, io_rate, n_pages, pattern, partitioning in _WORKLOAD_SHAPE:
        specs.append(
            spec_for_io_rate(
                name,
                machine,
                io_rate=io_rate,
                n_pages=max(int(n_pages * scale), 8),
                pattern=pattern,
                partitioning=partitioning,
            )
        )
    return specs


@dataclass
class ChaosReport:
    """Outcome of one chaos run (healthy baseline + faulted replay)."""

    schedule: FaultSchedule
    seed: int
    healthy: ScheduleResult
    faulted: ScheduleResult

    @property
    def log(self) -> FaultLog:
        """The faulted run's fault log."""
        assert self.faulted.fault_log is not None
        return self.faulted.fault_log

    @property
    def slowdown(self) -> float:
        """Faulted elapsed over healthy elapsed."""
        if self.healthy.elapsed <= 0:
            return 1.0
        return self.faulted.elapsed / self.healthy.elapsed

    @property
    def wedged_adjustments(self) -> int:
        """Timed-out rounds that did *not* resolve via abort (want 0)."""
        return self.log.adjust_timeouts - self.log.adjust_aborts

    @property
    def ok(self) -> bool:
        """Did the run tolerate every fault?

        Completion of every task implies page conservation: the engine
        raises on any page processed twice, and a task only completes
        once every page is processed.  On top of that, every protocol
        timeout must have resolved via abort-and-restart.
        """
        return (
            len(self.faulted.records) == len(self.healthy.records)
            and self.wedged_adjustments == 0
        )

    def to_lines(self) -> list[str]:
        """The report as stable, printable lines."""
        log = self.log
        lines = [
            f"chaos seed={self.seed} faults={len(self.schedule)} scheduled",
            f"healthy elapsed: {self.healthy.elapsed:.4f}s "
            f"({self.healthy.adjustments} adjustments)",
            f"faulted elapsed: {self.faulted.elapsed:.4f}s "
            f"({self.faulted.adjustments} adjustments, "
            f"slowdown {self.slowdown:.2f}x)",
            "fault log:",
            *("  " + line for line in log.to_lines()),
            "counters:",
            f"  faults injected:   {log.faults_injected}",
            f"  degradations:      {log.degradations}",
            f"  stalls:            {log.stalls}",
            f"  slave crashes:     {log.crashes}",
            f"  messages dropped:  {log.messages_dropped}",
            f"  messages delayed:  {log.messages_delayed}",
            f"  pages re-read:     {log.pages_reread}",
            f"  adjust timeouts:   {log.adjust_timeouts}",
            f"  adjust aborts:     {log.adjust_aborts}",
            f"verdict: {'OK' if self.ok else 'FAILED'} "
            f"({len(self.faulted.records)}/{len(self.healthy.records)} tasks, "
            f"{self.wedged_adjustments} wedged adjustments)",
        ]
        return lines


def run_chaos(
    *,
    schedule: FaultSchedule | None = None,
    preset: str = "mixed",
    seed: int = 0,
    scale: float = 1.0,
    machine: MachineConfig | None = None,
    adjust_timeout: float = 0.5,
    consult_interval: float = 1.0,
) -> ChaosReport:
    """One chaos run: healthy baseline, then the faulted replay.

    Args:
        schedule: explicit fault schedule; ``None`` derives one from
            ``preset`` scaled to the measured healthy elapsed time.
        preset: preset name used when ``schedule`` is ``None``.
        seed: seeds both the workload's random block orders and the
            injector's crash-target picks.
        scale: workload size multiplier (smoke runs shrink it).
        machine: machine configuration (defaults to the paper machine).
        adjust_timeout: master's adjustment-round timeout, seconds.
        consult_interval: master-tick period, seconds; the policy needs
            ticks to notice mid-task bandwidth drift.
    """
    machine = machine or paper_machine()
    specs = chaos_workload(machine, scale=scale)

    def policy() -> InterWithAdjPolicy:
        return InterWithAdjPolicy(integral=True, degradation_aware=True)

    healthy = MicroSimulator(
        machine, seed=seed, consult_interval=consult_interval
    ).run(specs, policy())
    if schedule is None:
        schedule = preset_schedule(preset, horizon=healthy.elapsed)
    faulted = MicroSimulator(
        machine,
        seed=seed,
        consult_interval=consult_interval,
        faults=schedule,
        fault_seed=seed,
        adjust_timeout=adjust_timeout,
    ).run(specs, policy())
    return ChaosReport(
        schedule=schedule, seed=seed, healthy=healthy, faulted=faulted
    )
