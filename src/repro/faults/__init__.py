"""Deterministic fault injection and tolerance machinery.

Everything a robustness run needs: pure-data fault schedules
(:mod:`~repro.faults.schedule`), the injector bridging a schedule to an
engine's event loop (:mod:`~repro.faults.injector`), retry backoff for
the serving gate (:mod:`~repro.faults.retry`) and the admission circuit
breaker (:mod:`~repro.faults.breaker`).

The chaos harness (:mod:`repro.faults.chaos`) is *not* imported here:
it drives the simulators, which import this package — importing it
eagerly would be circular.  Import it directly (the CLI does).
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .injector import FaultInjector, FaultLog
from .retry import RetryPolicy
from .schedule import (
    DiskDegradation,
    DiskStall,
    Fault,
    FaultSchedule,
    MasterCrash,
    MessageFault,
    QueryDeadline,
    SlaveCrash,
    fault_from_dict,
    load_schedule,
    preset_schedule,
    random_schedule,
    schedule_from_dicts,
    with_deadlines,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "DiskDegradation",
    "DiskStall",
    "Fault",
    "FaultInjector",
    "FaultLog",
    "FaultSchedule",
    "MasterCrash",
    "MessageFault",
    "QueryDeadline",
    "RetryPolicy",
    "SlaveCrash",
    "fault_from_dict",
    "load_schedule",
    "preset_schedule",
    "random_schedule",
    "schedule_from_dicts",
    "with_deadlines",
]
