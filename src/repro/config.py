"""Machine configuration for the simulated XPRS environment.

The paper runs XPRS on a Sequent Symmetry with 12 processors and a
4-disk array, using 8 processors in the experiments.  All relations are
striped block-by-block, round-robin, across the disk array (Figure 1).
The measured disk constants (Section 3) are, per disk and after file
system overhead:

* 97 ios/second for sequential reads,
* 60 ios/second for *almost sequential* reads (what parallel sequential
  scans actually see, because parallel backends reorder requests),
* 35 ios/second for random reads.

With 4 disks and the almost-sequential rate the paper uses a total disk
bandwidth of ``B = 4 * 60 = 240`` ios/second, and with 8 processors the
IO-bound / CPU-bound threshold is ``B / N = 30`` ios/second.

:class:`MachineConfig` bundles these constants; :func:`paper_machine`
returns the exact configuration used in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from .errors import ConfigError

#: Disk page size used by XPRS (Section 3: "the disk page size is 8K bytes").
PAGE_SIZE = 8192


@dataclass(frozen=True)
class DiskProfile:
    """Per-disk bandwidth profile, in io-requests per second.

    Attributes:
        seq_ios_per_sec: bandwidth for strictly sequential reads.
        almost_seq_ios_per_sec: bandwidth seen by parallel sequential
            scans whose requests arrive slightly out of order.
        random_ios_per_sec: bandwidth for random reads.
        seek_time: seconds charged when a read is not contiguous with
            the previous read on the same disk (micro simulator only);
            derived from the profile when left at 0.
    """

    seq_ios_per_sec: float = 97.0
    almost_seq_ios_per_sec: float = 60.0
    random_ios_per_sec: float = 35.0
    seek_time: float = 0.0

    def __post_init__(self) -> None:
        rates = (
            self.seq_ios_per_sec,
            self.almost_seq_ios_per_sec,
            self.random_ios_per_sec,
        )
        if any(r <= 0 for r in rates):
            raise ConfigError("disk bandwidths must be positive")
        if not (
            self.random_ios_per_sec
            <= self.almost_seq_ios_per_sec
            <= self.seq_ios_per_sec
        ):
            raise ConfigError(
                "expected random <= almost-sequential <= sequential bandwidth"
            )
        if self.seek_time < 0:
            raise ConfigError("seek_time must be non-negative")

    @property
    def sequential_service_time(self) -> float:
        """Seconds to service one strictly sequential read."""
        return 1.0 / self.seq_ios_per_sec

    @property
    def random_service_time(self) -> float:
        """Seconds to service one random read."""
        return 1.0 / self.random_ios_per_sec

    @property
    def effective_seek_time(self) -> float:
        """Seek penalty for a non-contiguous read in the micro simulator.

        If ``seek_time`` was configured explicitly it is used as-is;
        otherwise the penalty is the difference between random and
        sequential service times, which makes the profile's random rate
        emerge naturally from a fully random request stream.
        """
        if self.seek_time:
            return self.seek_time
        return self.random_service_time - self.sequential_service_time


@dataclass(frozen=True)
class MachineConfig:
    """A shared-memory multiprocessor with a striped disk array.

    Attributes:
        processors: number of processors available to query processing.
        disks: number of disks in the array.
        disk: per-disk bandwidth profile.
        page_size: disk page size in bytes.
        signal_latency: one-way master/slave signalling delay in seconds
            (tiny on shared memory; the dynamic-adjustment ablation
            sweeps it).
        work_memory_bytes: shared working memory available to
            concurrently running tasks (hash tables, sort buffers).
            The paper defers memory constraints to future work ("we
            cannot run two hashjoins in parallel unless there is enough
            memory for both hash tables"); this implements them.
            Defaults to unlimited, which reproduces the paper's
            memory-oblivious behaviour.
    """

    processors: int = 8
    disks: int = 4
    disk: DiskProfile = field(default_factory=DiskProfile)
    page_size: int = PAGE_SIZE
    signal_latency: float = 1e-4
    work_memory_bytes: float = float("inf")

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ConfigError("need at least one processor")
        if self.disks < 1:
            raise ConfigError("need at least one disk")
        if self.page_size < 64:
            raise ConfigError("page_size is unrealistically small")
        if self.signal_latency < 0:
            raise ConfigError("signal_latency must be non-negative")
        if self.work_memory_bytes <= 0:
            raise ConfigError("work_memory_bytes must be positive")

    # -- aggregate bandwidths -------------------------------------------------
    #
    # Cached: the config is frozen, so these are constants per instance,
    # and the schedulers read them on every policy consult.
    # ``cached_property`` stores straight into ``__dict__`` (bypassing the
    # frozen ``__setattr__``) and does not participate in eq/hash.

    @cached_property
    def total_seq_bandwidth(self) -> float:
        """Aggregate strictly-sequential bandwidth, ios/second."""
        return self.disks * self.disk.seq_ios_per_sec

    @cached_property
    def total_almost_seq_bandwidth(self) -> float:
        """Aggregate almost-sequential bandwidth, ios/second.

        This is the paper's working definition of the sequential
        bandwidth ``Bs`` seen by parallel executions ("we at most see
        the almost sequential read bandwidth").
        """
        return self.disks * self.disk.almost_seq_ios_per_sec

    @cached_property
    def total_random_bandwidth(self) -> float:
        """Aggregate random bandwidth ``Br``, ios/second."""
        return self.disks * self.disk.random_ios_per_sec

    @cached_property
    def io_bandwidth(self) -> float:
        """The paper's default total bandwidth ``B`` (almost sequential)."""
        return self.total_almost_seq_bandwidth

    @cached_property
    def bound_threshold(self) -> float:
        """``B / N`` — tasks with a higher sequential io rate are IO-bound."""
        return self.io_bandwidth / self.processors

    def with_processors(self, processors: int) -> "MachineConfig":
        """Return a copy of this configuration with a new processor count."""
        return replace(self, processors=processors)


def paper_machine() -> MachineConfig:
    """The configuration of the paper's experiments (Section 3).

    Sequent Symmetry: 8 of 12 processors used, 4 disks, per-disk
    bandwidth 97/60/35 ios/second, 8 KB pages.  ``B = 240`` ios/second
    and the IO/CPU threshold is 30 ios/second.
    """
    return MachineConfig(processors=8, disks=4, disk=DiskProfile())
