"""Simulation engines: the fluid-rate engine and the page-level micro engine."""

from .fluid import FluidSimulator, ScheduleResult, ShedRecord, TaskRecord
from .micro import MicroSimulator, ScanSpec, spec_for_io_rate

__all__ = [
    "FluidSimulator",
    "MicroSimulator",
    "ScanSpec",
    "ScheduleResult",
    "ShedRecord",
    "TaskRecord",
    "spec_for_io_rate",
]
