"""Simulation engines: the fluid-rate engine and the page-level micro engine."""

from .fluid import FluidSimulator, ScheduleResult, TaskRecord
from .micro import MicroSimulator, ScanSpec, spec_for_io_rate

__all__ = [
    "FluidSimulator",
    "MicroSimulator",
    "ScanSpec",
    "ScheduleResult",
    "TaskRecord",
    "spec_for_io_rate",
]
