"""The page-level micro simulator.

Where the fluid engine treats a task as a continuous flow, this engine
simulates every page: slave backends issue page reads to per-disk FIFO
queues (service time depends on the head position, so interleaved
streams *really* seek), then compete for processors to do the per-page
CPU work.  Dynamic parallelism adjustment is the paper's literal
protocols:

* **Page partitioning** (Figure 5) — master signals the slaves; each
  replies with its current page; the master computes ``maxpage`` and the
  new parallelism ``n'``; slaves finish their old ``mod n`` stride up to
  ``maxpage`` and continue past it with a ``mod n'`` stride; new slaves
  start after ``maxpage``.
* **Range partitioning** (Figure 6) — slaves report their remaining key
  intervals; the master repartitions them into ``n'`` interval sets;
  slaves resume on their new intervals (possibly several each).

Each signalling leg costs ``machine.signal_latency`` (tiny on shared
memory — that is the paper's point; the abl3 bench sweeps it).

Workloads are :class:`ScanSpec` objects — synthetic scans with a page
count, a per-page CPU time and an io pattern — which map exactly onto
the scheduler's :class:`~repro.core.task.Task` model.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..config import MachineConfig
from ..core.schedulers import Adjust, Cancel, SchedulingPolicy, Start
from ..core.task import IOPattern, Task
from ..errors import (
    MasterCrashError,
    ProtocolTimeoutError,
    RecoveryError,
    SimulationError,
)
from ..faults.injector import FaultInjector
from ..faults.schedule import (
    DiskDegradation,
    DiskStall,
    FaultSchedule,
    MasterCrash,
    MessageFault,
    QueryDeadline,
    SlaveCrash,
)
from ..recovery.checkpoint import (
    Checkpoint,
    DiskSnapshot,
    RecordSnapshot,
    SlaveSnapshot,
    TaskSnapshot,
)
from ..storage.disk import Disk
from .fluid import CancelRecord, ScheduleResult, TaskRecord

_EPS = 1e-12
_MAX_EVENTS = 5_000_000

# Event tags for the engine's heap entries.  The hot per-page events
# (io completion, cpu completion) are type-tagged tuples dispatched by
# the run loop's jump table; only cold, rare events (protocol legs,
# fault transitions, master ticks, arrivals) carry a callback.  Heap
# ordering never reaches the payload slots: (time, seq) is unique.
_EV_CALL = 0
_EV_IO_DONE = 1
_EV_CPU_DONE = 2

#: Elevator preference order of the disk regimes (lower serves first).
_REGIME_RANK = {"sequential": 0, "almost_sequential": 1, "random": 2}


def _history_occupancy(
    history: Sequence[tuple[float, float]], end: float
) -> float:
    """Processor-seconds *allocated* over one task's lifetime.

    Integrates the declared parallelism history ``[(t, x), ...]`` up to
    ``end`` — the occupancy semantics the fluid engine charges natively
    (a slave holds its processor whether it is computing or waiting on
    io).  Declared allocation, deliberately: a crashed slave's
    processor stays charged until the adjustment protocol re-declares
    the task's width, mirroring how the fluid integral sees it.
    """
    total = 0.0
    for (t0, x), (t1, __) in zip(history, history[1:]):
        total += x * (t1 - t0)
    if history:
        t_last, x_last = history[-1]
        total += x_last * (end - t_last)
    return total


@dataclass(frozen=True)
class ScanSpec:
    """A synthetic scan workload for the micro engine.

    Attributes:
        name: label.
        n_pages: number of pages (= io requests) to process.
        cpu_per_page: CPU seconds to process each page's tuples.
        pattern: SEQUENTIAL pages are striped round-robin and read in
            order (per-disk sequential streams); RANDOM pages are read
            in a scattered block order (every read seeks), modelling an
            unclustered index scan.
        partitioning: "page" (Figure 5 protocol) or "range" (Figure 6).
        arrival_time: when the task enters the system.
    """

    name: str
    n_pages: int
    cpu_per_page: float
    pattern: IOPattern = IOPattern.SEQUENTIAL
    partitioning: str = "page"
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.n_pages < 1:
            raise SimulationError(f"{self.name}: n_pages must be >= 1")
        if self.cpu_per_page < 0:
            raise SimulationError(f"{self.name}: cpu_per_page must be >= 0")
        if self.partitioning not in ("page", "range"):
            raise SimulationError(f"{self.name}: unknown partitioning")

    def seq_io_service(self, machine: MachineConfig) -> float:
        """Per-page io service time used for calibration.

        Sequential tasks are calibrated against the *almost sequential*
        rate: "in parallel executions, we at most see the almost
        sequential read bandwidth" (Section 3), and tasks in these
        experiments always run in parallel.  This keeps a task's io
        rate consistent with the machine's working bandwidth ``B``.
        """
        disk = machine.disk
        if self.pattern == IOPattern.RANDOM:
            return 1.0 / disk.random_ios_per_sec
        return 1.0 / disk.almost_seq_ios_per_sec

    def seq_time(self, machine: MachineConfig) -> float:
        """``T_i`` — sequential elapsed time (synchronous page cycles)."""
        return self.n_pages * (self.seq_io_service(machine) + self.cpu_per_page)

    def io_rate(self, machine: MachineConfig) -> float:
        """``C_i = D_i / T_i`` for this scan."""
        return self.n_pages / self.seq_time(machine)

    def to_task(self, machine: MachineConfig) -> Task:
        """The scheduler-level view of this scan."""
        return Task(
            name=self.name,
            seq_time=self.seq_time(machine),
            io_count=float(self.n_pages),
            io_pattern=self.pattern,
            arrival_time=self.arrival_time,
            payload=self,
        )


def spec_for_io_rate(
    name: str,
    machine: MachineConfig,
    *,
    io_rate: float,
    n_pages: int,
    pattern: IOPattern = IOPattern.SEQUENTIAL,
    partitioning: str = "page",
    arrival_time: float = 0.0,
) -> ScanSpec:
    """Build a ScanSpec whose sequential io rate is ``io_rate``.

    This is how the paper's experiments control task boundedness: "We
    adjust the i/o rate of each task by varying the size of tuples" —
    big tuples mean few tuples (little CPU) per page.

    Raises:
        SimulationError: if the rate exceeds what one disk stream can
            physically deliver (e.g. > 97 ios/s sequential).
    """
    svc = (
        1.0 / machine.disk.random_ios_per_sec
        if pattern == IOPattern.RANDOM
        else 1.0 / machine.disk.almost_seq_ios_per_sec
    )
    if io_rate <= 0:
        raise SimulationError(f"{name}: io_rate must be positive")
    cpu = 1.0 / io_rate - svc
    if cpu < -1e-12:
        raise SimulationError(
            f"{name}: io rate {io_rate} exceeds the disk service rate {1 / svc:.1f}"
        )
    cpu = max(cpu, 0.0)
    return ScanSpec(
        name=name,
        n_pages=n_pages,
        cpu_per_page=cpu,
        pattern=pattern,
        partitioning=partitioning,
        arrival_time=arrival_time,
    )


# ---------------------------------------------------------------------------
# engine internals


@dataclass(eq=False, slots=True)
class _Segment:
    """A stride of pages assigned to one slave: ``lo..hi`` step info."""

    lo: int
    hi: int  # inclusive
    stride: int
    residue: int

    def first_at_or_after(self, p: int) -> int | None:
        """Smallest page >= p in this segment, or None."""
        start = max(p, self.lo)
        remainder = (start - self.residue) % self.stride
        candidate = start if remainder == 0 else start + (self.stride - remainder)
        if candidate > self.hi:
            return None
        return candidate


@dataclass(eq=False, slots=True)
class _Slave:
    """One slave backend working on one task.

    Slaves are synchronous, like Postgres backends: read a page, then
    process its tuples, then read the next page.  "The time between two
    i/o requests is equal to the time to read a disk page plus the time
    to process all the tuples that reside in the read-in disk page"
    (Section 3).
    """

    slave_id: int
    segments: list[_Segment] = field(default_factory=list)
    cursor: int = 0  # next page candidate (page partitioning)
    intervals: list[tuple[int, int]] = field(default_factory=list)  # range mode
    busy: bool = False  # has an in-flight page (io or cpu)
    retired: bool = False
    paused: bool = False  # waiting for repartition (range protocol)
    crashed: bool = False  # killed by fault injection; events are stale
    inflight_page: int | None = None  # page (or key) currently being read

    def next_page(self) -> int | None:
        """Claim the next page under page partitioning."""
        segments = self.segments
        while segments:
            seg = segments[0]
            # Inlined _Segment.first_at_or_after: runs once per page.
            start = self.cursor
            if start < seg.lo:
                start = seg.lo
            stride = seg.stride
            remainder = (start - seg.residue) % stride
            page = start if remainder == 0 else start + (stride - remainder)
            if page > seg.hi:
                segments.pop(0)
                continue
            self.cursor = page + 1
            return page
        return None

    def next_key(self) -> int | None:
        """Claim the next key under range partitioning."""
        while self.intervals:
            lo, hi = self.intervals[0]
            if lo > hi:
                self.intervals.pop(0)
                continue
            self.intervals[0] = (lo + 1, hi)
            return lo
        return None

    def remaining_intervals(self) -> list[tuple[int, int]]:
        return [(lo, hi) for lo, hi in self.intervals if lo <= hi]


@dataclass(eq=False, slots=True)
class _TaskRun:
    """Engine-internal record of one running task."""

    task: Task
    spec: ScanSpec
    parallelism: int
    started_at: float
    slaves: dict[int, _Slave] = field(default_factory=dict)
    pages_done: int = 0
    next_slave_id: int = 0
    history: list[tuple[float, float]] = field(default_factory=list)
    adjusting: bool = False
    block_base: int = 0  # placement offset on the disks
    adjust_epoch: int = 0  # stale-message guard for the protocol legs
    #: Page -> physical page permutation (identity for sequential
    #: scans, scattered for random ones); owned by the run so the hot
    #: path needs no per-page dict lookup.
    order: list[int] = field(default_factory=list)
    # Hot-path caches of immutable spec fields, set by _start_task so
    # the per-page code avoids the run.spec.* attribute chain.
    page_mode: bool = True  # spec.partitioning == "page"
    cpu_per_page: float = 0.0
    n_pages: int = 0
    #: When the in-flight adjustment round's first leg was sent; the
    #: tracer stamps the round's span from here (cold path).
    adjust_started_at: float = 0.0
    #: Per-slave intervals harvested by a Figure-6 collect step, kept so
    #: an aborted round can hand them back (or restart crashed strides).
    harvest: dict[int, list[tuple[int, int]]] | None = None

    @property
    def remaining_seq_time(self) -> float:
        frac = 1.0 - self.pages_done / self.spec.n_pages
        return frac * self.task.seq_time

    def page_block(self, page: int, machine: MachineConfig) -> tuple[int, int]:
        """(disk, block) of a page: round-robin striping, sequential
        block order for sequential scans, scattered for random ones."""
        p = self.order[page]
        disk_id = p % machine.disks
        block = self.block_base + p // machine.disks
        return disk_id, block


class MicroSimulator:
    """Discrete-event page-level simulation of the XPRS machine.

    The disks are flattened to the *almost sequential* regime for
    in-order reads: parallel backends always reorder requests slightly,
    so a parallel scan never sees the strictly-sequential rate
    (Section 3: "we at most see the almost sequential read bandwidth").
    Without this, a scan whose stride happens to align with the
    striping would stream every disk at the raw sequential rate and
    the machine's working bandwidth ``B`` would be exceeded.

    Args:
        machine: machine configuration.
        seed: used only to scatter the block order of RANDOM tasks.
        consult_interval: when set, the master additionally consults
            the policy every so many simulated seconds (a master tick),
            not only at start/arrival/completion events.  Lets policies
            adjust mid-task.
        faults: a fault schedule injected into the event loop (disk
            degradation and stalls, slave crashes, dropped/delayed
            protocol messages); ``None`` runs a healthy machine.
        fault_seed: seeds the injector's crash-target RNG.
        adjust_timeout: simulated seconds the master waits for an
            adjustment round before aborting it (recorded as a
            :class:`~repro.errors.ProtocolTimeoutError` event in the
            fault log, never raised — the run continues).
        recovery: a :class:`~repro.recovery.RecoveryManager` capturing
            checkpoints at adjustment-round boundaries; ``None`` (the
            default) captures nothing and adds zero per-event work.
        tracer: a :class:`~repro.obs.Tracer` recording task spans,
            adjustment rounds and fault instants at virtual time;
            ``None`` (or the falsy NullTracer) records nothing.  The
            tracer only appends to its own event list, so enabling it
            cannot perturb the schedule.
        invariants: an :class:`~repro.check.InvariantChecker` asserting
            page conservation, clock monotonicity and resource bounds
            at the engine's cold sites; ``None`` (the default) checks
            nothing and adds one ``is not None`` test per cold site.
    """

    def __init__(
        self,
        machine: MachineConfig,
        *,
        seed: int = 0,
        consult_interval: float | None = None,
        faults: FaultSchedule | None = None,
        fault_seed: int = 0,
        adjust_timeout: float = 0.5,
        recovery=None,
        tracer=None,
        invariants=None,
    ) -> None:
        flattened = replace(
            machine,
            disk=replace(
                machine.disk, seq_ios_per_sec=machine.disk.almost_seq_ios_per_sec
            ),
        )
        if consult_interval is not None and consult_interval <= 0:
            raise SimulationError("consult_interval must be positive")
        if adjust_timeout <= 0:
            raise SimulationError("adjust_timeout must be positive")
        self.machine = flattened
        self.seed = seed
        self.consult_interval = consult_interval
        self.faults = faults
        self.fault_seed = fault_seed
        self.adjust_timeout = adjust_timeout
        self.recovery = recovery
        self.tracer = tracer or None
        self.invariants = invariants

    def run(
        self,
        specs: list[ScanSpec],
        policy: SchedulingPolicy,
        *,
        resume_from: Checkpoint | None = None,
    ) -> ScheduleResult:
        """Simulate the scan specs under ``policy`` until all complete.

        ``resume_from`` restarts the run from a checkpoint taken by a
        :class:`~repro.recovery.RecoveryManager`: already-completed
        pages stay done, and only each previously-busy slave's single
        in-flight page is re-read.

        Raises:
            MasterCrashError: a ``master-crash`` fault fired; resume
                via :func:`repro.recovery.run_with_recovery`.
        """
        policy.reset()
        injector = (
            FaultInjector(self.faults, seed=self.fault_seed)
            if self.faults is not None
            else None
        )
        engine = _MicroEngine(
            self.machine,
            specs,
            policy,
            seed=self.seed,
            consult_interval=self.consult_interval,
            injector=injector,
            adjust_timeout=self.adjust_timeout,
            recovery=self.recovery,
            resume_from=resume_from,
            tracer=self.tracer,
            invariants=self.invariants,
        )
        return engine.run()


class _MicroEngine:
    def __init__(
        self,
        machine: MachineConfig,
        specs: list[ScanSpec],
        policy: SchedulingPolicy,
        *,
        seed: int,
        consult_interval: float | None = None,
        injector: FaultInjector | None = None,
        adjust_timeout: float = 0.5,
        recovery=None,
        resume_from: Checkpoint | None = None,
        tracer=None,
        invariants=None,
    ) -> None:
        import random

        self.machine = machine
        self.seed = seed
        self.policy = policy
        #: Span tracer (None = disabled).  Emission sites are all off
        #: the inner per-page loop and guard with one None check, so a
        #: disabled tracer leaves the hot path untouched.
        self.tracer = tracer or None
        #: Invariant checker (None = disabled).  Same idiom as the
        #: tracer: hooks only on cold sites, one None check each.
        self.invariants = invariants
        self.clock = 0.0
        #: Heap of (time, seq, tag, payload) — see the _EV_* tags.
        self._events: list[tuple[float, int, int, object]] = []
        self._seq = 0  # heap tiebreaker; incremented inline (hot path)
        self._rng = random.Random(seed)
        # resources
        self._n_disks = machine.disks
        self.disks = [Disk(i, machine.disk) for i in range(machine.disks)]
        self._disk_queues: list[deque[tuple["_TaskRun", _Slave, int, int]]] = [
            deque() for __ in range(machine.disks)
        ]
        self._disk_busy = [False] * machine.disks
        self.free_processors = machine.processors
        self._cpu_queue: deque[tuple["_TaskRun", _Slave, int, int]] = deque()
        self.cpu_busy_time = 0.0
        #: Occupancy accrued by *cancelled* runs (completed runs are
        #: integrated from their records at result build).
        self.occupancy_cancelled = 0.0
        self.io_count = 0
        # tasks
        self._pending: list[Task] = []
        self._arrivals: list[tuple[float, int, Task, ScanSpec]] = []
        self.running: dict[int, _TaskRun] = {}
        self.completed_ids: set[int] = set()
        self.records: list[TaskRecord] = []
        self.cancel_records: list[CancelRecord] = []
        self.adjustments = 0
        self.peak_memory = 0.0
        self._block_cursor = 0
        self._arrival_armed = False
        self._consult_interval = consult_interval
        # fault injection
        self.injector = injector
        self.adjust_timeout = adjust_timeout
        #: Measured per-disk health: EWMA of (nominal service time /
        #: observed service time) per served request.  1.0 = healthy.
        self._measured_mult = [1.0] * machine.disks
        #: Memoized effective_machine(); dropped when a health
        #: observation moves _measured_mult.
        self._effective_cache: MachineConfig | None = None
        self._stall_armed = [False] * machine.disks
        #: RecoveryManager (or None): one attribute check on the cold
        #: checkpoint sites, nothing anywhere near the per-page loop.
        self.recovery = recovery
        for i, spec in enumerate(specs):
            task = spec.to_task(machine)
            if spec.arrival_time <= 0:
                self._pending.append(task)
            else:
                heapq.heappush(
                    self._arrivals, (spec.arrival_time, i, task, spec)
                )
        # Restore before arming faults: a resumed clock filters the
        # spent ones.  For fresh runs this ordering is event-identical
        # to arming first — the spec loop pushes no heap events.
        if resume_from is not None:
            self._restore(resume_from)
        if injector is not None:
            injector.schedule.validate_against(machine.disks)
            for fault in injector.schedule:
                if resume_from is not None and self._fault_spent(fault):
                    continue
                self._arm_fault(fault)
            if resume_from is not None:
                injector.skip_messages_before(self.clock)

    # -- EngineState protocol for the policy ------------------------------------

    @property
    def now(self) -> float:
        return self.clock

    @property
    def pending(self) -> list[Task]:
        return [t for t in self._pending if t.depends_on <= self.completed_ids]

    # -- event plumbing ------------------------------------------------------------

    def _schedule(self, delay: float, callback) -> None:
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._events, (self.clock + delay, seq, _EV_CALL, callback)
        )

    def _master_tick(self) -> None:
        if self._finished():
            return
        self._consult_policy()
        # A tick with no round in flight is a round boundary too; with
        # recovery off this is the usual single None check.
        self._maybe_checkpoint()
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, None, "tick")
        assert self._consult_interval is not None
        self._schedule(self._consult_interval, self._master_tick)

    def _finished(self) -> bool:
        return not self.running and not self._pending and not self._arrivals

    def run(self) -> ScheduleResult:
        self._arm_arrival()
        if self._consult_interval is not None:
            self._schedule(self._consult_interval, self._master_tick)
        self._consult_policy()
        # The event loop is the engine's hot path: per-page events are
        # type-tagged tuples handled inline (no closure allocation, no
        # indirect call), everything rare falls through to a callback.
        # The steady-state page cycle (io done -> grab a processor ->
        # cpu done -> claim next page -> queue next io) runs entirely
        # inside this loop body; the inlined blocks mirror
        # _dispatch_cpu and _slave_next exactly, and fall back to those
        # methods for the contended or faulted cases.
        events = self._events
        heappop = heapq.heappop
        heappush = heapq.heappush
        cpu_queue = self._cpu_queue
        disk_queues = self._disk_queues
        disk_busy = self._disk_busy
        disks = self.disks
        injector = self.injector
        n_disks = self._n_disks
        running = self.running
        pending = self._pending
        arrivals = self._arrivals
        # The hot scalars (clock, event seq, free processors, the two
        # accounting sums) live in locals; every escape to a method call
        # writes them back first and re-reads the ones methods mutate
        # afterwards (only ``run`` ever assigns ``self.clock``).
        clock = self.clock
        seqno = self._seq
        free = self.free_processors
        cpu_busy = self.cpu_busy_time
        io_count = self.io_count
        for _ in range(_MAX_EVENTS):
            # Stop at the last completion, not at the last armed fault:
            # remaining injector events must not stretch the clock.
            # (Inlined self._finished().)
            if not events or not (running or pending or arrivals):
                self.clock = clock
                self._seq = seqno
                self.free_processors = free
                self.cpu_busy_time = cpu_busy
                self.io_count = io_count
                break
            time, __, tag, payload = heappop(events)
            if time < clock - _EPS:
                raise SimulationError("time went backwards")
            if time > clock:
                clock = time
            if tag == _EV_IO_DONE:
                disk_id = payload[2]
                disk_busy[disk_id] = False
                queue = disk_queues[disk_id]
                if queue:
                    if injector is None and len(queue) == 1:
                        # Inlined healthy singleton serve: the elevator
                        # is trivial with one request, and the block
                        # below reproduces Disk.service_time's
                        # classification and accounting verbatim
                        # (multiplier 1.0).  Deeper queues and faulted
                        # disks fall back to _dispatch_disk.
                        entry = queue.popleft()
                        block = entry[3]
                        disk = disks[disk_id]
                        streams = disk._streams
                        regime = "random"
                        index = None
                        last = len(streams) - 1
                        window = disk.almost_seq_window
                        for i, pos in enumerate(streams):
                            delta = block - pos
                            if delta == 1:
                                if i == last:
                                    regime = "sequential"
                                    index = i
                                    break
                                regime = "almost_sequential"
                                index = i
                            elif 0 <= delta <= window and regime == "random":
                                regime = "almost_sequential"
                                index = i
                        counters = disk.counters
                        if regime == "sequential":
                            counters.sequential += 1
                        elif regime == "almost_sequential":
                            counters.almost_sequential += 1
                        else:
                            counters.random += 1
                        service = disk._service_times[regime]
                        if index is not None:
                            streams.pop(index)
                        streams.append(block)
                        if len(streams) > disk.stream_memory:
                            streams.pop(0)
                        if disk._match_cache:
                            disk._match_cache.clear()
                        disk.busy_time += service
                        disk_busy[disk_id] = True
                        io_count += 1
                        heappush(
                            events,
                            (clock + service, seqno, _EV_IO_DONE, entry),
                        )
                        seqno += 1
                    else:
                        self.clock = clock
                        self._seq = seqno
                        self.free_processors = free
                        self.cpu_busy_time = cpu_busy
                        self.io_count = io_count
                        self._dispatch_disk(disk_id)
                        seqno = self._seq
                        free = self.free_processors
                        cpu_busy = self.cpu_busy_time
                        io_count = self.io_count
                if payload[1].crashed:
                    continue
                # Inlined _dispatch_cpu: grant a free processor to this
                # page directly; queue behind the FIFO otherwise.
                if free > 0 and not cpu_queue:
                    free -= 1
                    duration = payload[0].cpu_per_page
                    cpu_busy += duration
                    heappush(
                        events,
                        (clock + duration, seqno, _EV_CPU_DONE, payload),
                    )
                    seqno += 1
                else:
                    cpu_queue.append(payload)
                    if free > 0:
                        self.clock = clock
                        self._seq = seqno
                        self.free_processors = free
                        self.cpu_busy_time = cpu_busy
                        self.io_count = io_count
                        self._dispatch_cpu()
                        seqno = self._seq
                        free = self.free_processors
                        cpu_busy = self.cpu_busy_time
                        io_count = self.io_count
            elif tag == _EV_CPU_DONE:
                run = payload[0]
                slave = payload[1]
                free += 1
                if slave.crashed:
                    # The page dies with the slave; its replacement
                    # re-reads it, so do not count it done here.
                    self.clock = clock
                    self._seq = seqno
                    self.free_processors = free
                    self.cpu_busy_time = cpu_busy
                    self.io_count = io_count
                    self._dispatch_cpu()
                    seqno = self._seq
                    free = self.free_processors
                    cpu_busy = self.cpu_busy_time
                    io_count = self.io_count
                    continue
                run.pages_done += 1
                slave.busy = False
                slave.inflight_page = None
                # Inlined _slave_next: claim the slave's next page and
                # queue its io (the method remains for cold callers).
                if not (slave.retired or slave.paused):
                    if run.page_mode:
                        # Inlined _Slave.next_page (runs once per page).
                        segments = slave.segments
                        page = None
                        while segments:
                            seg = segments[0]
                            start = slave.cursor
                            if start < seg.lo:
                                start = seg.lo
                            stride = seg.stride
                            remainder = (start - seg.residue) % stride
                            page = (
                                start
                                if remainder == 0
                                else start + (stride - remainder)
                            )
                            if page > seg.hi:
                                segments.pop(0)
                                page = None
                                continue
                            slave.cursor = page + 1
                            break
                    else:
                        page = slave.next_key()
                    if page is None:
                        slave.retired = True
                        self.clock = clock
                        self._seq = seqno
                        self.free_processors = free
                        self.cpu_busy_time = cpu_busy
                        self.io_count = io_count
                        self._maybe_complete(run)
                        seqno = self._seq
                        free = self.free_processors
                        cpu_busy = self.cpu_busy_time
                        io_count = self.io_count
                    else:
                        slave.busy = True
                        slave.inflight_page = page
                        p = run.order[page]
                        disk_id = p % n_disks
                        entry = (
                            run,
                            slave,
                            disk_id,
                            run.block_base + p // n_disks,
                        )
                        if (
                            disk_busy[disk_id]
                            or disk_queues[disk_id]
                            or injector is not None
                        ):
                            disk_queues[disk_id].append(entry)
                            if not disk_busy[disk_id]:
                                self.clock = clock
                                self._seq = seqno
                                self.free_processors = free
                                self.cpu_busy_time = cpu_busy
                                self.io_count = io_count
                                self._dispatch_disk(disk_id)
                                seqno = self._seq
                                free = self.free_processors
                                cpu_busy = self.cpu_busy_time
                                io_count = self.io_count
                        else:
                            # Idle disk, empty queue, healthy: serve the
                            # new request immediately without the deque
                            # round-trip.  Same serve block as the io
                            # branch above — identical to appending the
                            # entry and dispatching the singleton.
                            block = entry[3]
                            disk = disks[disk_id]
                            streams = disk._streams
                            regime = "random"
                            index = None
                            last = len(streams) - 1
                            window = disk.almost_seq_window
                            for i, pos in enumerate(streams):
                                delta = block - pos
                                if delta == 1:
                                    if i == last:
                                        regime = "sequential"
                                        index = i
                                        break
                                    regime = "almost_sequential"
                                    index = i
                                elif (
                                    0 <= delta <= window
                                    and regime == "random"
                                ):
                                    regime = "almost_sequential"
                                    index = i
                            counters = disk.counters
                            if regime == "sequential":
                                counters.sequential += 1
                            elif regime == "almost_sequential":
                                counters.almost_sequential += 1
                            else:
                                counters.random += 1
                            service = disk._service_times[regime]
                            if index is not None:
                                streams.pop(index)
                            streams.append(block)
                            if len(streams) > disk.stream_memory:
                                streams.pop(0)
                            if disk._match_cache:
                                disk._match_cache.clear()
                            disk.busy_time += service
                            disk_busy[disk_id] = True
                            io_count += 1
                            heappush(
                                events,
                                (
                                    clock + service,
                                    seqno,
                                    _EV_IO_DONE,
                                    entry,
                                ),
                            )
                            seqno += 1
                # Inlined _dispatch_cpu: the freed processor serves the
                # FIFO head, then any remaining backlog via the method.
                if cpu_queue:
                    entry = cpu_queue.popleft()
                    if entry[1].crashed:
                        self.clock = clock
                        self._seq = seqno
                        self.free_processors = free
                        self.cpu_busy_time = cpu_busy
                        self.io_count = io_count
                        self._dispatch_cpu()
                        seqno = self._seq
                        free = self.free_processors
                        cpu_busy = self.cpu_busy_time
                        io_count = self.io_count
                    else:
                        free -= 1
                        duration = entry[0].cpu_per_page
                        cpu_busy += duration
                        heappush(
                            events,
                            (clock + duration, seqno, _EV_CPU_DONE, entry),
                        )
                        seqno += 1
                        if cpu_queue and free > 0:
                            self.clock = clock
                            self._seq = seqno
                            self.free_processors = free
                            self.cpu_busy_time = cpu_busy
                            self.io_count = io_count
                            self._dispatch_cpu()
                            seqno = self._seq
                            free = self.free_processors
                            cpu_busy = self.cpu_busy_time
                            io_count = self.io_count
                if run.pages_done >= run.n_pages:
                    self.clock = clock
                    self._seq = seqno
                    self.free_processors = free
                    self.cpu_busy_time = cpu_busy
                    self.io_count = io_count
                    self._maybe_complete(run)
                    seqno = self._seq
                    free = self.free_processors
                    cpu_busy = self.cpu_busy_time
                    io_count = self.io_count
            else:
                self.clock = clock
                self._seq = seqno
                self.free_processors = free
                self.cpu_busy_time = cpu_busy
                self.io_count = io_count
                payload()
                seqno = self._seq
                free = self.free_processors
                cpu_busy = self.cpu_busy_time
                io_count = self.io_count
        else:
            self.clock = clock
            self._seq = seqno
            self.free_processors = free
            self.cpu_busy_time = cpu_busy
            self.io_count = io_count
            progress = ", ".join(
                f"{r.task.name} {r.pages_done}/{r.spec.n_pages}p x={r.parallelism}"
                + (" adjusting" if r.adjusting else "")
                for r in self.running.values()
            )
            raise SimulationError(
                f"micro simulation exceeded the event budget "
                f"({_MAX_EVENTS} events) at t={self.clock:.3f}s; "
                f"pending={[t.name for t in self._pending]}; "
                f"running=[{progress or 'none'}]"
            )
        if not self._finished():
            raise SimulationError(
                "micro simulation stalled: "
                f"running={list(self.running)}, pending={[t.name for t in self._pending]}"
            )
        elapsed = self.clock
        if self.injector is not None:
            log = self.injector.log
            log.record(elapsed, "done", f"{len(self.records)} tasks complete")
        occupancy = self.occupancy_cancelled + sum(
            _history_occupancy(r.parallelism_history, r.finished_at)
            for r in self.records
        )
        result = ScheduleResult(
            policy_name=self.policy.name,
            elapsed=elapsed,
            records=self.records,
            adjustments=self.adjustments,
            cpu_busy=self.cpu_busy_time,
            io_served=float(self.io_count),
            machine=self.machine,
            peak_memory=self.peak_memory,
            fault_log=self.injector.log if self.injector is not None else None,
            cancel_records=self.cancel_records,
            cpu_busy_occupancy=occupancy,
            cpu_busy_service=self.cpu_busy_time,
        )
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_end(self, result)
        return result

    # -- fault injection ---------------------------------------------------------

    def _fault_spent(self, fault: object) -> bool:
        """Did a resumed run's checkpoint already consume this fault?

        Windows (degradation, stall) are spent only once their *end*
        has passed — a window straddling the checkpoint re-arms and
        covers its remainder.  Instant faults are spent once their
        instant has passed; deadlines are never skipped (firing on a
        long-gone task is a logged no-op).
        """
        clock = self.clock
        if isinstance(fault, (DiskDegradation, DiskStall)):
            return fault.end <= clock + _EPS
        if isinstance(fault, (SlaveCrash, MasterCrash)):
            return fault.at <= clock + _EPS
        return False

    def _arm_fault(self, fault: object) -> None:
        """Register one scheduled fault's timed transitions.

        Delays are relative to the current clock (0 on a fresh run, the
        checkpoint time on a resumed one) and clamp at zero so a window
        already open at resume time begins immediately.
        """
        injector = self.injector
        assert injector is not None
        if isinstance(fault, DiskDegradation):
            def degrade_begin() -> None:
                injector.begin_degradation(fault, self.clock)
                tracer = self.tracer
                if tracer is not None:
                    tracer.instant(
                        f"degrade x{fault.factor:g}",
                        t=self.clock,
                        track=f"disk:{fault.disk}",
                        cat="fault",
                        args={"factor": fault.factor},
                    )

            def degrade_end() -> None:
                injector.end_degradation(fault, self.clock)
                tracer = self.tracer
                if tracer is not None:
                    tracer.instant(
                        "degrade:end",
                        t=self.clock,
                        track=f"disk:{fault.disk}",
                        cat="fault",
                    )

            self._schedule(max(0.0, fault.start - self.clock), degrade_begin)
            self._schedule(max(0.0, fault.end - self.clock), degrade_end)
        elif isinstance(fault, DiskStall):
            def stall() -> None:
                injector.begin_stall(fault, self.clock)
                tracer = self.tracer
                if tracer is not None:
                    tracer.instant(
                        f"stall {fault.duration:g}s",
                        t=self.clock,
                        track=f"disk:{fault.disk}",
                        cat="fault",
                        args={"duration": fault.duration},
                    )

            self._schedule(max(0.0, fault.at - self.clock), stall)
        elif isinstance(fault, SlaveCrash):
            self._schedule(
                max(0.0, fault.at - self.clock),
                lambda: self._inject_crash(fault),
            )
        elif isinstance(fault, MasterCrash):
            self._schedule(
                max(0.0, fault.at - self.clock),
                lambda: self._master_crash(fault),
            )
        elif isinstance(fault, QueryDeadline):
            self._schedule(
                max(0.0, fault.at - self.clock),
                lambda: self._deadline_fire(fault),
            )
        elif isinstance(fault, MessageFault):
            pass  # consumed lazily by _send_protocol_leg
        else:  # pragma: no cover - schedule validation catches this
            raise SimulationError(f"unknown fault {fault!r}")

    def _master_crash(self, fault: MasterCrash) -> None:
        """The whole engine dies: record it and unwind out of run().

        The hot locals are synced before every callback, so the engine
        object is consistent when this raises; the caller (typically
        :func:`repro.recovery.run_with_recovery`) restarts from the
        newest checkpoint.
        """
        injector = self.injector
        assert injector is not None
        recovery = self.recovery
        checkpoint_at = (
            recovery.last_checkpoint_at if recovery is not None else None
        )
        log = injector.log
        log.master_crashes += 1
        error = MasterCrashError(self.clock, checkpoint_at)
        log.record(self.clock, "mcrash", str(error))
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "master crash",
                t=self.clock,
                track="recovery",
                cat="fault",
                args={"checkpoint_at": checkpoint_at},
            )
        raise error

    def _observe_disk(self, disk_id: int, multiplier: float) -> None:
        """Fold one served request's health ratio into the disk estimate."""
        old = self._measured_mult[disk_id]
        self._measured_mult[disk_id] = 0.7 * old + 0.3 * multiplier
        self._effective_cache = None

    def effective_machine(self) -> MachineConfig:
        """The machine as currently *measured*, not as configured.

        Scales the disk profile by the mean per-disk health estimate so
        ``io_bandwidth`` tracks what the degraded array actually
        delivers; degradation-aware policies recompute balance points
        against this instead of the static ``MachineConfig.B``.

        The result is memoized until the next health observation, so a
        policy consult does not rebuild two dataclasses per call on a
        healthy (or merely stable) machine.
        """
        cached = self._effective_cache
        if cached is not None:
            return cached
        scale = sum(self._measured_mult) / len(self._measured_mult)
        if abs(scale - 1.0) < 1e-9:
            machine = self.machine
        else:
            scale = max(scale, 0.05)
            disk = self.machine.disk
            machine = replace(
                self.machine,
                disk=replace(
                    disk,
                    seq_ios_per_sec=disk.seq_ios_per_sec * scale,
                    almost_seq_ios_per_sec=disk.almost_seq_ios_per_sec * scale,
                    random_ios_per_sec=disk.random_ios_per_sec * scale,
                ),
            )
        self._effective_cache = machine
        return machine

    def _inject_crash(self, fault: SlaveCrash) -> None:
        injector = self.injector
        assert injector is not None
        runs = sorted(self.running.values(), key=lambda r: r.task.task_id)
        if fault.task is not None:
            runs = [r for r in runs if r.task.name == fault.task]
        if not runs:
            injector.log.record(
                self.clock, "no-op", "crash fault found no running task"
            )
            return
        run = runs[0] if fault.task is not None else runs[injector.rng.randrange(len(runs))]
        active = [
            s
            for s in sorted(run.slaves.values(), key=lambda s: s.slave_id)
            if not s.retired
        ]
        if not active:
            injector.log.record(
                self.clock, "no-op", f"{run.task.name}: no live slave to crash"
            )
            return
        if fault.slave_index is not None:
            slave = active[fault.slave_index % len(active)]
        else:
            slave = active[injector.rng.randrange(len(active))]
        self._crash_slave(run, slave)

    def _crash_slave(self, run: _TaskRun, slave: _Slave) -> None:
        """Kill one slave; the master restarts its stride so no page is lost.

        The crashed slave's unclaimed pages (and its in-flight page,
        which never completed) move to a fresh replacement slave.  Any
        events still referencing the dead slave are ignored when they
        fire, and its queued requests are dropped before dispatch.
        """
        injector = self.injector
        assert injector is not None
        slave.crashed = True
        slave.retired = True
        injector.log.crashes += 1
        injector.log.record(
            self.clock,
            "crash",
            f"{run.task.name}: slave {slave.slave_id} died"
            + (
                f" holding page {slave.inflight_page}"
                if slave.busy and slave.inflight_page is not None
                else ""
            ),
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"crash slave {slave.slave_id}",
                t=self.clock,
                track=f"task:{run.task.name}",
                cat="fault",
                args={"slave": slave.slave_id},
            )
        replacement = _Slave(slave_id=run.next_slave_id)
        run.next_slave_id += 1
        inflight = slave.inflight_page if slave.busy else None
        if run.spec.partitioning == "page":
            if inflight is not None:
                injector.log.pages_reread += 1
                replacement.segments.append(
                    _Segment(lo=inflight, hi=inflight, stride=1, residue=0)
                )
            replacement.segments.extend(slave.segments)
            # After re-reading the in-flight page the replacement's
            # cursor lands exactly on the dead slave's cursor, so the
            # inherited segments resume where the stride stopped.
            replacement.cursor = 0 if inflight is not None else slave.cursor
        else:
            if inflight is not None:
                injector.log.pages_reread += 1
                replacement.intervals.append((inflight, inflight))
            # Intervals already harvested by an in-flight Figure-6
            # round stay with the master (run.harvest): they are
            # redistributed by the apply step or by the abort path.
            replacement.intervals.extend(slave.remaining_intervals())
        slave.segments = []
        slave.intervals = []
        run.slaves[replacement.slave_id] = replacement
        self._slave_next(run, replacement)
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, run, "crash")
        self._maybe_complete(run)

    # -- cooperative cancellation (deadline budgets) ------------------------------

    def _deadline_fire(self, fault: QueryDeadline) -> None:
        """A query's deadline passed: cancel it wherever it is.

        Completed queries are left alone (a deadline firing after the
        finish line is a logged no-op); running queries cancel
        cooperatively at this event boundary; queued or not-yet-arrived
        queries are dropped before doing any work.
        """
        injector = self.injector
        assert injector is not None
        name = fault.task
        for record in self.records:
            if record.task.name == name:
                injector.log.record(
                    self.clock, "no-op", f"deadline: {name!r} already complete"
                )
                return
        for run in self.running.values():
            if run.task.name == name:
                self._cancel_run(run, reason="deadline")
                return
        for task in self._pending:
            if task.name == name:
                self._cancel_pending(task, reason="deadline")
                self._consult_policy()
                return
        for __, __i, task, __spec in self._arrivals:
            if task.name == name:
                self._cancel_arrival(task, reason="deadline")
                return
        injector.log.record(
            self.clock, "no-op", f"deadline: no task named {name!r}"
        )

    def _log_cancel(self, task: Task, reason: str, detail: str) -> None:
        injector = self.injector
        if injector is not None:
            injector.log.deadline_cancels += 1
            injector.log.record(self.clock, "cancel", detail)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"cancel ({reason})",
                t=self.clock,
                track=f"task:{task.name}",
                cat="cancel",
                args={"reason": reason},
            )

    def _cancel_run(self, run: _TaskRun, *, reason: str = "deadline") -> None:
        """Cooperatively cancel a *running* task, releasing everything.

        Slaves are marked crashed+retired, which the event loop and the
        dispatchers already treat as "drop on sight": in-flight io
        completions free their disk, in-flight cpu completions free
        their processor, queued requests are filtered out before
        dispatch.  Bumping the adjustment epoch stales any in-flight
        protocol leg or timeout timer, so a mid-round cancel can never
        wedge (or double-abort) an adjustment round.
        """
        task = run.task
        run.adjust_epoch += 1
        run.adjusting = False
        run.harvest = None
        self.occupancy_cancelled += _history_occupancy(run.history, self.clock)
        for slave in run.slaves.values():
            slave.crashed = True
            slave.retired = True
            slave.paused = False
            slave.segments = []
            slave.intervals = []
        del self.running[task.task_id]
        self._log_cancel(
            task,
            reason,
            f"{task.name}: cancelled ({reason}) after {run.pages_done} pages",
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.counter(
                "running_tasks", t=self.clock, value=float(len(self.running))
            )
        self.cancel_records.append(
            CancelRecord(
                task=task,
                cancelled_at=self.clock,
                started_at=run.started_at,
                pages_done=run.pages_done,
                reason=reason,
            )
        )
        self._cancel_dependents(task)
        self._consult_policy()

    def _cancel_pending(self, task: Task, *, reason: str) -> None:
        self._pending.remove(task)
        self._log_cancel(
            task, reason, f"{task.name}: cancelled ({reason}) before start"
        )
        self.cancel_records.append(
            CancelRecord(task=task, cancelled_at=self.clock, reason=reason)
        )
        self._cancel_dependents(task)

    def _cancel_arrival(self, task: Task, *, reason: str) -> None:
        self._arrivals = [e for e in self._arrivals if e[2] is not task]
        heapq.heapify(self._arrivals)
        self._log_cancel(
            task, reason, f"{task.name}: cancelled ({reason}) before arrival"
        )
        self.cancel_records.append(
            CancelRecord(task=task, cancelled_at=self.clock, reason=reason)
        )
        self._cancel_dependents(task)

    def _cancel_dependents(self, task: Task) -> None:
        """Transitively cancel tasks that can now never become ready.

        A cancelled task's id never joins ``completed_ids``, so any
        dependent would wait forever — the engine would report a stall.
        Cancelling the whole dependency cone keeps the run live.
        """
        for dep in [t for t in self._pending if task.task_id in t.depends_on]:
            self._cancel_pending(dep, reason="dependency")
        for dep in [
            e[2] for e in self._arrivals if task.task_id in e[2].depends_on
        ]:
            self._cancel_arrival(dep, reason="dependency")

    # -- checkpoint / resume ------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        """Offer the recovery manager a snapshot at a round boundary.

        Called only on cold paths (task start, adjustment apply, task
        completion); one None check when recovery is off.  Capture is
        skipped while any adjustment round is in flight — a round
        boundary is precisely when no protocol leg is pending.
        """
        recovery = self.recovery
        if recovery is None:
            return
        if any(r.adjusting for r in self.running.values()):
            return
        recovery.capture(self)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the engine's schedule state (see :mod:`repro.recovery`).

        Valid at round boundaries: every live slave is either busy on
        exactly one page (re-read on resume) or retired, and no
        adjustment protocol leg is in flight.
        """
        running = []
        for run in sorted(self.running.values(), key=lambda r: r.task.task_id):
            slaves = []
            for slave in sorted(run.slaves.values(), key=lambda s: s.slave_id):
                slaves.append(
                    SlaveSnapshot(
                        slave_id=slave.slave_id,
                        cursor=slave.cursor,
                        segments=tuple(
                            (seg.lo, seg.hi, seg.stride, seg.residue)
                            for seg in slave.segments
                        ),
                        intervals=tuple(slave.intervals),
                        retired=slave.retired,
                        crashed=slave.crashed,
                        inflight=(
                            slave.inflight_page
                            if slave.busy and not slave.crashed
                            else None
                        ),
                    )
                )
            running.append(
                TaskSnapshot(
                    name=run.task.name,
                    parallelism=run.parallelism,
                    started_at=run.started_at,
                    pages_done=run.pages_done,
                    next_slave_id=run.next_slave_id,
                    block_base=run.block_base,
                    history=tuple(run.history),
                    order=(
                        tuple(run.order)
                        if run.spec.pattern == IOPattern.RANDOM
                        else None
                    ),
                    slaves=tuple(slaves),
                )
            )
        return Checkpoint(
            taken_at=self.clock,
            seed=self.seed,
            rng_state=self._rng.getstate(),
            block_cursor=self._block_cursor,
            io_count=self.io_count,
            cpu_busy_time=self.cpu_busy_time,
            adjustments=self.adjustments,
            peak_memory=self.peak_memory,
            measured_mult=tuple(self._measured_mult),
            running=tuple(running),
            completed=tuple(
                RecordSnapshot(
                    name=r.task.name,
                    started_at=r.started_at,
                    finished_at=r.finished_at,
                    history=r.parallelism_history,
                )
                for r in self.records
            ),
            disks=tuple(
                DiskSnapshot(
                    streams=tuple(d._streams),
                    busy_time=d.busy_time,
                    sequential=d.counters.sequential,
                    almost_sequential=d.counters.almost_sequential,
                    random=d.counters.random,
                )
                for d in self.disks
            ),
        )

    def _restore(self, cp: Checkpoint) -> None:
        """Rebuild the engine's state from a checkpoint (in __init__).

        Tasks are matched by *name* against this run's specs.  Each
        slave that was mid-page re-reads its in-flight page through the
        same singleton-stride mechanism a crash replacement uses, so
        page conservation holds across the resume.
        """
        if len(cp.disks) != len(self.disks) or len(cp.measured_mult) != len(
            self.disks
        ):
            raise RecoveryError(
                f"checkpoint has {len(cp.disks)} disks, machine has "
                f"{len(self.disks)}"
            )
        self.clock = cp.taken_at
        self._rng.setstate(cp.rng_state)
        self._block_cursor = cp.block_cursor
        self.io_count = cp.io_count
        self.cpu_busy_time = cp.cpu_busy_time
        self.adjustments = cp.adjustments
        self.peak_memory = cp.peak_memory
        self._measured_mult = list(cp.measured_mult)
        self._effective_cache = None
        for disk, snap in zip(self.disks, cp.disks):
            disk._streams = list(snap.streams)
            disk._match_cache.clear()
            disk.busy_time = snap.busy_time
            disk.counters.sequential = snap.sequential
            disk.counters.almost_sequential = snap.almost_sequential
            disk.counters.random = snap.random
        by_name: dict[str, tuple[Task, ScanSpec]] = {}
        for task in self._pending:
            if task.name in by_name:
                raise RecoveryError(
                    f"duplicate task name {task.name!r}: checkpoints match "
                    "tasks by name, so names must be unique"
                )
            by_name[task.name] = (task, task.payload)
        for __, __i, task, spec in self._arrivals:
            if task.name in by_name:
                raise RecoveryError(
                    f"duplicate task name {task.name!r}: checkpoints match "
                    "tasks by name, so names must be unique"
                )
            by_name[task.name] = (task, spec)
        consumed: set[str] = set()
        for rec in cp.completed:
            if rec.name not in by_name:
                raise RecoveryError(
                    f"checkpoint records completed task {rec.name!r} "
                    "missing from this workload"
                )
            task, __spec = by_name[rec.name]
            consumed.add(rec.name)
            self.completed_ids.add(task.task_id)
            self.records.append(
                TaskRecord(
                    task=task,
                    started_at=rec.started_at,
                    finished_at=rec.finished_at,
                    parallelism_history=rec.history,
                )
            )
        injector = self.injector
        for snap in cp.running:
            if snap.name not in by_name:
                raise RecoveryError(
                    f"checkpoint records running task {snap.name!r} "
                    "missing from this workload"
                )
            task, spec = by_name[snap.name]
            consumed.add(snap.name)
            run = _TaskRun(
                task=task,
                spec=spec,
                parallelism=snap.parallelism,
                started_at=snap.started_at,
                block_base=snap.block_base,
                page_mode=spec.partitioning == "page",
                cpu_per_page=spec.cpu_per_page,
                n_pages=spec.n_pages,
            )
            run.pages_done = snap.pages_done
            run.next_slave_id = snap.next_slave_id
            run.history = [(t, x) for t, x in snap.history]
            run.order = (
                list(snap.order)
                if snap.order is not None
                else list(range(spec.n_pages))
            )
            for s in snap.slaves:
                slave = _Slave(slave_id=s.slave_id)
                slave.cursor = s.cursor
                slave.retired = s.retired
                slave.crashed = s.crashed
                slave.segments = [
                    _Segment(lo, hi, stride, residue)
                    for lo, hi, stride, residue in s.segments
                ]
                slave.intervals = list(s.intervals)
                if s.inflight is not None:
                    # The page was mid-read when the checkpoint was cut:
                    # re-read it first, exactly like a crash replacement
                    # (after the re-read the cursor lands back on the
                    # stored position, so the stride resumes in place).
                    if injector is not None:
                        injector.log.pages_reread += 1
                    if run.page_mode:
                        slave.segments.insert(
                            0,
                            _Segment(
                                lo=s.inflight,
                                hi=s.inflight,
                                stride=1,
                                residue=0,
                            ),
                        )
                        slave.cursor = 0
                    else:
                        slave.intervals.insert(0, (s.inflight, s.inflight))
                run.slaves[s.slave_id] = slave
            self.running[task.task_id] = run
        self._pending = [t for t in self._pending if t.name not in consumed]
        kept = [e for e in self._arrivals if e[2].name not in consumed]
        due = sorted(e for e in kept if e[0] <= self.clock + _EPS)
        for __, __i, task, __spec in due:
            self._pending.append(task)
        self._arrivals = [e for e in kept if e[0] > self.clock + _EPS]
        heapq.heapify(self._arrivals)
        # Kick every idle slave: the previously-busy ones claim their
        # re-read singleton and issue its io at the restored clock.
        for run in sorted(self.running.values(), key=lambda r: r.task.task_id):
            for slave in sorted(run.slaves.values(), key=lambda s: s.slave_id):
                if not slave.retired and not slave.busy:
                    self._slave_next(run, slave)
        if self.recovery is not None:
            self.recovery.note_restore(self)

    # -- policy interaction -----------------------------------------------------------

    def _consult_policy(self) -> None:
        state = _PolicyState(self)
        for action in self.policy.decide(state):
            if isinstance(action, Start):
                self._start_task(action.task, action.parallelism)
            elif isinstance(action, Adjust):
                self._begin_adjustment(action.task, action.parallelism)
            elif isinstance(action, Cancel):
                run = self.running.get(action.task.task_id)
                if run is not None:
                    self._cancel_run(run, reason=action.reason)
                elif action.task in self._pending:
                    self._cancel_pending(action.task, reason=action.reason)
            else:  # pragma: no cover
                raise SimulationError(f"unknown action {action!r}")

    def _arm_arrival(self) -> None:
        if self._arrivals and not self._arrival_armed:
            self._arrival_armed = True
            delay = max(0.0, self._arrivals[0][0] - self.clock)
            self._schedule(delay, self._admit_arrivals)

    def _admit_arrivals(self) -> None:
        self._arrival_armed = False
        while self._arrivals and self._arrivals[0][0] <= self.clock + _EPS:
            __, __i, task, __spec = heapq.heappop(self._arrivals)
            self._pending.append(task)
        self._arm_arrival()
        self._consult_policy()

    # -- task lifecycle ------------------------------------------------------------------

    def _start_task(self, task: Task, parallelism: float) -> None:
        n = max(1, int(round(parallelism)))
        try:
            self._pending.remove(task)
        except ValueError:
            raise SimulationError(f"{task!r} is not pending") from None
        spec: ScanSpec = task.payload  # type: ignore[assignment]
        if not isinstance(spec, ScanSpec):
            raise SimulationError(f"{task!r} has no ScanSpec payload")
        run = _TaskRun(
            task=task,
            spec=spec,
            parallelism=n,
            started_at=self.clock,
            block_base=self._block_cursor,
            page_mode=spec.partitioning == "page",
            cpu_per_page=spec.cpu_per_page,
            n_pages=spec.n_pages,
        )
        self._block_cursor += math.ceil(spec.n_pages / self.machine.disks) + 10_000
        order = list(range(spec.n_pages))
        if spec.pattern == IOPattern.RANDOM:
            self._rng.shuffle(order)
        run.order = order
        run.history.append((self.clock, float(n)))
        self.running[task.task_id] = run
        self.peak_memory = max(
            self.peak_memory,
            sum(r.task.memory_bytes for r in self.running.values()),
        )
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                f"start x={n}",
                t=self.clock,
                track=f"task:{task.name}",
                cat="task",
                args={"pages": spec.n_pages, "parallelism": n},
            )
            tracer.counter(
                "running_tasks", t=self.clock, value=float(len(self.running))
            )
        if spec.partitioning == "page":
            for i in range(n):
                slave = _Slave(slave_id=i)
                slave.segments.append(
                    _Segment(lo=0, hi=spec.n_pages - 1, stride=n, residue=i)
                )
                run.slaves[i] = slave
                self._slave_next(run, slave)
            run.next_slave_id = n
        else:
            bounds = self._split_range(0, spec.n_pages - 1, n)
            for i, interval in enumerate(bounds):
                slave = _Slave(slave_id=i)
                if interval is not None:
                    slave.intervals.append(interval)
                run.slaves[i] = slave
                self._slave_next(run, slave)
            run.next_slave_id = n
        self._maybe_checkpoint()
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, run, "start")

    @staticmethod
    def _split_range(lo: int, hi: int, n: int) -> list[tuple[int, int] | None]:
        """Split [lo, hi] into n near-equal contiguous intervals."""
        total = hi - lo + 1
        out: list[tuple[int, int] | None] = []
        start = lo
        for i in range(n):
            size = total // n + (1 if i < total % n else 0)
            if size == 0:
                out.append(None)
            else:
                out.append((start, start + size - 1))
                start += size
        return out

    def _slave_next(self, run: _TaskRun, slave: _Slave) -> None:
        """Move a slave to its next page, or retire it."""
        if slave.retired or slave.busy or slave.paused:
            return
        page = slave.next_page() if run.page_mode else slave.next_key()
        if page is None:
            slave.retired = True
            self._maybe_complete(run)
            return
        slave.busy = True
        slave.inflight_page = page
        # Inlined _TaskRun.page_block: this runs once per page.
        p = run.order[page]
        disk_id = p % self._n_disks
        self._disk_queues[disk_id].append(
            (run, slave, disk_id, run.block_base + p // self._n_disks)
        )
        if not self._disk_busy[disk_id]:
            self._dispatch_disk(disk_id)

    def _maybe_complete(self, run: _TaskRun) -> None:
        if run.pages_done < run.spec.n_pages:
            return  # hot path: one int compare per page
        if run.task.task_id not in self.running:
            return
        if run.pages_done > run.spec.n_pages:
            raise SimulationError(
                f"{run.task.name}: processed {run.pages_done} of "
                f"{run.spec.n_pages} pages — page conservation violated"
            )
        if run.pages_done >= run.spec.n_pages and all(
            s.retired for s in run.slaves.values()
        ):
            del self.running[run.task.task_id]
            self.completed_ids.add(run.task.task_id)
            self.records.append(
                TaskRecord(
                    task=run.task,
                    started_at=run.started_at,
                    finished_at=self.clock,
                    parallelism_history=tuple(run.history),
                )
            )
            tracer = self.tracer
            if tracer is not None:
                tracer.span(
                    run.task.name,
                    t=run.started_at,
                    dur=self.clock - run.started_at,
                    track=f"task:{run.task.name}",
                    cat="task",
                    args={
                        "pages": run.pages_done,
                        "adjustments": len(run.history) - 1,
                    },
                )
                tracer.counter(
                    "running_tasks",
                    t=self.clock,
                    value=float(len(self.running)),
                )
            invariants = self.invariants
            if invariants is not None:
                invariants.micro_site(self, run, "complete")
            self._consult_policy()
            self._maybe_checkpoint()

    # -- disks --------------------------------------------------------------------------------

    def _dispatch_disk(self, disk_id: int) -> None:
        """Serve the queued request costing the least head movement.

        Real disks (and the paper's measured bandwidths) batch the
        dominant sequential stream instead of seeking on every request:
        among queued requests we pick the one whose block classifies
        best against the current head position (sequential beats
        almost-sequential beats random), FIFO within a class.  This is
        a simple SCAN/elevator policy.

        The scan stops at the first sequential request (rank 0 cannot
        be beaten, and FIFO-within-class means the first hit wins) and
        classifies through :meth:`Disk._match`'s memo, so the winning
        request's regime is not recomputed by ``service_time``.
        """
        if self._disk_busy[disk_id]:
            return
        queue = self._disk_queues[disk_id]
        injector = self.injector
        if injector is not None:
            # Requests queued by since-crashed slaves are dropped unserved.
            if any(entry[1].crashed for entry in queue):
                self._disk_queues[disk_id] = queue = deque(
                    entry for entry in queue if not entry[1].crashed
                )
        if not queue:
            return
        if injector is not None:
            until = injector.stalled_until(disk_id)
            if until > self.clock + _EPS:
                # Frozen: dispatch nothing, resume once when the stall ends.
                if not self._stall_armed[disk_id]:
                    self._stall_armed[disk_id] = True

                    def resume() -> None:
                        self._stall_armed[disk_id] = False
                        self._dispatch_disk(disk_id)

                    self._schedule(until - self.clock, resume)
                return
        disk = self.disks[disk_id]
        if len(queue) == 1:
            # Singleton queue: selection is trivial, skip classifying
            # (serving classifies the winner anyway).
            entry = queue.popleft()
        else:
            match = disk._match
            rank = _REGIME_RANK
            best_rank = 3
            best_index = 0
            i = 0
            for entry in queue:
                r = rank[match(entry[3])[0]]
                if r < best_rank:
                    best_index = i
                    if r == 0:
                        break
                    best_rank = r
                i += 1
            if best_index == 0:
                entry = queue.popleft()
            else:
                entry = queue[best_index]
                del queue[best_index]
        self._disk_busy[disk_id] = True
        block = entry[3]
        if injector is None:
            # Inlined Disk.service_time for the healthy multiplier=1.0
            # case — identical accounting, no method call per page.
            cached = disk._match_cache.get(block)
            regime, index = cached if cached is not None else disk._match(block)
            counters = disk.counters
            if regime == "sequential":
                counters.sequential += 1
            elif regime == "almost_sequential":
                counters.almost_sequential += 1
            else:
                counters.random += 1
            service = disk._service_times[regime]
            streams = disk._streams
            if index is not None:
                streams.pop(index)
            streams.append(block)
            if len(streams) > disk.stream_memory:
                streams.pop(0)
            disk._match_cache.clear()
            disk.busy_time += service
        else:
            multiplier = injector.multiplier(disk_id)
            service = disk.service_time(block, multiplier=multiplier)
            self._observe_disk(disk_id, multiplier)
        self.io_count += 1
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._events, (self.clock + service, seq, _EV_IO_DONE, entry)
        )

    # -- processors ------------------------------------------------------------------------------

    def _dispatch_cpu(self) -> None:
        """Hand free processors to queued pages (FIFO).

        Completion is the type-tagged ``_EV_CPU_DONE`` heap entry — the
        run loop's jump table does the bookkeeping, so no closure is
        allocated per page.
        """
        queue = self._cpu_queue
        events = self._events
        heappush = heapq.heappush
        clock = self.clock
        while self.free_processors > 0 and queue:
            entry = queue.popleft()
            if entry[1].crashed:
                continue
            self.free_processors -= 1
            duration = entry[0].cpu_per_page
            self.cpu_busy_time += duration
            seq = self._seq
            self._seq = seq + 1
            heappush(events, (clock + duration, seq, _EV_CPU_DONE, entry))

    # -- dynamic adjustment (Figures 5 and 6) -------------------------------------------------------

    def _begin_adjustment(self, task: Task, parallelism: float) -> None:
        run = self.running.get(task.task_id)
        if run is None:
            raise SimulationError(f"{task!r} is not running")
        n_new = max(1, int(round(parallelism)))
        if n_new == run.parallelism or run.adjusting:
            return
        run.adjusting = True
        run.adjust_started_at = self.clock
        self.adjustments += 1
        epoch = run.adjust_epoch
        delta = self.machine.signal_latency
        # Leg 1: master -> slaves (signal); leg 2: slaves -> master
        # (curpage / intervals); leg 3: master -> slaves (maxpage + n').
        if run.spec.partitioning == "page":
            self._send(2 * delta, lambda: self._collect_maxpage(run, n_new, epoch))
        else:
            self._send(2 * delta, lambda: self._collect_intervals(run, n_new, epoch))
        if self.injector is not None:
            # Only a faulted run can hang a round, and arming the timer
            # on healthy runs would perturb their event traces.
            self._schedule(
                self.adjust_timeout, lambda: self._adjust_deadline(run, epoch)
            )

    def _send(self, delay: float, callback) -> None:
        """One protocol leg; the injector may drop or delay it."""
        if self.injector is not None:
            fate, extra = self.injector.message_fate(self.clock)
            if fate == "drop":
                return  # never delivered; the round hangs until timeout
            delay += extra
        self._schedule(delay, callback)

    def _stale(self, run: _TaskRun, epoch: int) -> bool:
        """Is a protocol leg from an aborted (timed-out) round arriving?"""
        return not run.adjusting or run.adjust_epoch != epoch

    def _adjust_deadline(self, run: _TaskRun, epoch: int) -> None:
        """Abort a hung adjustment round instead of wedging the run.

        Harvested range intervals are handed back to their owners —
        or restarted on fresh slaves when the owner crashed mid-round —
        so page conservation survives the abort.  The policy is then
        consulted again and typically re-issues the adjustment.
        """
        if self._stale(run, epoch) or run.task.task_id not in self.running:
            return  # the round completed (or the task did) in time
        injector = self.injector
        assert injector is not None
        run.adjust_epoch += 1
        run.adjusting = False
        log = injector.log
        log.adjust_timeouts += 1
        log.adjust_aborts += 1
        error = ProtocolTimeoutError(run.task.name, self.adjust_timeout)
        log.record(self.clock, "timeout", str(error))
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "adjust:abort",
                t=self.clock,
                track=f"task:{run.task.name}",
                cat="adjust",
                args={"timeout": self.adjust_timeout},
            )
        harvest, run.harvest = run.harvest, None
        if harvest:
            for slave_id, intervals in sorted(harvest.items()):
                if not intervals:
                    continue
                owner = run.slaves.get(slave_id)
                if owner is None or owner.retired:
                    # The stride's owner died mid-round: restart it on a
                    # fresh slave so its keys are not lost.
                    owner = _Slave(slave_id=run.next_slave_id)
                    run.next_slave_id += 1
                    run.slaves[owner.slave_id] = owner
                owner.intervals.extend(intervals)
        for slave in sorted(run.slaves.values(), key=lambda s: s.slave_id):
            slave.paused = False
            if not slave.retired and not slave.busy:
                self._slave_next(run, slave)
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, run, "abort")
        self._maybe_complete(run)
        self._consult_policy()

    def _collect_maxpage(self, run: _TaskRun, n_new: int, epoch: int) -> None:
        """Figure 5: compute maxpage from slave cursors, broadcast."""
        if self._stale(run, epoch):
            return
        # Retired slaves report their *final* cursor: a stride that
        # already ran to completion must keep its pages claimed, or the
        # new strides would re-cover (double-process) them.
        cursors = [s.cursor for s in run.slaves.values()]
        maxpage = max(cursors) if cursors else run.spec.n_pages
        delta = self.machine.signal_latency
        self._send(
            delta, lambda: self._apply_page_adjustment(run, n_new, maxpage, epoch)
        )

    def _apply_page_adjustment(
        self, run: _TaskRun, n_new: int, maxpage: int, epoch: int
    ) -> None:
        if self._stale(run, epoch):
            return
        spec = run.spec
        last = spec.n_pages - 1
        # Slaves keep reading between reporting curpage and receiving
        # maxpage (the paper assumes that window is negligible; a
        # delayed leg makes it real).  The switch must not place the
        # boundary below any slave's current position, or the new
        # strides would re-cover pages processed during the window.
        maxpage = max([maxpage] + [s.cursor for s in run.slaves.values()])
        survivors = [
            s
            for s in sorted(run.slaves.values(), key=lambda s: s.slave_id)
            if not s.retired
        ]
        for slave in survivors:
            # Clamp the old stride at maxpage - 1 ("all the pages
            # before maxpage"); the new strides start at maxpage.
            slave.segments = [
                _Segment(seg.lo, min(seg.hi, maxpage - 1), seg.stride, seg.residue)
                for seg in slave.segments
                if seg.lo <= maxpage - 1
            ]
        # The n' new strides go to the lowest-id survivors by *rank*
        # (survivors beyond n' finish their clamped strides and
        # retire).  Missing owners are fresh slaves whose ids come
        # from next_slave_id — never an id recycled from a retired or
        # crash-replaced slave, which would clobber its slot in
        # run.slaves while the orphaned object kept claiming pages.
        owners = survivors[:n_new]
        if maxpage <= last:
            while len(owners) < n_new:
                slave = _Slave(slave_id=run.next_slave_id)
                run.next_slave_id += 1
                run.slaves[slave.slave_id] = slave
                owners.append(slave)
            for residue, slave in enumerate(owners):
                slave.segments.append(_Segment(maxpage, last, n_new, residue))
        for slave in run.slaves.values():
            if not slave.retired and not slave.busy:
                self._slave_next(run, slave)
        run.parallelism = n_new
        run.adjust_epoch += 1
        run.adjusting = False
        run.history.append((self.clock, float(n_new)))
        tracer = self.tracer
        if tracer is not None:
            tracer.span(
                f"adjust(page) x={n_new}",
                t=run.adjust_started_at,
                dur=self.clock - run.adjust_started_at,
                track=f"task:{run.task.name}",
                cat="adjust",
                args={"n_new": n_new, "maxpage": maxpage},
            )
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, run, "adjust")
        self._maybe_complete(run)
        self._maybe_checkpoint()

    def _collect_intervals(self, run: _TaskRun, n_new: int, epoch: int) -> None:
        """Figure 6: gather remaining intervals, repartition, resume."""
        if self._stale(run, epoch):
            return
        harvest: dict[int, list[tuple[int, int]]] = {}
        remaining: list[tuple[int, int]] = []
        for slave in run.slaves.values():
            if slave.retired:
                continue
            got = slave.remaining_intervals()
            harvest[slave.slave_id] = got
            remaining.extend(got)
            slave.intervals = []
            slave.paused = True
        run.harvest = harvest
        remaining.sort()
        total = sum(hi - lo + 1 for lo, hi in remaining)
        delta = self.machine.signal_latency
        self._send(
            delta,
            lambda: self._apply_range_adjustment(run, n_new, remaining, total, epoch),
        )

    def _apply_range_adjustment(
        self,
        run: _TaskRun,
        n_new: int,
        remaining: list[tuple[int, int]],
        total: int,
        epoch: int,
    ) -> None:
        if self._stale(run, epoch):
            return
        run.harvest = None
        # Deal out near-equal shares of the remaining keys; a slave may
        # receive several intervals (the paper allows this).
        shares: list[list[tuple[int, int]]] = [[] for __ in range(n_new)]
        if total:
            base = total // n_new
            extra = total % n_new
            quota = [base + (1 if i < extra else 0) for i in range(n_new)]
            i = 0
            for lo, hi in remaining:
                while lo <= hi:
                    while i < n_new and quota[i] == 0:
                        i += 1
                    if i >= n_new:
                        break
                    take = min(quota[i], hi - lo + 1)
                    shares[i].append((lo, lo + take - 1))
                    quota[i] -= take
                    lo += take
        # Shares go to the n' lowest-id survivors by *rank*; missing
        # owners are fresh slaves whose ids come from next_slave_id,
        # never a recycled id that would clobber another slave's slot
        # in run.slaves (see _apply_page_adjustment).  A crash
        # replacement spawned mid-round was never harvested: extending
        # keeps its re-read singleton alongside the new share instead
        # of overwriting (losing) it.
        survivors = sorted(
            (s for s in run.slaves.values() if not s.retired),
            key=lambda s: s.slave_id,
        )
        owners = survivors[:n_new]
        while len(owners) < n_new:
            slave = _Slave(slave_id=run.next_slave_id)
            run.next_slave_id += 1
            run.slaves[slave.slave_id] = slave
            owners.append(slave)
        for share, slave in zip(shares, owners):
            slave.intervals.extend(share)
        # Surviving slaves beyond n' got no intervals: they retire when
        # their in-flight page finishes (next _slave_next call).
        for slave in run.slaves.values():
            slave.paused = False
            if not slave.retired and not slave.busy:
                self._slave_next(run, slave)
        run.parallelism = n_new
        run.adjust_epoch += 1
        run.adjusting = False
        run.history.append((self.clock, float(n_new)))
        tracer = self.tracer
        if tracer is not None:
            tracer.span(
                f"adjust(range) x={n_new}",
                t=run.adjust_started_at,
                dur=self.clock - run.adjust_started_at,
                track=f"task:{run.task.name}",
                cat="adjust",
                args={"n_new": n_new, "keys": total},
            )
        invariants = self.invariants
        if invariants is not None:
            invariants.micro_site(self, run, "adjust")
        self._maybe_complete(run)
        self._maybe_checkpoint()


class _PolicyState:
    """Adapter exposing the micro engine as an EngineState."""

    def __init__(self, engine: _MicroEngine) -> None:
        self._engine = engine
        self.machine = engine.machine

    @property
    def now(self) -> float:
        return self._engine.clock

    @property
    def running(self) -> list[_TaskRun]:
        return list(self._engine.running.values())

    @property
    def pending(self) -> list[Task]:
        return self._engine.pending

    @property
    def completed_ids(self) -> set[int]:
        return self._engine.completed_ids

    @property
    def effective_machine(self) -> MachineConfig:
        """The machine as measured (degradation included), for
        bandwidth-aware policies; equals ``machine`` when healthy."""
        return self._engine.effective_machine()
