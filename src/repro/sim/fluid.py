"""The fluid-rate execution engine.

Tasks progress as continuous flows: a task running with parallelism
``x`` completes ``x`` sequential-seconds of work per wall second (the
near-linear intra-operation speedup measured in [HONG91]), unless the
disks are saturated, in which case every task slows proportionally.
Disk saturation uses the same effective-bandwidth model the balance
solver uses, so a pair placed at its balance point runs unthrottled.

The engine drives a :class:`~repro.core.schedulers.SchedulingPolicy` at
every event (start, arrival, completion) and records a full trace:
per-task start/finish times, parallelism history, adjustment count and
resource-utilization integrals.

This is the substrate for the Figure-7 experiment; the page-level
micro simulator (``repro.sim.micro``) cross-checks it with explicit
slave backends and adjustment protocols.

The event loop is on the optimizer's critical path (``parcost``
simulates it for every costed candidate), so the hot structures carry
``__slots__``, per-task constants (io rate, io pattern) are cached at
start time, the ready-pending and running views are memoized between
state changes, and the per-event rate solve builds one list instead of
dicts.  All of it is float-order-preserving: every sum and product
happens over the same values in the same order as the straightforward
implementation, so traces are byte-identical — the sim corpus tests
pin that down to ``float.hex`` equality.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from ..config import MachineConfig
from ..core.balance import effective_bandwidth_mix
from ..core.schedulers import (
    Action,
    Adjust,
    Cancel,
    SchedulingPolicy,
    Shed,
    Start,
)
from ..core.task import IOPattern, Task
from ..errors import SimulationError

if TYPE_CHECKING:  # imported lazily: repro.faults imports nothing from sim
    from ..faults.injector import FaultLog
    from ..faults.schedule import DiskDegradation

#: Safety valve: a run issuing more events than this is considered hung.
_MAX_EVENTS = 1_000_000

_EPS = 1e-9


@dataclass(eq=False, slots=True)
class _Running:
    """Engine-internal record of a running task.

    ``io_rate`` and ``io_pattern`` duplicate the task's values so the
    per-event rate solve reads one attribute instead of re-deriving the
    rate from ``io_count / seq_time`` on every event.
    """

    task: Task
    parallelism: float
    remaining: float  # sequential-seconds of work left
    started_at: float
    history: list[tuple[float, float]] = field(default_factory=list)
    io_rate: float = 0.0
    io_pattern: IOPattern = IOPattern.SEQUENTIAL
    #: CPU share of one sequential-second of this task's work — the
    #: complement of the io-wait share ``io_rate * io_service_time``
    #: under the calibration the workload builders use (see
    #: ``ScanSpec.seq_io_service``).  Cached at start for the
    #: service-semantics CPU integral.
    cpu_frac: float = 0.0

    @property
    def remaining_seq_time(self) -> float:
        return self.remaining


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """Trace of one completed task."""

    task: Task
    started_at: float
    finished_at: float
    parallelism_history: tuple[tuple[float, float], ...]

    @property
    def response_time(self) -> float:
        """Completion minus arrival (multi-user metric)."""
        return self.finished_at - self.task.arrival_time

    @property
    def wait_time(self) -> float:
        return self.started_at - self.task.arrival_time


@dataclass(frozen=True, slots=True)
class ShedRecord:
    """Trace of one task dropped by a :class:`~repro.core.schedulers.Shed`."""

    task: Task
    shed_at: float


@dataclass(frozen=True, slots=True)
class CancelRecord:
    """Trace of one task cooperatively cancelled mid-run.

    ``started_at`` is ``None`` when the task was cancelled before it
    ever started (pending or not yet arrived); ``pages_done`` counts
    partial progress in the engine's work unit (pages for the micro
    engine, 0 for the fluid engine).
    """

    task: Task
    cancelled_at: float
    started_at: float | None = None
    pages_done: int = 0
    reason: str = "deadline"


@dataclass
class ScheduleResult:
    """Outcome of one simulated run.

    CPU accounting carries two semantics (see docs/CHECKING.md):

    * **occupancy** — processor-seconds *allocated*: a slave holds its
      processor for its whole lifetime, io-throttled or not.  This is
      the fluid engine's native integral ``∫ Σ xᵢ dt``.
    * **service** — processor-seconds actually *computing* tuples.
      This is the micro engine's native sum of per-page CPU bursts.

    ``cpu_busy`` keeps each engine's historical native semantics
    (occupancy for fluid, service for micro); ``cpu_busy_occupancy``
    and ``cpu_busy_service`` report both quantities from both engines,
    so cross-engine checks compare like with like.
    """

    policy_name: str
    elapsed: float
    records: list[TaskRecord]
    adjustments: int
    cpu_busy: float  # processor-seconds, engine-native semantics
    io_served: float  # io requests served
    machine: MachineConfig
    peak_memory: float = 0.0  # largest co-resident working set (bytes)
    shed_records: list[ShedRecord] = field(default_factory=list)
    #: Fault-injection trace of the run (``None`` = healthy run).
    fault_log: "FaultLog | None" = None
    #: Tasks cooperatively cancelled (deadline kills and their
    #: transitive dependents); never counted in ``records``.
    cancel_records: list[CancelRecord] = field(default_factory=list)
    #: Processor-seconds *allocated* (occupancy semantics).
    cpu_busy_occupancy: float = 0.0
    #: Processor-seconds spent *computing* (service semantics).
    cpu_busy_service: float = 0.0

    @property
    def cpu_utilization(self) -> float:
        denom = self.machine.processors * self.elapsed
        return self.cpu_busy / denom if denom > 0 else 0.0

    @property
    def cpu_utilization_occupancy(self) -> float:
        """Fraction of processor capacity *held* over the run."""
        denom = self.machine.processors * self.elapsed
        return self.cpu_busy_occupancy / denom if denom > 0 else 0.0

    @property
    def cpu_utilization_service(self) -> float:
        """Fraction of processor capacity spent *computing* tuples."""
        denom = self.machine.processors * self.elapsed
        return self.cpu_busy_service / denom if denom > 0 else 0.0

    @property
    def io_utilization(self) -> float:
        denom = self.machine.io_bandwidth * self.elapsed
        return self.io_served / denom if denom > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.response_time for r in self.records) / len(self.records)

    def record_for(self, task: Task) -> TaskRecord:
        """The trace record of one task."""
        for record in self.records:
            if record.task.task_id == task.task_id:
                return record
        raise SimulationError(f"no record for {task!r}")


class FluidSimulator:
    """Event-driven fluid simulation of the XPRS machine.

    Args:
        machine: machine configuration (processors, disks, bandwidths).
        adjustment_overhead: sequential-seconds of work added to a task
            each time its parallelism is adjusted (models the signal
            round trip plus finishing the current page).  Defaults to
            two signal latencies plus one page-processing time.
        use_effective_bandwidth: model the sequential/random bandwidth
            drop when streams interleave; off = nominal ``B`` always.
        degradations: scheduled per-disk bandwidth degradation windows
            (:class:`~repro.faults.schedule.DiskDegradation`).  The
            fluid model has no per-disk queues, so a window scales the
            array's aggregate bandwidth by its per-disk factor averaged
            over the array; window edges become simulation events and
            the measured machine is exposed to policies and to the
            serving gate as ``state.effective_machine``.
        tracer: a :class:`~repro.obs.Tracer` recording task spans and
            start/adjust/shed instants at virtual time; ``None`` (or
            the falsy NullTracer) records nothing.  Emission sites are
            per-event, never inside the rate solve, and guard with one
            None check — parcost's costing loop is unaffected when
            tracing is off.
        invariants: an :class:`~repro.check.InvariantChecker` asserting
            clock monotonicity, parallelism bounds and utilization at
            every event; ``None`` (the default) checks nothing and
            adds one ``is not None`` test per event.
    """

    def __init__(
        self,
        machine: MachineConfig,
        *,
        adjustment_overhead: float | None = None,
        use_effective_bandwidth: bool = True,
        degradations: "Sequence[DiskDegradation] | None" = None,
        tracer=None,
        invariants=None,
    ) -> None:
        self.machine = machine
        if adjustment_overhead is None:
            adjustment_overhead = 2.0 * machine.signal_latency + 0.01
        if adjustment_overhead < 0:
            raise SimulationError("adjustment_overhead must be >= 0")
        self.adjustment_overhead = adjustment_overhead
        self.use_effective_bandwidth = use_effective_bandwidth
        self.degradations = tuple(degradations or ())
        for window in self.degradations:
            if window.disk >= machine.disks:
                raise SimulationError(
                    f"degradation names disk {window.disk} but the machine "
                    f"has {machine.disks}"
                )
        #: Scale -> scaled machine.  A degradation window holds one
        #: scale for its whole duration, but _effective_machine runs on
        #: every event; memoizing avoids rebuilding two dataclasses per
        #: event while a window is open.
        self._machine_by_scale: dict[float, MachineConfig] = {}
        # Hoisted per-event constants (the machine is immutable).
        self._processors = float(machine.processors)
        self._nominal_bandwidth = machine.io_bandwidth
        self.tracer = tracer or None
        self.invariants = invariants

    def _multiplier_at(self, t: float) -> float:
        """Array-wide bandwidth factor at time ``t`` (1.0 = healthy)."""
        if not self.degradations:
            return 1.0
        per_disk = [1.0] * self.machine.disks
        for window in self.degradations:
            if window.start <= t < window.end:
                per_disk[window.disk] *= window.factor
        return sum(per_disk) / len(per_disk)

    def _effective_machine(self, t: float) -> MachineConfig:
        scale = self._multiplier_at(t)
        if scale >= 1.0 - 1e-12:
            return self.machine
        cached = self._machine_by_scale.get(scale)
        if cached is not None:
            return cached
        disk = self.machine.disk
        machine = replace(
            self.machine,
            disk=replace(
                disk,
                seq_ios_per_sec=disk.seq_ios_per_sec * scale,
                almost_seq_ios_per_sec=disk.almost_seq_ios_per_sec * scale,
                random_ios_per_sec=disk.random_ios_per_sec * scale,
            ),
        )
        self._machine_by_scale[scale] = machine
        return machine

    # -- public API -------------------------------------------------------------

    def run(self, tasks: list[Task], policy: SchedulingPolicy) -> ScheduleResult:
        """Simulate ``tasks`` under ``policy`` until all complete."""
        policy.reset()
        state = _SimState(self.machine, tasks)
        adjustments = 0
        cpu_busy = 0.0
        cpu_service = 0.0
        io_served = 0.0
        peak_memory = 0.0
        healthy = not self.degradations
        tracer = self.tracer
        invariants = self.invariants
        n_recorded = 0
        for __ in range(_MAX_EVENTS):
            if not healthy:
                state.effective_machine = self._effective_machine(state.clock)
            actions = policy.decide(state)
            if actions:
                adjustments += self._apply(state, actions)
            # Memory sum is maintained on membership change, with the
            # same summation order a per-event resum would use.
            if state.memory_in_use > peak_memory:
                peak_memory = state.memory_in_use
            if state.done() and policy.next_wakeup(state.clock) is None:
                break
            # Rates under the current allocation.
            rates = self._rates(state)
            horizon = self._next_event_in(state, rates)
            wakeup = policy.next_wakeup(state.clock)
            if wakeup is not None:
                wake_in = max(wakeup - state.clock, _EPS)
                horizon = wake_in if horizon is None else min(horizon, wake_in)
            if horizon is None:
                if state.running:
                    # Unfinished running tasks, yet every progress rate
                    # is below _EPS and nothing else is due: terminate
                    # with a diagnostic naming the stalled tasks rather
                    # than blaming the policy (or silently settling).
                    stalled = [
                        f"{r.task.name} (x={r.parallelism:g}, "
                        f"remaining={r.remaining:.3g})"
                        for r in state.running
                    ]
                    raise SimulationError(
                        "stall: running tasks have no progress rate and "
                        f"no event is due (running=[{', '.join(stalled)}], "
                        f"pending={[t.name for t in state.pending]})"
                    )
                raise SimulationError(
                    "deadlock: pending tasks but the policy started nothing "
                    f"(pending={[t.name for t in state.pending]})"
                )
            dt = max(horizon, 0.0)
            for run, rate in rates:
                run.remaining -= rate * dt
                cpu_busy += run.parallelism * dt
                # A sequential-second of work carries cpu_frac seconds
                # of tuple processing; rate sequential-seconds complete
                # per wall second, so this integral lands exactly on
                # the micro engine's per-page CPU-burst sum.
                cpu_service += run.cpu_frac * rate * dt
                io_served += run.io_rate * rate * dt
            state.clock += dt
            state.settle()
            if tracer is not None and len(state.records) > n_recorded:
                for record in state.records[n_recorded:]:
                    tracer.span(
                        record.task.name,
                        t=record.started_at,
                        dur=record.finished_at - record.started_at,
                        track=f"task:{record.task.name}",
                        cat="task",
                        args={
                            "adjustments": len(record.parallelism_history) - 1
                        },
                    )
                n_recorded = len(state.records)
            if invariants is not None:
                invariants.fluid_event(
                    state, machine=self.machine, cpu_busy=cpu_busy
                )
        else:
            raise SimulationError("simulation exceeded the event budget")
        result = ScheduleResult(
            policy_name=policy.name,
            elapsed=state.clock,
            records=state.records,
            adjustments=adjustments,
            cpu_busy=cpu_busy,
            io_served=io_served,
            machine=self.machine,
            peak_memory=peak_memory,
            shed_records=state.shed_records,
            cancel_records=state.cancel_records,
            cpu_busy_occupancy=cpu_busy,
            cpu_busy_service=cpu_service,
        )
        if invariants is not None:
            invariants.fluid_end(result)
        return result

    # -- internals ----------------------------------------------------------------

    def _apply(self, state: "_SimState", actions: list[Action]) -> int:
        adjustments = 0
        tracer = self.tracer
        for action in actions:
            if isinstance(action, Start):
                state.start(action.task, action.parallelism)
                if tracer is not None:
                    tracer.instant(
                        f"start x={action.parallelism:g}",
                        t=state.clock,
                        track=f"task:{action.task.name}",
                        cat="task",
                        args={"parallelism": action.parallelism},
                    )
            elif isinstance(action, Adjust):
                run = state.running_by_id(action.task.task_id)
                if abs(run.parallelism - action.parallelism) > _EPS:
                    run.parallelism = action.parallelism
                    run.remaining += self.adjustment_overhead
                    run.history.append((state.clock, action.parallelism))
                    adjustments += 1
                    if tracer is not None:
                        tracer.instant(
                            f"adjust x={action.parallelism:g}",
                            t=state.clock,
                            track=f"task:{action.task.name}",
                            cat="adjust",
                            args={"parallelism": action.parallelism},
                        )
            elif isinstance(action, Shed):
                state.shed(action.task)
                if tracer is not None:
                    tracer.instant(
                        "shed",
                        t=state.clock,
                        track=f"task:{action.task.name}",
                        cat="admission",
                    )
            elif isinstance(action, Cancel):
                state.cancel(action.task, action.reason)
                if tracer is not None:
                    tracer.instant(
                        f"cancel ({action.reason})",
                        t=state.clock,
                        track=f"task:{action.task.name}",
                        cat="cancel",
                    )
            else:  # pragma: no cover - exhaustiveness guard
                raise SimulationError(f"unknown action: {action!r}")
        return adjustments

    def _rates(self, state: "_SimState") -> list[tuple[_Running, float]]:
        """Work-progress rate of each running task (seq-seconds/second)."""
        running = state.running
        if not running:
            return []
        total_x = sum(r.parallelism for r in running)
        cpu_scale = min(1.0, self._processors / total_x) if total_x > 0 else 1.0
        # cpu_scale belongs in the io *demand*: a CPU-throttled slave
        # issues its next read only after the page's tuples are
        # processed, so the disks see io_rate * x * cpu_scale.  Folding
        # it in before the seq/random split cannot skew the Section-2.3
        # formula — effective_bandwidth_mix is invariant under uniform
        # scaling of its rates (only the interleave and seq-share
        # *ratios* enter), which the repro.check parity tests pin down.
        demand = [r.io_rate * r.parallelism * cpu_scale for r in running]
        total_demand = sum(demand)
        bandwidth = self._bandwidth(running, demand)
        io_scale = (
            min(1.0, bandwidth / total_demand) if total_demand > _EPS else 1.0
        )
        return [(r, r.parallelism * cpu_scale * io_scale) for r in running]

    def _bandwidth(self, running: list[_Running], demand: list[float]) -> float:
        if not self.use_effective_bandwidth:
            return self._nominal_bandwidth
        seq_rates = [
            d
            for r, d in zip(running, demand)
            if r.io_pattern == IOPattern.SEQUENTIAL
        ]
        random_total = sum(
            d
            for r, d in zip(running, demand)
            if r.io_pattern == IOPattern.RANDOM
        )
        return effective_bandwidth_mix(self.machine, seq_rates, random_total)

    def _next_event_in(
        self, state: "_SimState", rates: list[tuple[_Running, float]]
    ) -> float | None:
        """Seconds until the next completion or arrival."""
        horizons = []
        for run, rate in rates:
            if rate > _EPS:
                horizons.append(run.remaining / rate)
        next_arrival = state.next_arrival_in()
        if next_arrival is not None:
            horizons.append(next_arrival)
        if not horizons:
            return None
        return min(horizons)


class _SimState:
    """Mutable simulation state; doubles as the policy's EngineState.

    The ``running`` and ``pending`` views are memoized and invalidated
    on the state transitions that can change them (start, shed,
    completion, arrival) — policies call both several times per event
    and must treat the returned lists as read-only snapshots.
    """

    __slots__ = (
        "machine",
        "effective_machine",
        "clock",
        "running_map",
        "records",
        "shed_records",
        "cancel_records",
        "completed_ids",
        "memory_in_use",
        "_arrivals",
        "_pending",
        "_counter",
        "_running_view",
        "_ready_view",
    )

    def __init__(self, machine: MachineConfig, tasks: list[Task]) -> None:
        self.machine = machine
        self.effective_machine = machine
        self.clock = 0.0
        self.running_map: dict[int, _Running] = {}
        self.records: list[TaskRecord] = []
        self.shed_records: list[ShedRecord] = []
        self.cancel_records: list[CancelRecord] = []
        self.completed_ids: set[int] = set()
        #: Sum of running tasks' working sets, maintained on membership
        #: change (same floats, same order as a per-event resum).
        self.memory_in_use = 0.0
        self._arrivals: list[tuple[float, int, Task]] = [
            (t.arrival_time, i, t) for i, t in enumerate(tasks)
        ]
        heapq.heapify(self._arrivals)
        self._pending: list[Task] = []
        self._counter = itertools.count(len(tasks))
        self._running_view: list[_Running] | None = []
        self._ready_view: list[Task] | None = None
        self._drain_arrivals()

    # -- EngineState protocol --------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock

    @property
    def running(self) -> list[_Running]:
        view = self._running_view
        if view is None:
            view = self._running_view = list(self.running_map.values())
        return view

    @property
    def pending(self) -> list[Task]:
        """Arrived tasks that are *ready*: all dependencies completed."""
        view = self._ready_view
        if view is None:
            completed = self.completed_ids
            view = self._ready_view = [
                t for t in self._pending if t.depends_on <= completed
            ]
        return view

    # -- mutation ----------------------------------------------------------------------

    def _resum_memory(self) -> None:
        self.memory_in_use = sum(
            r.task.memory_bytes for r in self.running_map.values()
        )

    def _remove_pending(self, task: Task) -> None:
        """Drop ``task`` from the pending list, matching by task id.

        Ids are unique within a run, so this finds exactly the element
        ``list.remove`` would — but compares one int per candidate
        instead of running the full dataclass equality, which matters
        in serving mode where the pending list holds every
        not-yet-admitted fragment of the whole arrival stream.
        """
        pending = self._pending
        tid = task.task_id
        for i, t in enumerate(pending):
            if t.task_id == tid:
                del pending[i]
                return
        raise ValueError(tid)

    def start(self, task: Task, parallelism: float) -> None:
        if task.task_id in self.running_map:
            raise SimulationError(f"{task!r} is already running")
        try:
            self._remove_pending(task)
        except ValueError:
            raise SimulationError(f"{task!r} is not pending") from None
        if parallelism <= 0:
            raise SimulationError(f"{task!r}: parallelism must be positive")
        disk = self.machine.disk
        io_service = (
            1.0 / disk.random_ios_per_sec
            if task.io_pattern == IOPattern.RANDOM
            else 1.0 / disk.almost_seq_ios_per_sec
        )
        run = _Running(
            task=task,
            parallelism=parallelism,
            remaining=task.seq_time,
            started_at=self.clock,
            history=[(self.clock, parallelism)],
            io_rate=task.io_rate,
            io_pattern=task.io_pattern,
            cpu_frac=max(0.0, 1.0 - task.io_rate * io_service),
        )
        self.running_map[task.task_id] = run
        self._running_view = None
        self._ready_view = None
        self._resum_memory()

    def shed(self, task: Task) -> None:
        """Drop a pending (possibly not-yet-ready) task without running it."""
        if task.task_id in self.running_map:
            raise SimulationError(f"{task!r} is running and cannot be shed")
        try:
            self._remove_pending(task)
        except ValueError:
            raise SimulationError(f"{task!r} is not pending") from None
        self.shed_records.append(ShedRecord(task=task, shed_at=self.clock))
        self._ready_view = None

    def cancel(self, task: Task, reason: str = "deadline") -> None:
        """Cooperatively cancel ``task``, running or pending."""
        run = self.running_map.pop(task.task_id, None)
        if run is not None:
            self.cancel_records.append(
                CancelRecord(
                    task=task,
                    cancelled_at=self.clock,
                    started_at=run.started_at,
                    reason=reason,
                )
            )
            self._running_view = None
            self._resum_memory()
            return
        try:
            self._remove_pending(task)
        except ValueError:
            raise SimulationError(
                f"{task!r} is neither running nor pending"
            ) from None
        self.cancel_records.append(
            CancelRecord(task=task, cancelled_at=self.clock, reason=reason)
        )
        self._ready_view = None

    def settle(self) -> None:
        """Retire finished tasks and admit due arrivals."""
        finished = [
            run for run in self.running_map.values() if run.remaining <= _EPS
        ]
        if finished:
            for run in finished:
                del self.running_map[run.task.task_id]
                self.completed_ids.add(run.task.task_id)
                self.records.append(
                    TaskRecord(
                        task=run.task,
                        started_at=run.started_at,
                        finished_at=self.clock,
                        parallelism_history=tuple(run.history),
                    )
                )
            self._running_view = None
            self._ready_view = None
            self._resum_memory()
        self._drain_arrivals()

    def _drain_arrivals(self) -> None:
        arrivals = self._arrivals
        if not arrivals:
            return
        deadline = self.clock + _EPS
        while arrivals and arrivals[0][0] <= deadline:
            __, __, task = heapq.heappop(arrivals)
            self._pending.append(task)
            self._ready_view = None

    def next_arrival_in(self) -> float | None:
        if not self._arrivals:
            return None
        return max(0.0, self._arrivals[0][0] - self.clock)

    def running_by_id(self, task_id: int) -> _Running:
        try:
            return self.running_map[task_id]
        except KeyError:
            raise SimulationError(f"task {task_id} is not running") from None

    def done(self) -> bool:
        return not self.running_map and not self._pending and not self._arrivals
