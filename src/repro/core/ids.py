"""Scoped id sources for tasks, plan nodes and submissions.

Historically every auto-assigned id (``Task.task_id``,
``PlanNode.node_id``, ``ServiceSubmission.submission_id``) came from a
process-global ``itertools.count()``.  Uniqueness was easy, but any
behavior keyed on an id — retry-backoff jitter hashes
``(seed, submission_id, attempt)`` — silently depended on *how many
objects the process had ever created*, so two identical runs in one
process diverged.

:class:`IdSource` is one named counter; :func:`id_scope` pushes a fresh
set of counters for the duration of a ``with`` block.  Workload and
stream builders wrap their generation in a scope, making ids a pure
function of the builder's inputs: two calls produce identical ids, and
therefore identical jitter, traces and digests.

Outside any scope the default (process-global) counters apply, which
preserves the historical behavior for ad-hoc object creation.  Ids only
need to be unique within one engine run or stream, which a scope
guarantees by construction.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

_SCOPES: list[dict[str, int]] = []
_DEFAULT: dict[str, int] = {}


class IdSource:
    """One named id counter honoring the active :func:`id_scope`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self) -> int:
        counters = _SCOPES[-1] if _SCOPES else _DEFAULT
        value = counters.get(self.name, 0)
        counters[self.name] = value + 1
        return value


@contextlib.contextmanager
def id_scope() -> Iterator[None]:
    """Reset every :class:`IdSource` to zero for the enclosed block.

    Scopes nest; leaving the block restores the enclosing scope (or the
    process-global counters) exactly where they were.
    """
    _SCOPES.append({})
    try:
        yield
    finally:
        _SCOPES.pop()


def snapshot_counters() -> dict[str, int]:
    """Copy of the innermost scope's counters.

    Pairs with :func:`restore_counters` to make cached generation
    replayable: a builder that memoizes expensive objects (e.g. the
    arrival-stream task pools) snapshots the counters right after the
    cold build and replays them on every cache hit, so ids allocated
    *after* the cached step come out identical to a cold run's.
    """
    counters = _SCOPES[-1] if _SCOPES else _DEFAULT
    return dict(counters)


def restore_counters(saved: dict[str, int]) -> None:
    """Overwrite the innermost scope's counters with ``saved``."""
    counters = _SCOPES[-1] if _SCOPES else _DEFAULT
    counters.clear()
    counters.update(saved)


#: The three library-wide id sources.  Modules bind these at import
#: time; the scope lookup happens per call, not per binding.
task_ids = IdSource("task")
node_ids = IdSource("node")
submission_ids = IdSource("submission")
