"""IO-bound / CPU-bound task classification (Section 2.2, Figure 3).

"Suppose that the total disk i/o bandwidth is B (ios/second) and the
total number of processors is N.  We call task f_i IO-bound if
C_i > B/N and CPU-bound if otherwise."

When a task runs with parallelism ``x`` its io rate is ``C_i * x``; the
line ``y = C_i * x`` lives in the rectangle bounded by ``N`` and ``B``.
IO-bound tasks sit above the diagonal and hit the bandwidth wall first
(``maxp = B / C_i``); CPU-bound tasks hit the processor wall
(``maxp = N``).
"""

from __future__ import annotations

import math

from ..config import MachineConfig
from .task import IOPattern, Task


def pattern_bandwidth(machine: MachineConfig, pattern: IOPattern) -> float:
    """Aggregate disk bandwidth available to a task of one io pattern.

    Sequential-io tasks see the almost-sequential bandwidth (the
    paper's working ``B``: parallel backends reorder requests);
    random-io tasks can never exceed the random bandwidth.
    """
    if pattern == IOPattern.RANDOM:
        return machine.total_random_bandwidth
    return machine.io_bandwidth


def is_io_bound(task: Task, machine: MachineConfig) -> bool:
    """``C_i > B/N`` — IO-bound per the paper's definition."""
    return task.io_rate > machine.bound_threshold


def is_cpu_bound(task: Task, machine: MachineConfig) -> bool:
    """``C_i <= B/N`` — the complement of :func:`is_io_bound`."""
    return not is_io_bound(task, machine)


def max_parallelism(task: Task, machine: MachineConfig) -> float:
    """``maxp(f_i)`` — the task's maximum useful degree of parallelism.

    IO-bound tasks are limited by bandwidth (``B / C_i``); CPU-bound
    tasks by the processor count (``N``).  The bandwidth wall uses the
    bandwidth matching the task's io pattern.  The value is continuous;
    use :func:`int_parallelism` when an integral degree is needed.
    """
    if task.io_rate <= 0:
        return float(machine.processors)
    bandwidth = pattern_bandwidth(machine, task.io_pattern)
    return min(float(machine.processors), bandwidth / task.io_rate)


def int_parallelism(x: float, machine: MachineConfig) -> int:
    """Floor a continuous degree of parallelism to a feasible integer.

    Floor, not round: ``x`` is capped by the bandwidth wall
    ``B / C_i``, and flooring is the only rounding that keeps the
    integral degree's demand ``C_i * floor(x)`` at or under ``B`` —
    rounding up past a balance point would oversubscribe the disks,
    which Section 2.3 never allows.  (For the non-negative degrees
    seen here ``int(x)`` was already a floor; ``math.floor`` states
    the intent and pins it for negative inputs too.)
    """
    return max(1, min(machine.processors, math.floor(x)))


def split_by_bound(
    tasks, machine: MachineConfig
) -> tuple[list[Task], list[Task]]:
    """Partition tasks into (IO-bound ``S_io``, CPU-bound ``S_cpu``)."""
    io_bound: list[Task] = []
    cpu_bound: list[Task] = []
    for task in tasks:
        if is_io_bound(task, machine):
            io_bound.append(task)
        else:
            cpu_bound.append(task)
    return io_bound, cpu_bound


def most_io_bound(tasks) -> Task:
    """The task with the greatest io rate (the paper's pairing pick)."""
    return max(tasks, key=lambda t: t.io_rate)


def most_cpu_bound(tasks) -> Task:
    """The task with the smallest io rate."""
    return min(tasks, key=lambda t: t.io_rate)


def classification_line(task: Task, machine: MachineConfig, points: int = 20):
    """Sample the Figure-3 line ``y = C_i * x`` inside the (N, B) box.

    Returns ``[(x, io_rate_at_x), ...]`` up to the task's maxp — the
    data behind Figure 3, used by the fig3 bench.
    """
    maxp = max_parallelism(task, machine)
    if points < 2:
        points = 2
    step = maxp / (points - 1)
    return [(i * step, task.io_rate * i * step) for i in range(points)]
