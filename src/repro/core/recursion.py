"""The Section-4 recursion ``T_n(S)``, implemented literally.

The paper derives parallel plan cost from this recursive formula::

    T_n(S) = T_i / maxp(f_i) + T_n(S - {f_i})             if f_i runs alone
    T_n(S) = min(T_i/x_1, T_j/x_2) + T_n(S - {f_i,f_j} U {f_ij})
                                                          if f_i, f_j pair up

where ``f_i`` and ``f_j`` are two *ready* tasks chosen by the
scheduling algorithm, ``(x_1, x_2)`` their IO-CPU balance point and
``f_ij`` the remaining part of whichever task survives.

The fluid engine computes the same quantity by explicit simulation;
:func:`elapsed_time_recursion` evaluates the closed recursion directly
(iteratively — each step removes work, so the recursion is a loop).
Property tests pin the two implementations to each other, which is the
strongest internal-consistency check the reproduction has: the formula
in the optimizer and the behaviour of the runtime agree by theorem, not
by luck.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import SchedulingError
from .balance import balance_point, inter_time_realizable, intra_time, realizable_rates
from .classify import is_io_bound, max_parallelism
from .task import Task


@dataclass
class RecursionStep:
    """One step of the evaluated recursion (for traces and tests)."""

    kind: str  # "pair" or "solo"
    duration: float
    tasks: tuple[str, ...]


def elapsed_time_recursion(
    tasks: list[Task],
    machine: MachineConfig,
    *,
    use_effective_bandwidth: bool = True,
    trace: list[RecursionStep] | None = None,
) -> float:
    """Evaluate ``T_n(S)`` for a set of tasks with dependencies.

    Follows the paper's algorithm exactly: among *ready* tasks, pair
    the most IO-bound with the most CPU-bound at their balance point
    when worthwhile; otherwise run the head task alone at its maximum
    intra-operation parallelism.  Arrival times are not modelled (the
    recursion is a batch cost formula).

    Raises:
        SchedulingError: on dependency cycles.
    """
    remaining: dict[int, Task] = {t.task_id: t for t in tasks}
    completed: set[int] = set()
    elapsed = 0.0
    guard = 0
    while remaining:
        guard += 1
        if guard > 10 * len(tasks) + 100:
            raise SchedulingError("recursion failed to make progress")
        ready = [
            t for t in remaining.values() if t.depends_on <= completed
        ]
        if not ready:
            raise SchedulingError("dependency cycle in task set")
        io_ready = sorted(
            (t for t in ready if is_io_bound(t, machine)),
            key=lambda t: -t.io_rate,
        )
        cpu_ready = sorted(
            (t for t in ready if not is_io_bound(t, machine)),
            key=lambda t: t.io_rate,
        )
        if io_ready and cpu_ready:
            # Like the scheduler, try the most IO-bound task against
            # each CPU-bound candidate in heuristic order until a
            # realizable, worthwhile pairing is found.
            fi = io_ready[0]
            chosen = None
            for fj in cpu_ready:
                point = balance_point(
                    fi, fj, machine, use_effective_bandwidth=use_effective_bandwidth
                )
                if point is None:
                    continue
                paired = inter_time_realizable(
                    point,
                    machine,
                    use_effective_bandwidth=use_effective_bandwidth,
                )
                alone = intra_time(fi, machine) + intra_time(fj, machine)
                if paired < alone:
                    chosen = (fj, point)
                    break
            if chosen is not None:
                fj, point = chosen
                elapsed += _pair_step(
                    fi,
                    fj,
                    point,
                    machine,
                    use_effective_bandwidth,
                    remaining,
                    completed,
                    trace,
                )
                continue
        # Solo: run the head ready task at maxp to completion.
        task = io_ready[0] if io_ready else cpu_ready[0]
        duration = task.seq_time / max_parallelism(task, machine)
        elapsed += duration
        del remaining[task.task_id]
        completed.add(task.task_id)
        if trace is not None:
            trace.append(RecursionStep("solo", duration, (task.name,)))
    return elapsed


def _pair_step(
    fi: Task,
    fj: Task,
    point,
    machine: MachineConfig,
    use_effective_bandwidth: bool,
    remaining,
    completed,
    trace,
) -> float:
    """Run a pair until the first completes; replace the survivor by
    its remainder ``f_ij`` (the recursion's ``S - {f_i,f_j} U {f_ij}``)."""
    rate_io, rate_cpu, __, __ = realizable_rates(
        point, machine, use_effective_bandwidth=use_effective_bandwidth
    )
    rate_i = rate_io if fi.task_id == point.task_io.task_id else rate_cpu
    rate_j = rate_cpu if fj.task_id == point.task_cpu.task_id else rate_io
    time_i = fi.seq_time / rate_i
    time_j = fj.seq_time / rate_j
    duration = min(time_i, time_j)
    if time_i <= time_j:
        finished, survivor, rate_survivor = fi, fj, rate_j
    else:
        finished, survivor, rate_survivor = fj, fi, rate_i
    del remaining[finished.task_id]
    completed.add(finished.task_id)
    leftover = survivor.seq_time - duration * rate_survivor
    if leftover > 1e-12:
        remaining[survivor.task_id] = dataclasses.replace(
            survivor, seq_time=leftover, io_count=survivor.io_rate * leftover
        )
    else:
        del remaining[survivor.task_id]
        completed.add(survivor.task_id)
    if trace is not None:
        trace.append(RecursionStep("pair", duration, (fi.name, fj.name)))
    return duration
