"""IO-CPU balance point calculation (Sections 2.3 and 2.5, Figure 4).

Running task ``f_i`` with parallelism ``x_i`` and ``f_j`` with ``x_j``
puts the system at the point ``(x_i + x_j, C_i x_i + C_j x_j)``.  Full
utilization of both processors and disks means::

    x_i + x_j           = N
    C_i x_i + C_j x_j   = B

whose solution (for ``C_i > C_j``) is::

    x_i = (B - C_j N) / (C_i - C_j)
    x_j = (C_i N - B) / (C_i - C_j)

Both are positive exactly when ``C_i > B/N > C_j`` — one task IO-bound
and the other CPU-bound.  "One IO-bound task plus one CPU-bound task can
always achieve maximum system resource utilization ... it is sufficient
to only run two tasks at a time."

**Effective bandwidth.**  Disks have a sequential and a random
bandwidth; interleaving two sequential streams forces seeks.  The paper
interpolates: with ``r`` the ratio of the smaller io stream to the
larger, ``B = Br + (1 - r)(Bs - Br)``.  (The memo prints the same
expression on both branches of its case split — an obvious typo; the
intended symmetric form uses the min/max ratio, which is what we
implement.)  Because ``B`` depends on ``(x_i, x_j)`` and vice versa, the
corrected balance equation can have several roots; we take the largest
root in ``(0, N)`` by a coarse downward scan followed by bisection (see
:func:`balance_point`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import InfeasibleBalanceError
from .classify import max_parallelism
from .task import IOPattern, Task

#: Bisection controls for refining the corrected balance point's root
#: (the bracket found by the downward scan in :func:`balance_point`).
_MAX_ITERATIONS = 200
_TOLERANCE = 1e-9

#: Memo of :func:`balance_point` solutions.  The solver is a pure
#: function of the two tasks' *(io_rate, io_pattern)* pairs and the
#: machine — ``seq_time`` never enters the balance equations — but
#: costs a ~100-evaluation scan-plus-bisection per call, and engines
#: consult policies with the same rate pairs over and over (including
#: freshly built "remaining work" partner tasks whose rates repeat
#: even though their ids do not).  Keying on the rates instead of the
#: task identities lets those synthetic tasks hit too.  Only the
#: solution floats are stored — each hit rebuilds the ``BalancePoint``
#: around the *caller's* task objects, so no references leak between
#: equal-but-distinct tasks.
_POINT_CACHE: dict[tuple, tuple | None] = {}
_POINT_CACHE_MISS = object()

#: When set, :func:`balance_point` keys its memo on the task objects
#: themselves — the seed-era behaviour, where every synthetic
#: remaining-work task missed.  Flip it via
#: :func:`reference_point_keying` only; identity keys (Task-led tuples)
#: and rate keys (float-led tuples) cannot collide in the shared dict.
_REFERENCE_KEYING = False


def clear_point_cache() -> None:
    """Empty the balance-point memo (benchmarks time cold starts)."""
    _POINT_CACHE.clear()


@contextmanager
def reference_point_keying():
    """Restore the seed-era identity cache keys (the benchmark *before* arm).

    The seed keyed the balance-point memo on the tasks themselves
    (``task_id`` enters the hash), so the remaining-work partner tasks
    the schedulers rebuild every round never hit.  The servebench's
    reference arm runs under this context so its timings reflect the
    genuine pre-optimization cache behaviour; the memo is cleared on
    entry and exit so neither arm warms the other.
    """
    global _REFERENCE_KEYING
    _POINT_CACHE.clear()
    _REFERENCE_KEYING = True
    try:
        yield
    finally:
        _REFERENCE_KEYING = False
        _POINT_CACHE.clear()


@dataclass(frozen=True)
class BalancePoint:
    """The IO-CPU balance point for a pair of tasks.

    Attributes:
        task_io / task_cpu: the IO-bound and CPU-bound tasks.
        x_io / x_cpu: their (continuous) degrees of parallelism.
        bandwidth: the effective total disk bandwidth ``B`` at the point.
    """

    task_io: Task
    task_cpu: Task
    x_io: float
    x_cpu: float
    bandwidth: float

    @property
    def total_parallelism(self) -> float:
        return self.x_io + self.x_cpu

    @property
    def total_io_rate(self) -> float:
        return self.task_io.io_rate * self.x_io + self.task_cpu.io_rate * self.x_cpu

    def utilization(self, machine: MachineConfig) -> tuple[float, float]:
        """(cpu utilization, io utilization) at this operating point."""
        cpu = self.total_parallelism / machine.processors
        io = self.total_io_rate / self.bandwidth if self.bandwidth else 0.0
        return cpu, io

    def parallelism_of(self, task: Task) -> float:
        """The degree of parallelism this point assigns to ``task``."""
        if task.task_id == self.task_io.task_id:
            return self.x_io
        if task.task_id == self.task_cpu.task_id:
            return self.x_cpu
        raise InfeasibleBalanceError(f"{task!r} is not part of this balance point")


def effective_bandwidth(
    machine: MachineConfig,
    io_rate_a: float,
    io_rate_b: float,
    pattern_a: IOPattern,
    pattern_b: IOPattern,
) -> float:
    """Total disk bandwidth ``B`` when two io streams interleave.

    ``io_rate_a`` / ``io_rate_b`` are the streams' aggregate io rates
    (``C * x``).  Model:

    * two sequential streams — the paper's interpolation
      ``B = Br + (1 - r)(Bs - Br)`` with ``r = min/max`` of the rates;
    * a sequential and a random stream — the sequential stream is
      broken up in proportion to the random stream's share ``1 - a``
      (``a`` = sequential share), giving ``B = Br + a (Bs - Br)``;
    * two random streams — ``B = Br`` (seeks everywhere already).
    """
    bs = machine.io_bandwidth
    br = machine.total_random_bandwidth
    seq_a = pattern_a == IOPattern.SEQUENTIAL
    seq_b = pattern_b == IOPattern.SEQUENTIAL
    if not seq_a and not seq_b:
        return br
    total = io_rate_a + io_rate_b
    if total <= 0:
        return bs
    if seq_a and seq_b:
        low, high = sorted((io_rate_a, io_rate_b))
        ratio = low / high if high > 0 else 0.0
        return br + (1.0 - ratio) * (bs - br)
    seq_share = (io_rate_a if seq_a else io_rate_b) / total
    return br + seq_share * (bs - br)


def effective_bandwidth_mix(
    machine: MachineConfig,
    sequential_rates: list[float],
    random_rate_total: float,
) -> float:
    """Generalize :func:`effective_bandwidth` to any number of streams.

    ``sequential_rates`` holds the per-stream io rates of the sequential
    streams; ``random_rate_total`` the combined rate of all random
    streams.  The model reduces exactly to the pairwise one for two
    streams: interleaving among sequential streams is measured by how
    much io volume competes with the largest stream
    (``interleave = (total_seq - max) / max``, clipped to [0, 1], which
    is ``min/max`` for two streams), and random io dilutes the
    sequential regime in proportion to its share.
    """
    bs = machine.io_bandwidth
    br = machine.total_random_bandwidth
    seq_rates = [r for r in sequential_rates if r > 0]
    seq_total = sum(seq_rates)
    total = seq_total + max(random_rate_total, 0.0)
    if total <= 0:
        return bs
    if not seq_rates:
        return br
    largest = max(seq_rates)
    interleave = min(1.0, (seq_total - largest) / largest) if largest > 0 else 0.0
    seq_regime = br + (1.0 - interleave) * (bs - br)
    seq_share = seq_total / total
    return br + seq_share * (seq_regime - br)


def balance_point(
    task_a: Task,
    task_b: Task,
    machine: MachineConfig,
    *,
    use_effective_bandwidth: bool = True,
) -> BalancePoint | None:
    """Solve for the IO-CPU balance point of two tasks.

    Returns None when no balance point exists (both tasks on the same
    side of the ``B/N`` diagonal, or equal io rates).  With
    ``use_effective_bandwidth=False`` the nominal ``B`` is used — the
    paper's uncorrected Section 2.3 calculation (the abl5 ablation).
    """
    if _REFERENCE_KEYING:
        key = (task_a, task_b, machine, use_effective_bandwidth)
    else:
        key = (
            task_a.io_rate,
            task_a.io_pattern,
            task_b.io_rate,
            task_b.io_pattern,
            machine,
            use_effective_bandwidth,
        )
    cached = _POINT_CACHE.get(key, _POINT_CACHE_MISS)
    if cached is not _POINT_CACHE_MISS:
        if cached is None:
            return None
        x_io, x_cpu, bandwidth = cached
        task_io, task_cpu = (
            (task_a, task_b) if task_a.io_rate > task_b.io_rate else (task_b, task_a)
        )
        return BalancePoint(
            task_io=task_io,
            task_cpu=task_cpu,
            x_io=x_io,
            x_cpu=x_cpu,
            bandwidth=bandwidth,
        )
    if task_a.io_rate == task_b.io_rate:
        _POINT_CACHE[key] = None
        return None
    task_io, task_cpu = (
        (task_a, task_b) if task_a.io_rate > task_b.io_rate else (task_b, task_a)
    )
    ci, cj = task_io.io_rate, task_cpu.io_rate
    n = machine.processors

    if not use_effective_bandwidth:
        bandwidth = machine.io_bandwidth
        x_io = (bandwidth - cj * n) / (ci - cj)
        x_cpu = (ci * n - bandwidth) / (ci - cj)
    else:
        # With the bandwidth correction, B itself depends on (x_i, x_j),
        # so the balance equation ``C_i x + C_j (N - x) = B(x)`` can
        # have several solutions (the interleaving dip creates a
        # pessimistic fixed point where both streams are equal).  The
        # operating point we want is the *largest* x_io whose io demand
        # the disks can sustain — that maximizes the progress rate of
        # the scarce io work while the CPU task absorbs the remaining
        # processors.  ``g`` is demand minus bandwidth; we take its
        # largest root in (0, N) by a downward scan plus bisection.
        def overload(x_io: float) -> float:
            x_cpu = n - x_io
            demand_io, demand_cpu = ci * x_io, cj * x_cpu
            b = effective_bandwidth(
                machine, demand_io, demand_cpu,
                task_io.io_pattern, task_cpu.io_pattern,
            )
            return demand_io + demand_cpu - b

        if overload(0.0) >= 0:
            _POINT_CACHE[key] = None
            return None  # even x_io = 0 oversubscribes: no CPU headroom
        if overload(float(n)) <= 0:
            _POINT_CACHE[key] = None
            return None  # never disk-limited: the pair is not balanced
        steps = 64
        hi = float(n)
        lo = 0.0
        for k in range(steps, -1, -1):
            x = n * k / steps
            if overload(x) <= 0:
                lo = x
                hi = n * (k + 1) / steps
                break
        for __ in range(_MAX_ITERATIONS):
            mid = (lo + hi) / 2.0
            if overload(mid) <= 0:
                lo = mid
            else:
                hi = mid
            if hi - lo < _TOLERANCE:
                break
        x_io = lo
        x_cpu = n - x_io
        bandwidth = effective_bandwidth(
            machine, ci * x_io, cj * x_cpu,
            task_io.io_pattern, task_cpu.io_pattern,
        )
    if x_io <= 0 or x_cpu <= 0:
        _POINT_CACHE[key] = None
        return None
    _POINT_CACHE[key] = (x_io, x_cpu, bandwidth)
    return BalancePoint(
        task_io=task_io,
        task_cpu=task_cpu,
        x_io=x_io,
        x_cpu=x_cpu,
        bandwidth=bandwidth,
    )


# ---------------------------------------------------------------------------
# elapsed-time estimates (Section 2.5)


def intra_time(task: Task, machine: MachineConfig) -> float:
    """``T_intra(f_i) = T_i / maxp(f_i)`` — run alone, fully parallel."""
    return task.seq_time / max_parallelism(task, machine)


def inter_time(
    task_a: Task,
    task_b: Task,
    machine: MachineConfig,
    *,
    point: BalancePoint | None = None,
    use_effective_bandwidth: bool = True,
) -> float:
    """``T_inter(f_i, f_j)`` — run the pair at the balance point.

    ``min(T_i/x_i, T_j/x_j) + T_ij / maxp_ij`` where ``T_ij`` is the
    remaining work of the longer task once the shorter finishes and
    ``maxp_ij`` its maximum parallelism running alone.  Returns
    ``inf`` when no balance point exists.
    """
    if point is None:
        point = balance_point(
            task_a, task_b, machine, use_effective_bandwidth=use_effective_bandwidth
        )
    if point is None:
        return float("inf")
    ti, tj = point.task_io, point.task_cpu
    xi, xj = point.x_io, point.x_cpu
    rate_i, rate_j = ti.seq_time / xi, tj.seq_time / xj
    if rate_i > rate_j:
        remaining_task, remaining = ti, ti.seq_time - tj.seq_time * xi / xj
    else:
        remaining_task, remaining = tj, tj.seq_time - ti.seq_time * xj / xi
    remaining = max(0.0, remaining)
    return min(rate_i, rate_j) + remaining / max_parallelism(remaining_task, machine)


def realizable_rates(
    point: BalancePoint,
    machine: MachineConfig,
    *,
    use_effective_bandwidth: bool = True,
    integral: bool = False,
) -> tuple[float, float, float, float]:
    """Progress rates of a pair under real resource semantics.

    The balance point's continuous degrees of parallelism are clamped
    to whole-machine reality (at least one slave each, optionally
    integral); if the clamped allocation oversubscribes the processors
    or disks, both tasks slow proportionally — exactly the execution
    engines' semantics.  Returns ``(rate_io, rate_cpu, x_io, x_cpu)``.
    """
    import math

    def clamp(x: float) -> float:
        x = max(1.0, min(float(machine.processors), x))
        if integral:
            return float(max(1, math.floor(x)))
        return x

    xi = clamp(point.x_io)
    xj = clamp(point.x_cpu)
    cpu_scale = min(1.0, machine.processors / (xi + xj))
    demand_io = point.task_io.io_rate * xi * cpu_scale
    demand_cpu = point.task_cpu.io_rate * xj * cpu_scale
    demand = demand_io + demand_cpu
    if use_effective_bandwidth:
        bandwidth = effective_bandwidth(
            machine,
            demand_io,
            demand_cpu,
            point.task_io.io_pattern,
            point.task_cpu.io_pattern,
        )
    else:
        bandwidth = machine.io_bandwidth
    io_scale = min(1.0, bandwidth / demand) if demand > 0 else 1.0
    return xi * cpu_scale * io_scale, xj * cpu_scale * io_scale, xi, xj


def inter_time_realizable(
    point: BalancePoint,
    machine: MachineConfig,
    *,
    use_effective_bandwidth: bool = True,
    integral: bool = False,
) -> float:
    """``T_inter`` evaluated at the *realizable* (clamped) allocation.

    The continuous :func:`inter_time` can flatter a pairing whose
    balance point sits below one whole slave; this variant prices the
    pairing exactly as the engines would run it, so the worthwhileness
    decision and the execution agree.
    """
    rate_i, rate_j, __, __ = realizable_rates(
        point,
        machine,
        use_effective_bandwidth=use_effective_bandwidth,
        integral=integral,
    )
    ti, tj = point.task_io, point.task_cpu
    time_i = ti.seq_time / rate_i
    time_j = tj.seq_time / rate_j
    if time_i > time_j:
        survivor, remaining = ti, ti.seq_time - time_j * rate_i
    else:
        survivor, remaining = tj, tj.seq_time - time_i * rate_j
    remaining = max(0.0, remaining)
    return min(time_i, time_j) + remaining / max_parallelism(survivor, machine)


def inter_worthwhile(
    task_a: Task,
    task_b: Task,
    machine: MachineConfig,
    *,
    use_effective_bandwidth: bool = True,
) -> bool:
    """Is pairing better than running the two tasks back to back?

    "We need to compare the estimated time of execution using
    inter-operation parallelism ... and the estimated time of execution
    using only intra-operation parallelism and decide whether
    inter-operation parallelism is worthwhile" (Section 2.3).
    """
    paired = inter_time(
        task_a, task_b, machine, use_effective_bandwidth=use_effective_bandwidth
    )
    alone = intra_time(task_a, machine) + intra_time(task_b, machine)
    return paired < alone
