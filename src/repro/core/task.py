"""The scheduler's task model.

A *task* is a plan fragment: "the maximum pipelineable subgraphs of a
sequential plan ... used as the units of parallel execution" (Section
2.1).  For scheduling, all that matters about a task is:

* ``seq_time`` — its sequential execution time ``T_i``;
* ``io_count`` — the number of io requests it issues, ``D_i``;
* its io access pattern (sequential scans vs unclustered-index scans);

from which the io rate ``C_i = D_i / T_i`` follows.  "Our algorithms
only depend on the i/o rate of each task and other details of the
operations in the tasks do not affect the performance" (Section 3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property

from ..errors import SchedulingError
from .ids import task_ids as _task_ids


class IOPattern(Enum):
    """Dominant io access pattern of a task."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    Attributes:
        name: a human-readable label.
        seq_time: sequential execution time ``T_i`` in seconds.
        io_count: total io requests ``D_i``.
        io_pattern: dominant access pattern when run sequentially.
        arrival_time: when the task becomes known to the scheduler
            (0.0 for a fixed task set; used by the continuous queues).
        depends_on: task ids that must complete before this task is
            *ready* (order-dependencies between fragments of one plan,
            Section 4: "it only needs to check if a task is ready
            before choosing it to execute").
        memory_bytes: working memory the task pins while running (hash
            tables, sort buffers).  The memory-aware scheduler refuses
            to co-run tasks whose combined footprint exceeds the
            machine's work memory — the constraint the paper defers to
            future work.
        task_id: unique id, auto-assigned.
        payload: optional reference to the underlying object (e.g. the
            plan fragment); ignored by the scheduler.
    """

    name: str
    seq_time: float
    io_count: float
    io_pattern: IOPattern = IOPattern.SEQUENTIAL
    arrival_time: float = 0.0
    depends_on: frozenset[int] = frozenset()
    memory_bytes: float = 0.0
    task_id: int = field(default_factory=_task_ids)
    payload: object | None = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.seq_time <= 0:
            raise SchedulingError(f"task {self.name!r}: seq_time must be positive")
        if self.io_count < 0:
            raise SchedulingError(f"task {self.name!r}: io_count must be >= 0")
        if self.arrival_time < 0:
            raise SchedulingError(f"task {self.name!r}: arrival_time must be >= 0")
        if self.memory_bytes < 0:
            raise SchedulingError(f"task {self.name!r}: memory_bytes must be >= 0")

    @cached_property
    def io_rate(self) -> float:
        """``C_i = D_i / T_i`` — io requests per second when sequential.

        Cached: the task is frozen and schedulers read the rate in every
        classification, sort key and balance equation.  The cache lives
        in ``__dict__`` and never enters eq/hash.
        """
        return self.io_count / self.seq_time

    def with_arrival(self, arrival_time: float) -> "Task":
        """A copy of this task arriving at ``arrival_time``."""
        return Task(
            name=self.name,
            seq_time=self.seq_time,
            io_count=self.io_count,
            io_pattern=self.io_pattern,
            arrival_time=arrival_time,
            depends_on=self.depends_on,
            memory_bytes=self.memory_bytes,
            payload=self.payload,
        )

    def with_dependencies(self, task_ids) -> "Task":
        """A copy of this task (same task_id) depending on ``task_ids``."""
        return dataclasses.replace(self, depends_on=frozenset(task_ids))

    def with_memory(self, memory_bytes: float) -> "Task":
        """A copy of this task (same task_id) pinning ``memory_bytes``."""
        return dataclasses.replace(self, memory_bytes=memory_bytes)

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, T={self.seq_time:.3g}s, "
            f"C={self.io_rate:.3g} ios/s, {self.io_pattern.value})"
        )


def make_task(
    name: str,
    *,
    io_rate: float,
    seq_time: float,
    io_pattern: IOPattern = IOPattern.SEQUENTIAL,
    arrival_time: float = 0.0,
) -> Task:
    """Build a task from its io *rate* instead of its io count.

    This is how the paper's experiments specify tasks ("we choose the
    i/o rate of the tasks ... randomly chosen in [5, 30)").
    """
    if io_rate < 0:
        raise SchedulingError("io_rate must be >= 0")
    return Task(
        name=name,
        seq_time=seq_time,
        io_count=io_rate * seq_time,
        io_pattern=io_pattern,
        arrival_time=arrival_time,
    )
