"""Scheduling core: the paper's adaptive inter-operation parallelism.

Tasks, IO/CPU-bound classification, the IO-CPU balance point, and the
three scheduling policies compared in Section 3.
"""

from .balance import (
    BalancePoint,
    balance_point,
    effective_bandwidth,
    effective_bandwidth_mix,
    inter_time,
    inter_worthwhile,
    intra_time,
)
from .classify import (
    classification_line,
    int_parallelism,
    is_cpu_bound,
    is_io_bound,
    max_parallelism,
    most_cpu_bound,
    most_io_bound,
    pattern_bandwidth,
    split_by_bound,
)
from .recursion import RecursionStep, elapsed_time_recursion
from .schedulers import (
    memory_fits,
    Action,
    Adjust,
    EngineState,
    InterWithAdjPolicy,
    InterWithoutAdjPolicy,
    IntraOnlyPolicy,
    SchedulingPolicy,
    Shed,
    Start,
    policy_by_name,
)
from .task import IOPattern, Task, make_task

__all__ = [
    "Action",
    "Adjust",
    "RecursionStep",
    "BalancePoint",
    "EngineState",
    "IOPattern",
    "InterWithAdjPolicy",
    "InterWithoutAdjPolicy",
    "IntraOnlyPolicy",
    "SchedulingPolicy",
    "Shed",
    "Start",
    "Task",
    "balance_point",
    "classification_line",
    "effective_bandwidth",
    "effective_bandwidth_mix",
    "int_parallelism",
    "inter_time",
    "inter_worthwhile",
    "intra_time",
    "is_cpu_bound",
    "is_io_bound",
    "elapsed_time_recursion",
    "make_task",
    "max_parallelism",
    "memory_fits",
    "most_cpu_bound",
    "most_io_bound",
    "pattern_bandwidth",
    "policy_by_name",
    "split_by_bound",
]
