"""The three scheduling algorithms of Section 3.

* **INTRA-ONLY** — "execute tasks one by one using intra-operation
  parallelism only."
* **INTER-WITHOUT-ADJ** — pair tasks at the IO-CPU balance point, but
  never adjust a running task: on a completion, "simply start the task
  that can get closest to maximum utilization point if executed using
  the currently available processors in parallel with the running task."
* **INTER-WITH-ADJ** — the paper's adaptive algorithm (Section 2.5):
  pair the most IO-bound with the most CPU-bound task at their balance
  point, and *dynamically adjust* the degrees of parallelism on every
  completion to stay at the balance point.

Policies are decision procedures driven by an execution engine (the
fluid simulator, the page-level micro simulator or the real
multiprocessing executor).  On every engine event the policy sees the
engine state and returns Start/Adjust actions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from ..config import MachineConfig
from ..errors import SchedulingError
from .balance import (
    BalancePoint,
    balance_point,
    inter_time,
    inter_time_realizable,
    intra_time,
)
from .classify import is_io_bound, max_parallelism
from .task import Task


@dataclass(frozen=True)
class Start:
    """Begin executing ``task`` with ``parallelism`` slaves."""

    task: Task
    parallelism: float


@dataclass(frozen=True)
class Adjust:
    """Change a *running* task's degree of parallelism."""

    task: Task
    parallelism: float


@dataclass(frozen=True)
class Shed:
    """Drop a *pending* task without running it (admission load-shedding).

    Emitted by the serving layer's admission gate when a submission is
    rejected; the engine removes the task from its pending set and
    records it as shed instead of completed.
    """

    task: Task


@dataclass(frozen=True)
class Cancel:
    """Cooperatively cancel a task, running or not (deadline enforcement).

    Unlike :class:`Shed` (pending only), a Cancel may target a running
    task: the engine stops its slaves at the next event boundary,
    releases disks and processors, and records the task as cancelled —
    never completed.  ``reason`` distinguishes deadline kills from
    transitive dependency cancels in the trace.
    """

    task: Task
    reason: str = "deadline"


Action = Start | Adjust | Shed | Cancel


class RunningTaskView(Protocol):
    """What a policy may observe about a running task."""

    task: Task
    parallelism: float

    @property
    def remaining_seq_time(self) -> float:
        """Estimated sequential-seconds of work left."""
        ...


class EngineState(Protocol):
    """What a policy may observe about the engine."""

    machine: MachineConfig

    #: Ids of tasks that already completed (both engines expose this;
    #: the admission gate uses it to count in-flight fragments).
    completed_ids: set[int]

    @property
    def now(self) -> float: ...

    @property
    def running(self) -> Sequence[RunningTaskView]: ...

    @property
    def pending(self) -> Sequence[Task]: ...


class SchedulingPolicy:
    """Base class.  Subclasses override :meth:`decide`."""

    name = "abstract"

    def decide(self, state: EngineState) -> list[Action]:
        """Called at start, on every arrival and on every completion."""
        raise NotImplementedError

    def next_wakeup(self, now: float) -> float | None:
        """Earliest future time the policy wants to be consulted even
        though no completion or arrival is due (``None`` = none).

        Lets a policy hold deferred work — e.g. the serving gate's
        retry backoffs — without the engine declaring a deadlock while
        nothing is running.
        """
        return None

    def reset(self) -> None:
        """Clear internal state before a fresh run."""


def memory_fits(machine: MachineConfig, *tasks: Task) -> bool:
    """Do these tasks' working sets fit in the machine's work memory?

    "We cannot run two hashjoins in parallel unless there is enough
    memory for both hash tables" — the constraint the paper leaves to
    future work, honoured by the memory-aware policies.
    """
    return sum(t.memory_bytes for t in tasks) <= machine.work_memory_bytes


def _clamp(x: float, machine: MachineConfig, *, integral: bool) -> float:
    """Clamp a degree of parallelism into [1, N], optionally integral."""
    x = max(1.0, min(float(machine.processors), x))
    if integral:
        return float(max(1, math.floor(x)))
    return x


class IntraOnlyPolicy(SchedulingPolicy):
    """One task at a time at its maximum intra-operation parallelism."""

    name = "INTRA-ONLY"

    def __init__(self, *, integral: bool = False) -> None:
        self.integral = integral

    def decide(self, state: EngineState) -> list[Action]:
        if state.running or not state.pending:
            return []
        task = state.pending[0]
        x = _clamp(max_parallelism(task, state.machine), state.machine, integral=self.integral)
        return [Start(task, x)]


class InterWithAdjPolicy(SchedulingPolicy):
    """The paper's adaptive scheduling algorithm (Section 2.5).

    Args:
        integral: round degrees of parallelism down to integers (the
            real system must; the paper's algebra is continuous).
        use_effective_bandwidth: apply the sequential-vs-random
            bandwidth correction when computing balance points.
        pairing: ``"extreme"`` pairs most-IO-bound with most-CPU-bound
            (the paper); ``"fifo"`` pairs arrival-order heads
            (ablation); ``"sjf"`` pairs shortest jobs first — the
            paper's multi-user heuristic "to minimize the response time
            of individual queries instead of the total elapsed time".
        degradation_aware: recompute balance points against the
            engine's *measured* bandwidth (``state.effective_machine``)
            instead of the static ``MachineConfig.B``, and re-balance a
            running pair when the measured bandwidth drifts — e.g. a
            disk degraded by fault injection shifts the balance point
            toward the CPU-bound task.
        rebalance_threshold: relative change in measured bandwidth that
            triggers a re-balance of a running pair (hysteresis against
            adjustment churn).
    """

    name = "INTER-WITH-ADJ"

    def __init__(
        self,
        *,
        integral: bool = False,
        use_effective_bandwidth: bool = True,
        pairing: str = "extreme",
        degradation_aware: bool = False,
        rebalance_threshold: float = 0.05,
    ) -> None:
        if pairing not in ("extreme", "fifo", "sjf"):
            raise SchedulingError(f"unknown pairing strategy: {pairing!r}")
        if rebalance_threshold < 0:
            raise SchedulingError("rebalance_threshold must be >= 0")
        self.integral = integral
        self.use_effective_bandwidth = use_effective_bandwidth
        self.pairing = pairing
        self.degradation_aware = degradation_aware
        self.rebalance_threshold = rebalance_threshold
        self._solo_until_done: set[int] = set()
        self._last_b: float | None = None

    def reset(self) -> None:
        self._solo_until_done.clear()
        self._last_b = None

    # -- queue views -------------------------------------------------------------

    def _queues(self, state: EngineState) -> tuple[list[Task], list[Task]]:
        io_q = [t for t in state.pending if is_io_bound(t, state.machine)]
        cpu_q = [t for t in state.pending if not is_io_bound(t, state.machine)]
        if self.pairing == "extreme":
            io_q.sort(key=lambda t: -t.io_rate)
            cpu_q.sort(key=lambda t: t.io_rate)
        elif self.pairing == "sjf":
            io_q.sort(key=lambda t: t.seq_time)
            cpu_q.sort(key=lambda t: t.seq_time)
        return io_q, cpu_q

    def _pair_actions(
        self,
        state: EngineState,
        candidate: Task,
        partner: RunningTaskView | None,
    ) -> list[Action] | None:
        """Try to run ``candidate`` against ``partner`` (or a fresh pair).

        Returns None when pairing is not worthwhile.
        """
        machine = state.machine
        if partner is None:
            return None
        if not memory_fits(machine, candidate, partner.task):
            return None
        point = balance_point(
            candidate,
            partner.task,
            machine,
            use_effective_bandwidth=self.use_effective_bandwidth,
        )
        if point is None:
            return None
        # Worthwhileness: compare against intra-only for the pair, using
        # the partner's remaining work and the *realizable* allocation
        # (clamped to whole-machine reality), so the decision prices the
        # pairing exactly as the engine will run it.
        remaining_partner = Task(
            name=partner.task.name,
            seq_time=max(partner.remaining_seq_time, 1e-12),
            io_count=partner.task.io_rate * max(partner.remaining_seq_time, 1e-12),
            io_pattern=partner.task.io_pattern,
        )
        remaining_point = balance_point(
            candidate,
            remaining_partner,
            machine,
            use_effective_bandwidth=self.use_effective_bandwidth,
        )
        if remaining_point is None:
            return None
        paired = inter_time_realizable(
            remaining_point,
            machine,
            use_effective_bandwidth=self.use_effective_bandwidth,
            integral=self.integral,
        )
        alone = intra_time(candidate, machine) + intra_time(remaining_partner, machine)
        if paired >= alone:
            return None
        x_new = _clamp(point.parallelism_of(candidate), machine, integral=self.integral)
        x_partner = _clamp(
            point.parallelism_of(partner.task), machine, integral=self.integral
        )
        actions: list[Action] = []
        if abs(x_partner - partner.parallelism) > 1e-9:
            actions.append(Adjust(partner.task, x_partner))
        actions.append(Start(candidate, x_new))
        return actions

    def _fresh_pair(self, state: EngineState) -> list[Action] | None:
        """Start a new IO/CPU pair from the queues (steps 2-4).

        Candidates are tried in heuristic order; a pair must fit in
        work memory and be worthwhile.
        """
        machine = state.machine
        io_q, cpu_q = self._queues(state)
        if not io_q or not cpu_q:
            return None
        for fi in io_q:
            for fj in cpu_q:
                if not memory_fits(machine, fi, fj):
                    continue
                point = balance_point(
                    fi,
                    fj,
                    machine,
                    use_effective_bandwidth=self.use_effective_bandwidth,
                )
                if point is None:
                    continue
                paired = inter_time_realizable(
                    point,
                    machine,
                    use_effective_bandwidth=self.use_effective_bandwidth,
                    integral=self.integral,
                )
                alone = intra_time(fi, machine) + intra_time(fj, machine)
                if paired < alone:
                    return [
                        Start(fi, _clamp(point.x_io, machine, integral=self.integral)),
                        Start(fj, _clamp(point.x_cpu, machine, integral=self.integral)),
                    ]
            break  # most-IO-bound head found no partner: run it solo
        # Step 4 "otherwise": execute f_i alone to completion, then f_j.
        fi = io_q[0]
        self._solo_until_done.add(fi.task_id)
        x = _clamp(max_parallelism(fi, machine), machine, integral=self.integral)
        return [Start(fi, x)]

    def decide(self, state: EngineState) -> list[Action]:
        if self.degradation_aware:
            eff = getattr(state, "effective_machine", None)
            if (
                eff is not None
                and eff.io_bandwidth != state.machine.io_bandwidth
            ):
                state = _MachineOverrideView(state, eff)
        actions = self._decide(state)
        if actions:
            self._last_b = state.machine.io_bandwidth
        return actions

    def _rebalance(self, state: EngineState) -> list[Action]:
        """Re-seat a running pair on the *measured* balance point."""
        machine = state.machine
        b = machine.io_bandwidth
        if (
            self._last_b is not None
            and self._last_b > 0
            and abs(b - self._last_b) / self._last_b <= self.rebalance_threshold
        ):
            return []
        views = list(state.running)
        remnants = []
        for view in views:
            rem = max(view.remaining_seq_time, 1e-12)
            remnants.append(
                Task(
                    name=view.task.name,
                    seq_time=rem,
                    io_count=view.task.io_rate * rem,
                    io_pattern=view.task.io_pattern,
                )
            )
        point = balance_point(
            remnants[0],
            remnants[1],
            machine,
            use_effective_bandwidth=self.use_effective_bandwidth,
        )
        if point is None:
            return []
        actions: list[Action] = []
        for view, remnant in zip(views, remnants):
            x = _clamp(point.parallelism_of(remnant), machine, integral=self.integral)
            if abs(x - view.parallelism) > 1e-9:
                actions.append(Adjust(view.task, x))
        # Remember the bandwidth we balanced for even when the clamped
        # allocation came out unchanged, so hysteresis still applies.
        self._last_b = b
        return actions

    def _decide(self, state: EngineState) -> list[Action]:
        machine = state.machine
        if len(state.running) >= 2:
            if self.degradation_aware and len(state.running) == 2:
                return self._rebalance(state)
            return []
        if len(state.running) == 1:
            partner = state.running[0]
            if partner.task.task_id in self._solo_until_done:
                return []
            io_q, cpu_q = self._queues(state)
            opposite = cpu_q if is_io_bound(partner.task, machine) else io_q
            for candidate in opposite:
                actions = self._pair_actions(state, candidate, partner)
                if actions is not None:
                    return actions
            # Step 8 flavour: nothing to pair with — give the lone task
            # its full intra-operation parallelism (this is the dynamic
            # adjustment INTER-WITHOUT-ADJ lacks).
            x = _clamp(
                max_parallelism(partner.task, machine), machine, integral=self.integral
            )
            if abs(x - partner.parallelism) > 1e-9:
                return [Adjust(partner.task, x)]
            return []
        # Nothing running.
        if not state.pending:
            return []
        self._solo_until_done.clear()
        actions = self._fresh_pair(state)
        if actions is not None:
            return actions
        # One-sided queue (step 8): intra-operation parallelism only.
        io_q, cpu_q = self._queues(state)
        queue = io_q or cpu_q
        task = queue[0]
        x = _clamp(max_parallelism(task, machine), machine, integral=self.integral)
        return [Start(task, x)]


class _MachineOverrideView:
    """EngineState proxy whose ``machine`` is the measured one."""

    def __init__(self, state: EngineState, machine: MachineConfig) -> None:
        self._state = state
        self.machine = machine

    def __getattr__(self, name: str):
        return getattr(self._state, name)


class InterWithoutAdjPolicy(SchedulingPolicy):
    """INTER-WITHOUT-ADJ: pair at the balance point, never adjust.

    "When one task finishes first, no dynamic parallelism adjustment is
    performed.  The master backend will simply start the task that can
    get closest to maximum utilization point if executed using the
    currently available processors in parallel with the running task."
    """

    name = "INTER-WITHOUT-ADJ"

    def __init__(
        self,
        *,
        integral: bool = False,
        use_effective_bandwidth: bool = True,
    ) -> None:
        self.integral = integral
        self.use_effective_bandwidth = use_effective_bandwidth

    def decide(self, state: EngineState) -> list[Action]:
        machine = state.machine
        if not state.pending:
            return []
        if not state.running:
            # Initial pairing: identical to the adaptive algorithm.
            io_q = sorted(
                (t for t in state.pending if is_io_bound(t, machine)),
                key=lambda t: -t.io_rate,
            )
            cpu_q = sorted(
                (t for t in state.pending if not is_io_bound(t, machine)),
                key=lambda t: t.io_rate,
            )
            if io_q and cpu_q and memory_fits(machine, io_q[0], cpu_q[0]):
                point = balance_point(
                    io_q[0],
                    cpu_q[0],
                    machine,
                    use_effective_bandwidth=self.use_effective_bandwidth,
                )
                if point is not None and min(point.x_io, point.x_cpu) >= 1.0:
                    return [
                        Start(io_q[0], _clamp(point.x_io, machine, integral=self.integral)),
                        Start(cpu_q[0], _clamp(point.x_cpu, machine, integral=self.integral)),
                    ]
            queue = io_q or cpu_q
            task = queue[0]
            x = _clamp(max_parallelism(task, machine), machine, integral=self.integral)
            return [Start(task, x)]
        if len(state.running) >= 2:
            return []
        # One task running at a frozen parallelism: fill the gap with
        # the pending task closest to the maximum utilization point.
        partner = state.running[0]
        available = machine.processors - partner.parallelism
        if available < 1.0 - 1e-9:
            return []
        best: tuple[float, Task, float] | None = None
        for task in state.pending:
            if not memory_fits(machine, task, partner.task):
                continue
            x = min(available, max_parallelism(task, machine))
            x = _clamp(x, machine, integral=self.integral)
            if x > available + 1e-9:
                continue
            distance = self._distance_to_corner(machine, partner, task, x)
            if best is None or distance < best[0]:
                best = (distance, task, x)
        if best is None:
            return []
        __, task, x = best
        return [Start(task, x)]

    @staticmethod
    def _distance_to_corner(
        machine: MachineConfig,
        partner: RunningTaskView,
        task: Task,
        x: float,
    ) -> float:
        """Normalized distance from the operating point to (N, B)."""
        total_x = partner.parallelism + x
        total_io = partner.task.io_rate * partner.parallelism + task.io_rate * x
        dx = (machine.processors - total_x) / machine.processors
        dio = (machine.io_bandwidth - total_io) / machine.io_bandwidth
        # Overshooting the bandwidth is as bad as undershooting.
        return math.hypot(dx, abs(dio))


def policy_by_name(name: str, **kwargs) -> SchedulingPolicy:
    """Construct one of the three policies from its paper name."""
    table = {
        "INTRA-ONLY": IntraOnlyPolicy,
        "INTER-WITHOUT-ADJ": InterWithoutAdjPolicy,
        "INTER-WITH-ADJ": InterWithAdjPolicy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise SchedulingError(f"unknown policy: {name!r}") from None
    return cls(**kwargs)
