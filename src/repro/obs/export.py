"""Trace exporters: Chrome trace-event JSON, flat JSON, text summary.

The Chrome export targets the trace-event format that Perfetto and
``chrome://tracing`` load directly: a JSON array of records with
``ph``/``ts``/``pid``/``tid`` fields, one thread lane per tracer track,
with ``M``-phase metadata naming the lanes.  Timestamps are simulator
virtual time scaled to microseconds, so lane positions in Perfetto read
as simulated seconds — and because the engines are deterministic per
seed, the exported bytes are too.

Exports are pure functions of the tracer (plus an optional metrics
registry for the flat/summary forms); nothing here touches wall clock.
"""

from __future__ import annotations

import json

from ..bench.report import format_table
from .metrics import MetricsRegistry
from .tracer import TraceEvent, Tracer

#: Process id used for every lane; one simulated machine = one process.
_PID = 1
#: Virtual seconds -> trace-event microseconds.
_US = 1_000_000.0


def _track_ids(events) -> dict[str, int]:
    """Track name -> thread id, assigned in first-appearance order."""
    ids: dict[str, int] = {}
    for event in events:
        if event.track not in ids:
            ids[event.track] = len(ids) + 1
    return ids


def chrome_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as Chrome trace-event records.

    Spans become complete events (``ph: "X"``), instants become
    ``ph: "i"`` with thread scope, counter samples become ``ph: "C"``.
    Each distinct track gets its own ``tid`` plus a ``thread_name``
    metadata record, so Perfetto labels the lanes.
    """
    ids = _track_ids(tracer.events)
    out: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro simulator"},
        }
    ]
    for track, tid in ids.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": track},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "ts": 0,
                "args": {"sort_index": tid},
            }
        )
    for event in tracer.events:
        tid = ids[event.track]
        record: dict = {
            "name": event.name,
            "cat": event.cat,
            "pid": _PID,
            "tid": tid,
            "ts": event.start * _US,
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = event.dur * _US
        elif event.kind == "counter":
            record["ph"] = "C"
            record["args"] = {"value": event.value}
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.args:
            record.setdefault("args", {}).update(event.args)
        out.append(record)
    return out


def chrome_json(tracer: Tracer) -> str:
    """The Chrome trace-event export as a deterministic JSON string."""
    return json.dumps(chrome_events(tracer), indent=1, sort_keys=True) + "\n"


def flat_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as plain dicts (no Chrome framing)."""
    out = []
    for event in tracer.events:
        record: dict = {
            "kind": event.kind,
            "name": event.name,
            "cat": event.cat,
            "track": event.track,
            "t": event.start,
        }
        if event.kind == "span":
            record["dur"] = event.dur
        if event.kind == "counter":
            record["value"] = event.value
        if event.args:
            record["args"] = dict(event.args)
        out.append(record)
    return out


def flat_json(
    tracer: Tracer, metrics: MetricsRegistry | None = None
) -> str:
    """Events plus the metrics digest as one deterministic JSON string."""
    payload: dict = {"events": flat_events(tracer)}
    if metrics is not None:
        payload["metrics"] = metrics.as_dict()
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _span_bounds(events: list[TraceEvent]) -> tuple[float, float]:
    """(first start, last end) over a category's events."""
    first = min(e.start for e in events)
    last = max(e.start + e.dur for e in events)
    return first, last


def summary_table(tracer: Tracer) -> str:
    """Per-category event counts and time bounds as a printable table."""
    rows = []
    for cat, events in sorted(tracer.by_category().items()):
        spans = [e for e in events if e.kind == "span"]
        first, last = _span_bounds(events)
        rows.append(
            [
                cat,
                str(len(events)),
                str(len(spans)),
                f"{first:.4f}",
                f"{last:.4f}",
                f"{sum(e.dur for e in spans):.4f}",
            ]
        )
    return format_table(
        ["category", "events", "spans", "first (s)", "last (s)", "span s"],
        rows,
        title=f"trace summary — {len(tracer.events)} events, "
        f"{len(tracer.tracks())} tracks",
    )
