"""Unified observability: span tracing, metrics, Chrome-trace export.

``repro.obs`` is the one place run telemetry lives:

* :class:`Tracer` records spans, instants and counter samples stamped
  with **simulator virtual time** — traces are byte-stable per seed.
  The falsy :class:`NullTracer` is the zero-overhead default; engines
  normalize ``tracer or None`` so disabled tracing costs one branch at
  cold emission sites and nothing on the per-page hot path.
* :class:`MetricsRegistry` holds counters, gauges, streaming-percentile
  histograms and timestamped series under dotted names, consolidating
  what used to live on ``OptimizedQuery.stats``, the breaker timeline
  and the service digests.  :func:`percentile` is the repository's one
  percentile implementation.
* :mod:`repro.obs.export` renders a tracer as Chrome trace-event JSON
  (Perfetto-loadable, one thread lane per track), flat JSON or a text
  summary table.
* :mod:`repro.obs.harness` drives an optimizer + service + micro-engine
  slice end to end with one tracer (``python -m repro trace``).
"""

from __future__ import annotations

from .export import (
    chrome_events,
    chrome_json,
    flat_events,
    flat_json,
    summary_table,
)
from .harness import TraceReport, run_trace, smoke_lines, validate_chrome
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    percentile,
)
from .tracer import NULL_TRACER, NullTracer, SpanHandle, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Series",
    "SpanHandle",
    "TraceEvent",
    "TraceReport",
    "Tracer",
    "chrome_events",
    "chrome_json",
    "flat_events",
    "flat_json",
    "percentile",
    "run_trace",
    "smoke_lines",
    "summary_table",
    "validate_chrome",
]
