"""The unified metrics registry: counters, gauges, histograms, series.

One registry holds every metric a run produces — admission counters,
queue-wait and response-time histograms, optimizer cache counters,
breaker-state series — under dotted names (``service.completed``,
``optimizer.candidates``).  Everything is plain deterministic
arithmetic: a registry populated from a seeded run digests to the same
bytes every time.

:func:`percentile` lives here as the *one* percentile implementation in
the repository; ``repro.service.metrics`` re-exports it for backward
compatibility and the stress harness imports it from here.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from ..bench.report import format_table
from ..errors import ObsError


def _interpolate(ordered: list[float], p: float) -> float:
    """Linear interpolation over an already-sorted, non-empty list."""
    if not 0.0 <= p <= 100.0:
        raise ObsError("percentile must be in [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def percentile(values: list[float], p: float) -> float:
    """The ``p``-th percentile by linear interpolation (deterministic).

    Matches numpy's default ``linear`` method but avoids float-platform
    drift by staying in pure python.  ``p`` is in ``[0, 100]``.  This is
    the single percentile implementation in the repository; everything
    else re-exports it.
    """
    if not values:
        return 0.0
    return _interpolate(sorted(values), p)


def percentiles(values: list[float], ps: tuple[float, ...]) -> tuple[float, ...]:
    """Several percentiles of one distribution with a single sort.

    Equivalent to ``tuple(percentile(values, p) for p in ps)`` but sorts
    ``values`` once instead of once per quantile — the serving metrics
    tables ask for p50/p95/p99 of every tenant's latency distribution.
    """
    if not values:
        return tuple(0.0 for _ in ps)
    ordered = sorted(values)
    return tuple(_interpolate(ordered, p) for p in ps)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value


@dataclass
class Histogram:
    """A value distribution with streaming percentile queries.

    Observations are kept in sorted order (inserted via ``bisect``), so
    a percentile query is an O(1) interpolation at any point mid-stream
    — no terminal sort pass — while staying exact: the digest is the
    full distribution, not an approximation sketch.
    """

    name: str
    _sorted: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        insort(self._sorted, value)

    def observe_many(self, values: list[float]) -> None:
        """Fold a batch of observations into the distribution.

        Extend-then-sort produces exactly the same sorted list as
        repeated :meth:`observe` (``insort``) calls, but one batch costs
        one O(n log n) pass instead of n binary-insert shifts — the
        service layer folds a whole run's latencies in one call.
        """
        if not values:
            return
        self._sorted.extend(values)
        self._sorted.sort()

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._sorted)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self._sorted)

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        if not self._sorted:
            return 0.0
        return self.total / len(self._sorted)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile of the observations so far."""
        if not self._sorted:
            return 0.0
        return _interpolate(self._sorted, p)

    @property
    def p50(self) -> float:
        """Median observation."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile observation."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile observation."""
        return self.percentile(99.0)


@dataclass
class Series:
    """A timestamped sequence of samples (e.g. breaker states).

    Values may be numbers or short strings; the series is append-only
    and ordered by insertion, which for simulator feeds means ordered
    by virtual time.
    """

    name: str
    points: list[tuple[float, object]] = field(default_factory=list)

    def append(self, t: float, value: object) -> None:
        """Record ``value`` at virtual time ``t``."""
        self.points.append((t, value))

    @property
    def last(self) -> object | None:
        """The most recent value (``None`` when empty)."""
        return self.points[-1][1] if self.points else None


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors.

    Metric kinds are fixed at first registration: asking for
    ``counter("x")`` after ``gauge("x")`` raises, which catches
    cross-subsystem name collisions early.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        """Get or create the series ``name``."""
        return self._get(name, Series)

    def __contains__(self, name: str) -> bool:
        """Is a metric registered under ``name``?"""
        return name in self._metrics

    def __len__(self) -> int:
        """Number of registered metrics."""
        return len(self._metrics)

    def names(self) -> list[str]:
        """Registered metric names in registration order."""
        return list(self._metrics)

    def as_dict(self) -> dict:
        """A JSON-ready digest of every metric, sorted by name.

        Histograms digest to summary statistics (count/mean/p50/p95/p99)
        rather than raw observations; series keep their full point list.
        """
        digest: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                digest["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                digest["gauges"][name] = metric.value
            elif isinstance(metric, Histogram):
                digest["histograms"][name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50,
                    "p95": metric.p95,
                    "p99": metric.p99,
                }
            elif isinstance(metric, Series):
                digest["series"][name] = [
                    [t, value] for t, value in metric.points
                ]
        return digest

    def to_table(self) -> str:
        """All metrics as one printable table (sorted by name)."""
        rows = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                rows.append([name, "counter", str(metric.value)])
            elif isinstance(metric, Gauge):
                rows.append([name, "gauge", f"{metric.value:g}"])
            elif isinstance(metric, Histogram):
                rows.append(
                    [
                        name,
                        "histogram",
                        f"n={metric.count} mean={metric.mean:.4f} "
                        f"p50={metric.p50:.4f} p95={metric.p95:.4f} "
                        f"p99={metric.p99:.4f}",
                    ]
                )
            elif isinstance(metric, Series):
                rows.append([name, "series", f"{len(metric.points)} points"])
        return format_table(["metric", "kind", "value"], rows, title="metrics")
