"""The span tracer: virtual-time event recording for whole runs.

A :class:`Tracer` collects :class:`TraceEvent` records — spans with a
start and duration, point-in-time instants, and counter samples — all
stamped with **simulator virtual time**, never wall clock.  Because the
engines are deterministic per seed, so is every timestamp, which makes
a trace a byte-stable artifact: two runs of the same seed export the
same Chrome-trace JSON down to the last float.

The default everywhere is the :class:`NullTracer`, which is *falsy* and
drops every call.  Instrumentation sites across the engines guard with
a single truthiness/None check (``if tracer is not None:``), so a
disabled tracer costs one branch at event-emission sites that are
already off the inner per-page loop — the frozen trace/plan corpora and
the perf floors are unaffected.

Tracks name the timeline a record belongs to (``task:io0``,
``tenant:olap``, ``disk:2``, ``optimizer`` …); the Chrome exporter maps
each distinct track to its own thread lane, so Perfetto shows one lane
per task/tenant/disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ObsError


@dataclass(slots=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        kind: ``"span"`` (has a duration), ``"instant"`` (a point in
            time) or ``"counter"`` (a sampled value).
        name: event label (shown on the slice in Perfetto).
        cat: category tag (``task``, ``adjust``, ``admission``,
            ``fault``, ``optimizer`` …) used for filtering and the
            summary table.
        track: timeline this event belongs to; one Chrome thread lane
            per distinct track.
        start: virtual-time start, seconds.
        dur: duration in virtual seconds (spans only; 0 otherwise).
        value: sampled value (counters only; 0 otherwise).
        args: optional extra payload exported into the Chrome ``args``.
    """

    kind: str
    name: str
    cat: str
    track: str
    start: float
    dur: float = 0.0
    value: float = 0.0
    args: dict | None = None


class SpanHandle:
    """An open span returned by :meth:`Tracer.begin`.

    Call :meth:`end` with the closing virtual time to record the
    completed span.  Ending twice raises; never ending simply records
    nothing (the span is dropped, not flushed half-open).
    """

    __slots__ = ("_tracer", "name", "cat", "track", "start", "args", "_closed")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        track: str,
        start: float,
        args: dict | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.args = args
        self._closed = False

    def end(self, t: float, *, args: dict | None = None) -> None:
        """Close the span at virtual time ``t`` and record it."""
        if self._closed:
            raise ObsError(f"span {self.name!r} ended twice")
        self._closed = True
        merged = self.args
        if args:
            merged = {**(self.args or {}), **args}
        self._tracer.span(
            self.name,
            t=self.start,
            dur=t - self.start,
            track=self.track,
            cat=self.cat,
            args=merged,
        )


class Tracer:
    """Collects trace events for one (or several back-to-back) runs.

    The tracer never mutates engine state and never reads wall clock:
    callers stamp every record with the simulated time they already
    hold, so enabling tracing cannot perturb a schedule — the
    instrumentation tests replay the frozen trace corpus with a live
    tracer attached and assert byte-identical results.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __bool__(self) -> bool:
        """A live tracer is truthy (the NullTracer is not)."""
        return True

    def __len__(self) -> int:
        """Number of recorded events."""
        return len(self.events)

    # -- recording ---------------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        t: float,
        dur: float,
        track: str,
        cat: str = "sim",
        args: dict | None = None,
    ) -> None:
        """Record a completed span ``[t, t + dur]`` on ``track``."""
        if dur < 0:
            raise ObsError(f"span {name!r} has negative duration {dur!r}")
        self.events.append(
            TraceEvent(
                kind="span",
                name=name,
                cat=cat,
                track=track,
                start=t,
                dur=dur,
                args=args,
            )
        )

    def begin(
        self,
        name: str,
        *,
        t: float,
        track: str,
        cat: str = "sim",
        args: dict | None = None,
    ) -> SpanHandle:
        """Open a span at ``t``; record it when the handle is ended."""
        return SpanHandle(self, name, cat, track, t, args)

    def instant(
        self,
        name: str,
        *,
        t: float,
        track: str,
        cat: str = "sim",
        args: dict | None = None,
    ) -> None:
        """Record a point-in-time event at ``t`` on ``track``."""
        self.events.append(
            TraceEvent(
                kind="instant",
                name=name,
                cat=cat,
                track=track,
                start=t,
                args=args,
            )
        )

    def counter(
        self,
        name: str,
        *,
        t: float,
        value: float,
        track: str = "counters",
        cat: str = "counter",
    ) -> None:
        """Record one sample of a time-varying quantity."""
        self.events.append(
            TraceEvent(
                kind="counter",
                name=name,
                cat=cat,
                track=track,
                start=t,
                value=value,
            )
        )

    # -- views -------------------------------------------------------------------

    def by_category(self) -> dict[str, list[TraceEvent]]:
        """Events grouped by category, insertion order preserved."""
        grouped: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.cat, []).append(event)
        return grouped

    def tracks(self) -> list[str]:
        """Distinct track names in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track)
        return list(seen)

    def clear(self) -> None:
        """Drop every recorded event."""
        self.events.clear()


class NullTracer:
    """The zero-overhead disabled tracer: falsy, drops every call.

    Engines treat ``tracer or None`` as their stored handle, so passing
    a NullTracer is exactly equivalent to passing ``None`` — the frozen
    corpora replay unchanged either way, which the obs test suite
    asserts.
    """

    enabled = False
    #: Always-empty event view, so read-only consumers need no check.
    events: tuple = ()

    def __bool__(self) -> bool:
        """The NullTracer is falsy: ``tracer or None`` discards it."""
        return False

    def __len__(self) -> int:
        """Always zero events."""
        return 0

    def span(self, name: str, **kwargs) -> None:
        """Drop the span."""

    def begin(self, name: str, **kwargs) -> "NullTracer":
        """Return self; the matching :meth:`end` is also a no-op."""
        return self

    def end(self, t: float, **kwargs) -> None:
        """Drop the span end."""

    def instant(self, name: str, **kwargs) -> None:
        """Drop the instant."""

    def counter(self, name: str, **kwargs) -> None:
        """Drop the counter sample."""

    def by_category(self) -> dict:
        """Always empty."""
        return {}

    def tracks(self) -> list:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""


#: Shared default instance; safe because the NullTracer has no state.
NULL_TRACER = NullTracer()
