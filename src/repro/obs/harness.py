"""The end-to-end trace harness behind ``python -m repro trace``.

One :func:`run_trace` call drives a representative slice of the whole
system — phase-1 optimization, a short serving-mode arrival stream and
a (optionally faulted) micro-engine run — with a single live
:class:`~repro.obs.Tracer` and :class:`~repro.obs.MetricsRegistry`
threaded through every layer.  The result is one unified trace whose
Chrome export opens in Perfetto with a lane per task, tenant, disk and
subsystem.

Every event is stamped with simulator virtual time, so the trace is a
pure function of the seed: two runs export byte-identical Chrome JSON,
which the determinism tests pin down.  The only non-deterministic
quantity anywhere is the ``optimizer.phase1_seconds`` wall-clock
histogram in the *metrics* registry — it never reaches the trace or
the smoke lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .export import chrome_events, chrome_json, summary_table
from .metrics import MetricsRegistry
from .tracer import Tracer

# The engine/service/optimizer imports happen inside run_trace():
# repro.service.metrics imports repro.obs for the shared percentile, so
# a module-level import here would close an import cycle through the
# package __init__.

#: Chrome trace-event fields every exported record must carry.
_REQUIRED_FIELDS = ("ph", "ts", "pid", "tid")


@dataclass
class TraceReport:
    """Everything one :func:`run_trace` call produced.

    Attributes:
        seed: the seed the run was keyed on.
        tracer: the populated tracer (all three phases).
        metrics: the populated unified registry.
        optimizer_stats: the optimized query's cache-counter snapshot.
        service_offered: submissions offered to the admission gate.
        service_completed: submissions that ran to completion.
        service_rejected: submissions shed for good.
        micro_pages: pages the micro engine processed.
        micro_elapsed: simulated seconds of the micro run.
        faulted: whether the micro phase ran under the mixed fault
            preset.
    """

    seed: int
    tracer: Tracer
    metrics: MetricsRegistry
    optimizer_stats: dict
    service_offered: int
    service_completed: int
    service_rejected: int
    micro_pages: int
    micro_elapsed: float
    faulted: bool

    def chrome_json(self) -> str:
        """The unified Chrome trace-event export (byte-stable per seed)."""
        return chrome_json(self.tracer)

    def summary(self) -> str:
        """The per-category trace summary table."""
        return summary_table(self.tracer)


def run_trace(
    seed: int = 0,
    *,
    n_tasks: int = 4,
    max_pages: int = 200,
    n_submissions: int = 10,
    n_relations: int = 4,
    faulted: bool = True,
) -> TraceReport:
    """Trace one optimizer + service + micro-engine slice of the system.

    All three phases share one tracer and one metrics registry; every
    timestamp is simulator virtual time, so the report's Chrome export
    is byte-identical across runs of the same arguments.

    Args:
        seed: keys the join workload, the arrival stream and the
            micro-engine page scatter.
        n_tasks: micro-engine workload size.
        max_pages: pages cap per micro-engine task.
        n_submissions: serving-mode stream length.
        n_relations: total relations of the optimized star join.
        faulted: run the micro phase under the deterministic ``mixed``
            fault preset so the trace shows degradation, stall and
            crash instants.
    """
    from ..bench.optbench import bench_workload
    from ..config import paper_machine
    from ..core.schedulers import InterWithAdjPolicy
    from ..faults.breaker import CircuitBreaker
    from ..faults.retry import RetryPolicy
    from ..faults.schedule import preset_schedule
    from ..optimizer import OptimizerMode, TwoPhaseOptimizer
    from ..service.arrivals import mixed_tenant_config, poisson_stream
    from ..service.server import QueryService
    from ..sim.micro import MicroSimulator
    from ..workloads import WorkloadConfig, WorkloadKind
    from ..workloads.mixes import generate_specs

    tracer = Tracer()
    metrics = MetricsRegistry()

    # Phase 1: optimize a seeded star join; the tracer gets one
    # deterministic instant, the registry the counter deltas and the
    # (wall-clock) phase-1 latency histogram.
    schema = bench_workload(n_relations, topology="star", seed=seed)
    optimizer = TwoPhaseOptimizer(
        schema.catalog, tracer=tracer, metrics=metrics
    )
    optimized = optimizer.optimize(schema.query, mode=OptimizerMode.BUSHY_PAR)

    # Phase 2: a short open-system stream through the admission gate,
    # sized to provoke some queueing (small queues, tight in-flight
    # budget, retry + breaker wired into the same tracer).
    machine = paper_machine()
    service = QueryService(
        machine,
        queue_capacity=2,
        max_inflight_fragments=2,
        # Full default jitter: submission ids are stream-scoped now, so
        # the jitter hash is repeatable within one process.
        retry=RetryPolicy(max_retries=2, base_delay=1.0, seed=seed),
        breaker=CircuitBreaker(tracer=tracer),
        tracer=tracer,
        metrics=metrics,
    )
    stream = poisson_stream(
        rate=0.5,
        seed=seed,
        config=mixed_tenant_config(n_submissions),
        machine=machine,
    )
    service_result = service.run(stream)
    overall = service_result.metrics.overall

    # Phase 3: a seeded RANDOM mix on the page-level engine, under the
    # mixed fault preset when asked, so the trace carries task spans,
    # adjustment rounds and fault instants.
    specs = generate_specs(
        WorkloadKind.RANDOM,
        seed=seed,
        machine=machine,
        config=WorkloadConfig(n_tasks=n_tasks, max_pages=max_pages),
    )
    faults = preset_schedule("mixed", horizon=6.0) if faulted else None
    micro = MicroSimulator(
        machine, seed=seed, faults=faults, fault_seed=seed, tracer=tracer
    )
    micro_result = micro.run(specs, InterWithAdjPolicy(integral=True))
    metrics.counter("sim.pages").inc(int(micro_result.io_served))
    metrics.counter("sim.adjustments").inc(micro_result.adjustments)
    metrics.gauge("sim.elapsed").set(micro_result.elapsed)
    if micro_result.fault_log is not None:
        metrics.counter("faults.crashes").inc(micro_result.fault_log.crashes)

    return TraceReport(
        seed=seed,
        tracer=tracer,
        metrics=metrics,
        optimizer_stats=dict(optimized.stats or {}),
        service_offered=overall.offered,
        service_completed=overall.completed,
        service_rejected=overall.rejected,
        micro_pages=int(micro_result.io_served),
        micro_elapsed=micro_result.elapsed,
        faulted=faulted,
    )


def validate_chrome(text: str) -> str | None:
    """Check a Chrome trace-event export; ``None`` if valid, else why.

    Valid means: a JSON array of objects, each carrying the ``ph``,
    ``ts``, ``pid`` and ``tid`` fields Perfetto requires.
    """
    try:
        records = json.loads(text)
    except json.JSONDecodeError as error:
        return f"not JSON: {error}"
    if not isinstance(records, list) or not records:
        return "not a non-empty JSON array"
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            return f"record {i} is not an object"
        for fields in _REQUIRED_FIELDS:
            if fields not in record:
                return f"record {i} lacks {fields!r}"
    return None


def smoke_lines(*, seed: int = 0) -> list[str]:
    """Byte-stable output of one tiny traced run.

    Reports only simulated quantities (event counts, counter deltas,
    simulated elapsed), never wall-clock, so two runs print the same
    bytes — the CLI smoke contract.  Appends ``smoke failed: ...``
    lines on any violated invariant.
    """
    report = run_trace(seed)
    stats = report.optimizer_stats
    lines = [
        f"smoke: trace {len(report.tracer)} events across "
        f"{len(report.tracer.tracks())} tracks, seed {seed}",
        f"smoke: optimizer candidates={stats.get('candidates', 0)} "
        f"pruned={stats.get('pruned', 0)} costed={stats.get('costed', 0)}",
        f"smoke: service {report.service_completed}/"
        f"{report.service_offered} completed, "
        f"{report.service_rejected} rejected",
        f"smoke: micro {report.micro_pages} pages, "
        f"simulated {report.micro_elapsed:.4f}s"
        + (" (faulted)" if report.faulted else ""),
    ]
    if len(report.tracer) == 0:
        lines.append("smoke failed: the trace is empty")
    if report.service_completed == 0:
        lines.append("smoke failed: no submissions completed")
    problem = validate_chrome(report.chrome_json())
    if problem is not None:
        lines.append(f"smoke failed: chrome export invalid ({problem})")
    spans = [e for e in report.tracer.events if e.kind == "span"]
    if not spans:
        lines.append("smoke failed: no spans recorded")
    n_chrome = len(chrome_events(report.tracer))
    if n_chrome <= len(report.tracer):
        lines.append(
            "smoke failed: chrome export lost events "
            f"({n_chrome} records for {len(report.tracer)} events)"
        )
    return lines
