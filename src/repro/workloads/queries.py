"""Multi-join query workloads for the Section-4 optimizer experiments.

Builds chain- and star-join schemas with globally unique column names
(the optimizer's requirement), populated with controllable sizes and
join selectivities, plus the :class:`~repro.optimizer.query.Query`
objects over them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog import Catalog, Schema
from ..errors import ConfigError
from ..optimizer import JoinPredicate, Query
from ..plans.costing import analyze_table
from ..storage import BTreeIndex, DiskArray, HeapFile


@dataclass(frozen=True)
class JoinSchema:
    """A populated multi-relation schema plus its canonical query."""

    catalog: Catalog
    array: DiskArray
    query: Query
    relation_names: tuple[str, ...]


def _populate(
    catalog: Catalog,
    array: DiskArray,
    name: str,
    int_columns: list[str],
    *,
    n_rows: int,
    key_range: int,
    payload: int,
    rng,
    index_column: str | None = None,
) -> None:
    schema = Schema.of(*[(c, "int4") for c in int_columns], (f"{name}_pad", "text"))
    heap = HeapFile(schema, array, name=name)
    for __ in range(n_rows):
        values = tuple(int(rng.integers(0, key_range)) for __ in int_columns)
        heap.insert(values + ("x" * payload,))
    catalog.create_table(name, schema, heap)
    if index_column is not None:
        index = BTreeIndex()
        position = schema.index_of(index_column)
        for rid, row in heap.scan():
            index.insert(row[position], rid)
        catalog.add_index(name, f"{name}_{index_column}_idx", index_column, index)
    analyze_table(catalog, name)


def chain_join(
    n_relations: int = 4,
    *,
    rows_per_relation: int = 400,
    key_range: int = 120,
    payload: int = 40,
    seed: int = 0,
    array: DiskArray | None = None,
) -> JoinSchema:
    """A chain query: s1 ⋈ s2 ⋈ ... ⋈ sk on adjacent link columns.

    Relation ``si`` has columns ``(si_l, si_r, si_pad)``; the chain
    joins ``si.si_r = s(i+1).s(i+1)_l``.
    """
    if n_relations < 2:
        raise ConfigError("a chain needs at least 2 relations")
    from ..config import paper_machine

    array = array or DiskArray(paper_machine())
    catalog = Catalog()
    rng = np.random.default_rng(seed)
    names = [f"s{i}" for i in range(1, n_relations + 1)]
    for i, name in enumerate(names):
        size = rows_per_relation * (1 + i % 3)  # varied sizes
        _populate(
            catalog,
            array,
            name,
            [f"{name}_l", f"{name}_r"],
            n_rows=size,
            key_range=key_range,
            payload=payload,
            rng=rng,
            index_column=f"{name}_l" if i == 0 else None,
        )
    joins = [
        JoinPredicate(names[i], f"{names[i]}_r", names[i + 1], f"{names[i + 1]}_l")
        for i in range(n_relations - 1)
    ]
    query = Query(relations=list(names), joins=joins)
    return JoinSchema(
        catalog=catalog, array=array, query=query, relation_names=tuple(names)
    )


def star_join(
    n_dimensions: int = 3,
    *,
    fact_rows: int = 1200,
    dimension_rows: int = 150,
    key_range: int = 100,
    payload: int = 40,
    seed: int = 0,
    array: DiskArray | None = None,
) -> JoinSchema:
    """A star query: one fact table joined to k dimension tables."""
    if n_dimensions < 1:
        raise ConfigError("a star needs at least 1 dimension")
    from ..config import paper_machine

    array = array or DiskArray(paper_machine())
    catalog = Catalog()
    rng = np.random.default_rng(seed)
    fact_columns = [f"fact_k{i}" for i in range(1, n_dimensions + 1)]
    _populate(
        catalog,
        array,
        "fact",
        fact_columns,
        n_rows=fact_rows,
        key_range=key_range,
        payload=payload,
        rng=rng,
    )
    names = ["fact"]
    joins = []
    for i in range(1, n_dimensions + 1):
        name = f"dim{i}"
        _populate(
            catalog,
            array,
            name,
            [f"{name}_k", f"{name}_v"],
            n_rows=dimension_rows,
            key_range=key_range,
            payload=payload,
            rng=rng,
        )
        names.append(name)
        joins.append(JoinPredicate("fact", f"fact_k{i}", name, f"{name}_k"))
    query = Query(relations=names, joins=joins)
    return JoinSchema(
        catalog=catalog, array=array, query=query, relation_names=tuple(names)
    )
