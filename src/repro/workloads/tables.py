"""Concrete benchmark relations on the real storage layer.

The paper's experiment schema: "All relations in the workloads have the
same schema: r1(a = int4, b = text), where attribute b is a
variable-size string and is used to adjust the tuple sizes."

* ``r_min`` — b is NULL in every tuple, so tuples are minimal and a
  page holds many of them: the most CPU-bound task (~5 ios/s).
* ``r_max`` — b is sized so each 8K page holds exactly one tuple: the
  most IO-bound task (~70 ios/s in the paper's measurement).

:func:`build_rate_relation` interpolates: it chooses a payload size so
a sequential scan of the relation has a target io rate under a given
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog import Catalog, Schema
from ..config import MachineConfig, paper_machine
from ..errors import ConfigError
from ..plans.costing import CostModel
from ..storage import BTreeIndex, DiskArray, HeapFile
from ..storage.page import SlottedPage

#: The experiment schema (Section 3).
R1_SCHEMA = Schema.of(("a", "int4"), ("b", "text"))

#: Encoded overhead of one row: int4 (5) + text length prefix (4).
_ROW_OVERHEAD = 9


@dataclass(frozen=True)
class BuiltRelation:
    """A populated relation plus its unclustered index on ``a``."""

    name: str
    heap: HeapFile
    index: BTreeIndex
    payload_size: int


def build_relation(
    catalog: Catalog,
    array: DiskArray,
    name: str,
    *,
    n_rows: int,
    payload_size: int | None,
    seed: int = 0,
    key_range: int | None = None,
    with_index: bool = True,
) -> BuiltRelation:
    """Create, populate, index and ANALYZE one ``r(a, b)`` relation.

    Args:
        payload_size: bytes of ``b`` per row; None stores NULL (r_min).
        key_range: ``a`` is drawn uniformly from [0, key_range); default
            ``n_rows`` (mostly-unique keys).
        with_index: build the unclustered B+tree on ``a``.
    """
    if n_rows < 1:
        raise ConfigError("n_rows must be >= 1")
    rng = np.random.default_rng(seed)
    key_range = key_range or n_rows
    heap = HeapFile(R1_SCHEMA, array, name=name)
    payload = None if payload_size is None else "x" * payload_size
    for __ in range(n_rows):
        heap.insert((int(rng.integers(0, key_range)), payload))
    catalog.create_table(name, R1_SCHEMA, heap)
    index = BTreeIndex()
    if with_index:
        for rid, row in heap.scan():
            index.insert(row[0], rid)
        catalog.add_index(name, f"{name}_a_idx", "a", index)
    from ..plans.costing import analyze_table

    analyze_table(catalog, name)
    return BuiltRelation(
        name=name, heap=heap, index=index, payload_size=payload_size or 0
    )


def build_r_min(
    catalog: Catalog, array: DiskArray, *, n_rows: int = 5000, seed: int = 0
) -> BuiltRelation:
    """The most CPU-bound relation: ``b`` NULL in every tuple."""
    return build_relation(
        catalog, array, "r_min", n_rows=n_rows, payload_size=None, seed=seed
    )


def build_r_max(
    catalog: Catalog,
    array: DiskArray,
    *,
    n_rows: int = 500,
    seed: int = 0,
    machine: MachineConfig | None = None,
) -> BuiltRelation:
    """The most IO-bound relation: one tuple per 8K page."""
    machine = machine or paper_machine()
    payload = one_tuple_per_page_payload(machine.page_size)
    return build_relation(
        catalog, array, "r_max", n_rows=n_rows, payload_size=payload, seed=seed
    )


def one_tuple_per_page_payload(page_size: int) -> int:
    """Payload size of ``b`` so exactly one tuple fits per page."""
    capacity = SlottedPage.max_record_size(page_size)
    # Two rows fit iff each row <= capacity - (row + slot); make one
    # row larger than half the capacity (minus slot overhead margin).
    return capacity // 2 + 1 - _ROW_OVERHEAD


def payload_for_io_rate(
    io_rate: float,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
) -> int | None:
    """Payload size whose sequential scan has ``io_rate`` ios/second.

    Under the cost model, a page with ``k`` tuples costs
    ``io_service + cpu_page + k * cpu_tuple`` seconds, so the io rate is
    ``1 / that``.  Solving for ``k`` and converting to a payload size
    gives the paper's tuple-size knob.  Returns None (NULL payload)
    when even minimal tuples cannot make the scan that CPU-bound.
    """
    machine = machine or paper_machine()
    cost = cost_model or CostModel()
    if io_rate <= 0:
        raise ConfigError("io_rate must be positive")
    service = 1.0 / machine.disk.almost_seq_ios_per_sec
    page_budget = 1.0 / io_rate - service - cost.cpu_page_time
    if page_budget < 0:
        raise ConfigError(f"io rate {io_rate} is not achievable by a scan")
    tuples_per_page = page_budget / cost.cpu_tuple_time
    if tuples_per_page < 1:
        tuples_per_page = 1.0
    usable = SlottedPage.max_record_size(machine.page_size)
    row_bytes = usable / tuples_per_page
    payload = int(row_bytes) - _ROW_OVERHEAD - 4  # 4: slot entry
    if payload <= 0:
        return None
    return min(payload, one_tuple_per_page_payload(machine.page_size))
