"""The Section-3 benchmark workloads.

"We will run the following four workloads against each of the three
algorithms: all IO-bound tasks, all CPU-bound tasks, extremely IO-bound
tasks with extremely CPU-bound tasks, and random-mix tasks.  Each
workload consists of ten tasks. ... The length of each task is randomly
chosen between scanning 100 tuples and scanning 10,000 tuples."

The paper draws io rates from (table in Section 3):

==================  =========================
CPU-bound           uniform in [5, 30)
IO-bound            uniform in (30, 60]
extremely CPU-bound uniform in [5, 15]
extremely IO-bound  uniform in [60, 70]
==================  =========================

**Calibration note.**  The paper measures a task's io rate with a
strictly sequential single-stream scan (97 ios/s service), while its
bandwidth ``B = 240`` is in almost-sequential units (60 ios/s per
disk).  Our engines calibrate both in almost-sequential units for
consistency, so sequential-scan io rates are physically capped at 60:
the *extremely IO-bound* band becomes [52, 58] instead of the paper's
[60, 70], and the IO-bound band (30, 55].  Both keep the same position
relative to the B/N = 30 classification threshold, which is all the
scheduling theory consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..config import MachineConfig, paper_machine
from ..core.task import IOPattern, Task
from ..errors import ConfigError
from ..sim.micro import ScanSpec, spec_for_io_rate


class WorkloadKind(Enum):
    """The four Figure-7 workload mixes."""

    ALL_CPU = "AllCPU"
    ALL_IO = "AllIO"
    EXTREME = "Extreme"
    RANDOM = "Random"


@dataclass(frozen=True)
class RateBands:
    """Io-rate bands for the generator, in ios/second.

    Defaults are the paper's bands rescaled into almost-sequential
    units (see the module calibration note).
    """

    cpu_low: float = 5.0
    cpu_high: float = 30.0
    io_low: float = 30.0
    io_high: float = 55.0
    extreme_cpu_low: float = 5.0
    extreme_cpu_high: float = 15.0
    extreme_io_low: float = 52.0
    extreme_io_high: float = 58.0

    def paper_table(self) -> list[tuple[str, str]]:
        """Rows of the Section-3 io-rate table (for the tbl1 bench)."""
        return [
            ("CPU-bound", f"randomly chosen in [{self.cpu_low:g}, {self.cpu_high:g})"),
            ("IO-bound", f"randomly chosen in ({self.io_low:g}, {self.io_high:g}]"),
            (
                "Extremely CPU-bound",
                f"randomly chosen in [{self.extreme_cpu_low:g}, {self.extreme_cpu_high:g}]",
            ),
            (
                "Extremely IO-bound",
                f"randomly chosen in [{self.extreme_io_low:g}, {self.extreme_io_high:g}]",
            ),
        ]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the Section-3 generator.

    Attributes:
        n_tasks: tasks per workload (the paper uses 10).
        min_pages / max_pages: task length range in pages.  The paper
            scans 100-10,000 *tuples*; with the paper's one-tuple-per-
            page r_max that is 100-10,000 pages, which we keep.
        bands: io-rate bands.
        index_scan_fraction: fraction of IO-bound tasks realized as
            unclustered-index scans (random io) rather than large-tuple
            sequential scans; only rates within the random-bandwidth
            cap can be index scans.
    """

    n_tasks: int = 10
    min_pages: int = 100
    max_pages: int = 10_000
    bands: RateBands = RateBands()
    index_scan_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ConfigError("n_tasks must be >= 1")
        if not 1 <= self.min_pages <= self.max_pages:
            raise ConfigError("need 1 <= min_pages <= max_pages")
        if not 0.0 <= self.index_scan_fraction <= 1.0:
            raise ConfigError("index_scan_fraction must be in [0, 1]")


def generate_specs(
    kind: WorkloadKind,
    *,
    seed: int,
    machine: MachineConfig | None = None,
    config: WorkloadConfig | None = None,
) -> list[ScanSpec]:
    """Generate one Figure-7 workload as micro-engine scan specs."""
    machine = machine or paper_machine()
    config = config or WorkloadConfig()
    bands = config.bands
    rng = np.random.default_rng(seed)
    specs: list[ScanSpec] = []
    for i in range(config.n_tasks):
        n_pages = int(rng.integers(config.min_pages, config.max_pages + 1))
        if kind == WorkloadKind.ALL_CPU:
            rate = float(rng.uniform(bands.cpu_low, bands.cpu_high))
        elif kind == WorkloadKind.ALL_IO:
            rate = float(rng.uniform(bands.io_low, bands.io_high))
        elif kind == WorkloadKind.EXTREME:
            if i % 2 == 0:
                rate = float(rng.uniform(bands.extreme_io_low, bands.extreme_io_high))
            else:
                rate = float(rng.uniform(bands.extreme_cpu_low, bands.extreme_cpu_high))
        elif kind == WorkloadKind.RANDOM:
            rate = float(rng.uniform(bands.extreme_cpu_low, bands.extreme_io_high))
        else:  # pragma: no cover - exhaustiveness guard
            raise ConfigError(f"unknown workload kind: {kind!r}")
        # IO-bound tasks within the random-bandwidth cap may be index
        # scans ("all the tasks will be either a sequential scan or an
        # index scan"); faster ones must be big-tuple sequential scans.
        random_cap = machine.disk.random_ios_per_sec - 1.0
        use_index = (
            rate > machine.bound_threshold
            and rate < random_cap
            and rng.random() < config.index_scan_fraction
        )
        pattern = IOPattern.RANDOM if use_index else IOPattern.SEQUENTIAL
        partitioning = "range" if use_index else "page"
        specs.append(
            spec_for_io_rate(
                f"{kind.value.lower()}-{i}",
                machine,
                io_rate=rate,
                n_pages=n_pages,
                pattern=pattern,
                partitioning=partitioning,
            )
        )
    return specs


def generate_tasks(
    kind: WorkloadKind,
    *,
    seed: int,
    machine: MachineConfig | None = None,
    config: WorkloadConfig | None = None,
) -> list[Task]:
    """Generate one workload as abstract scheduler tasks (fluid engine)."""
    machine = machine or paper_machine()
    return [
        spec.to_task(machine)
        for spec in generate_specs(kind, seed=seed, machine=machine, config=config)
    ]


def poisson_arrivals(
    tasks: list[Task],
    *,
    rate_per_second: float,
    seed: int,
) -> list[Task]:
    """Turn a fixed task set into a Poisson arrival stream.

    Used by the multi-user queue experiments: tasks keep their
    profiles but arrive at exponential inter-arrival times.
    """
    if rate_per_second <= 0:
        raise ConfigError("rate_per_second must be positive")
    rng = np.random.default_rng(seed)
    clock = 0.0
    arrived = []
    for task in tasks:
        clock += float(rng.exponential(1.0 / rate_per_second))
        arrived.append(task.with_arrival(clock))
    return arrived
