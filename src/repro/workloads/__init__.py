"""Benchmark workload generators (Section 3 and Section 4)."""

from .mixes import (
    RateBands,
    WorkloadConfig,
    WorkloadKind,
    generate_specs,
    generate_tasks,
    poisson_arrivals,
)
from .queries import JoinSchema, chain_join, star_join
from .tables import (
    R1_SCHEMA,
    BuiltRelation,
    build_r_max,
    build_r_min,
    build_relation,
    one_tuple_per_page_payload,
    payload_for_io_rate,
)

__all__ = [
    "BuiltRelation",
    "JoinSchema",
    "R1_SCHEMA",
    "RateBands",
    "WorkloadConfig",
    "WorkloadKind",
    "build_r_max",
    "build_r_min",
    "build_relation",
    "chain_join",
    "generate_specs",
    "generate_tasks",
    "one_tuple_per_page_payload",
    "payload_for_io_rate",
    "poisson_arrivals",
    "star_join",
]
