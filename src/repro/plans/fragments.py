"""Plan fragmentation: cutting plans into schedulable tasks.

"First, the sequential plans are decomposed into plan fragments, i.e., a
group of operations that do not contain any blocking edges. ... In other
words plan fragments are the maximum pipelineable subgraphs of a
sequential plan.  Plan fragments are used as the units of parallel
execution and are also called tasks" (Section 2.1).

:func:`fragment_plan` walks a plan tree, cuts it at blocking edges and
returns a :class:`FragmentGraph` — fragments plus the precedence
dependencies induced by the blocking edges.  With a
:class:`~repro.plans.costing.PlanEstimate` attached, each fragment
carries the ``(T_i, D_i, C_i)`` profile the scheduler consumes
(:meth:`Fragment.to_task`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.task import IOPattern, Task
from ..errors import PlanError
from .costing import PlanEstimate, RANDOM, SEQUENTIAL
from .nodes import PlanNode


@dataclass
class Fragment:
    """A maximal pipelineable subgraph of a plan.

    Attributes:
        fragment_id: index within its FragmentGraph.
        root: the topmost plan node of the fragment (the one whose
            output crosses a blocking edge or is the plan's result).
        nodes: every plan node in the fragment.
        depends_on: fragment ids that must complete before this one can
            start (the child sides of this fragment's blocking edges).
    """

    fragment_id: int
    root: PlanNode
    nodes: list[PlanNode] = field(default_factory=list)
    depends_on: set[int] = field(default_factory=set)
    # Filled in by profile():
    seq_time: float = 0.0
    io_count: float = 0.0
    io_pattern: IOPattern = IOPattern.SEQUENTIAL
    memory_bytes: float = 0.0

    @property
    def io_rate(self) -> float:
        return self.io_count / self.seq_time if self.seq_time > 0 else 0.0

    def to_task(self, *, name: str | None = None) -> Task:
        """The scheduler-level task for this fragment."""
        if self.seq_time <= 0:
            raise PlanError(
                f"fragment {self.fragment_id} has no cost profile; "
                "fragment the plan with a PlanEstimate"
            )
        return Task(
            name=name or f"frag{self.fragment_id}({self.root.label()})",
            seq_time=self.seq_time,
            io_count=self.io_count,
            io_pattern=self.io_pattern,
            memory_bytes=self.memory_bytes,
            payload=self,
        )

    def __repr__(self) -> str:
        return (
            f"Fragment({self.fragment_id}, root={self.root.label()}, "
            f"{len(self.nodes)} nodes, deps={sorted(self.depends_on)})"
        )


@dataclass
class FragmentGraph:
    """The fragments of one plan plus their precedence DAG."""

    plan: PlanNode
    fragments: list[Fragment]

    def __len__(self) -> int:
        return len(self.fragments)

    @property
    def root_fragment(self) -> Fragment:
        """The fragment containing the plan root (always fragment 0)."""
        return self.fragments[0]

    def fragment_of(self, node: PlanNode) -> Fragment:
        """The fragment containing ``node``."""
        for fragment in self.fragments:
            if any(n.node_id == node.node_id for n in fragment.nodes):
                return fragment
        raise PlanError(f"node {node!r} not in any fragment")

    def ready(self, completed: set[int]) -> list[Fragment]:
        """Fragments whose dependencies are all in ``completed``."""
        return [
            f
            for f in self.fragments
            if f.fragment_id not in completed and f.depends_on <= completed
        ]

    def topological_order(self) -> list[Fragment]:
        """Dependencies-first ordering (raises on cycles, which cannot
        occur for tree plans but is checked anyway)."""
        order: list[Fragment] = []
        completed: set[int] = set()
        remaining = {f.fragment_id for f in self.fragments}
        while remaining:
            batch = [f for f in self.ready(completed) if f.fragment_id in remaining]
            if not batch:
                raise PlanError("fragment dependency cycle")
            for fragment in batch:
                order.append(fragment)
                completed.add(fragment.fragment_id)
                remaining.discard(fragment.fragment_id)
        return order

    def signature(self) -> tuple:
        """Canonical scheduling signature of this fragment set.

        The tuple captures everything the scheduling simulation can
        observe about the fragments — each fragment's ``(T, D, pattern,
        memory)`` profile plus the dependency shape over fragment
        indices — and nothing else (no node ids, no task ids, no plan
        object identity).  Fragment ids are assigned by a deterministic
        tree traversal, so two structurally equivalent plans produce
        equal signatures, which is what lets ``parcost`` share one
        simulation across equivalent subplans (the optimizer fast
        path).  Fragments must be profiled (built with a PlanEstimate).
        """
        for fragment in self.fragments:
            if fragment.seq_time <= 0:
                raise PlanError(
                    f"fragment {fragment.fragment_id} has no cost profile; "
                    "signatures need a PlanEstimate-backed fragmentation"
                )
        return tuple(
            (
                f.seq_time,
                f.io_count,
                f.io_pattern.value,
                f.memory_bytes,
                tuple(sorted(f.depends_on)),
            )
            for f in self.fragments
        )

    def to_tasks(self) -> list[Task]:
        """Scheduler tasks for every fragment, wired with the
        order-dependencies induced by the blocking edges."""
        tasks = [f.to_task() for f in self.fragments]
        by_fragment = {f.fragment_id: t.task_id for f, t in zip(self.fragments, tasks)}
        return [
            task.with_dependencies(by_fragment[d] for d in fragment.depends_on)
            for fragment, task in zip(self.fragments, tasks)
        ]


def fragment_plan(
    plan: PlanNode, estimate: PlanEstimate | None = None
) -> FragmentGraph:
    """Cut ``plan`` at its blocking edges.

    With ``estimate`` supplied, each fragment gets its ``(T_i, D_i)``
    profile: the sum of its nodes' CPU and io costs, io pattern by
    majority of io volume.
    """
    fragments: list[Fragment] = []

    def new_fragment(root: PlanNode) -> Fragment:
        fragment = Fragment(fragment_id=len(fragments), root=root)
        fragments.append(fragment)
        return fragment

    def assign(node: PlanNode, fragment: Fragment) -> None:
        fragment.nodes.append(node)
        blocking = set(node.blocking_children())
        for i, child in enumerate(node.children):
            if i in blocking:
                child_fragment = new_fragment(child)
                fragment.depends_on.add(child_fragment.fragment_id)
                assign(child, child_fragment)
            else:
                assign(child, fragment)

    assign(plan, new_fragment(plan))
    if estimate is not None:
        for fragment in fragments:
            _profile(fragment, estimate)
    return FragmentGraph(plan=plan, fragments=fragments)


def _profile(fragment: Fragment, estimate: PlanEstimate) -> None:
    """Fill in (T, D, pattern) from per-node estimates."""
    cpu = 0.0
    io_time = 0.0
    ios = 0.0
    seq_ios = 0.0
    random_ios = 0.0
    memory = 0.0
    for node in fragment.nodes:
        node_estimate = estimate.node(node)
        cpu += node_estimate.cpu_time
        io_time += estimate.io_time(node_estimate)
        ios += node_estimate.ios
        memory += node_estimate.memory_bytes
        if node_estimate.io_pattern == SEQUENTIAL:
            seq_ios += node_estimate.ios
        elif node_estimate.io_pattern == RANDOM:
            random_ios += node_estimate.ios
    # Working memory (hash tables, sort buffers) is charged to the
    # fragment containing the consuming node — the table must be
    # resident while that fragment runs.
    fragment.seq_time = max(cpu + io_time, 1e-9)
    fragment.io_count = ios
    fragment.memory_bytes = memory
    fragment.io_pattern = (
        IOPattern.RANDOM if random_ios > seq_ios else IOPattern.SEQUENTIAL
    )
