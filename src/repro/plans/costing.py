"""Sequential cost estimation for plan trees.

"Using the cost estimation methods in conventional query optimization,
we can estimate the sequential execution time of each task i, T_i.  We
can also estimate the number of i/o's of each task i, D_i.  Thus, we can
estimate the i/o rate of each task i as C_i = D_i / T_i" (Section 4).

This module is that conventional layer.  :func:`estimate_plan` walks a
plan tree and produces, per node, its output cardinality, the io
requests it issues itself, the io access pattern and its CPU time.  The
fragmenter aggregates those into per-task ``(T_i, D_i, C_i)`` profiles;
``seqcost`` sums them into the classic scalar plan cost.

The CPU constants default to values backsolved from the paper's
measurements (r_min sequential scans run at ~5 ios/second, r_max at
~70 ios/second on disks with a 97 ios/second sequential rate); the
calibration bench re-derives them against the real executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log2

from ..catalog.catalog import Catalog
from ..catalog.statistics import ColumnStats, RelationStats
from ..config import MachineConfig, paper_machine
from ..errors import OptimizerError
from ..executor.expressions import (
    Expression,
    column_bounds,
    conjuncts,
    equality_columns,
)
from . import nodes as pn

#: IO access patterns a plan node can exhibit.
SEQUENTIAL = "sequential"
RANDOM = "random"


@dataclass(frozen=True)
class CostModel:
    """CPU-time constants (seconds) for the sequential cost model."""

    cpu_page_time: float = 0.004
    cpu_tuple_time: float = 0.0003
    cpu_index_probe_time: float = 0.0001
    cpu_hash_build_time: float = 0.0002
    cpu_hash_probe_time: float = 0.0001
    cpu_compare_time: float = 0.00005
    cpu_output_time: float = 0.00005


@dataclass
class NodeEstimate:
    """Estimated behaviour of one plan node (excluding its children).

    Attributes:
        rows: output cardinality.
        ios: io requests issued by this node itself.
        io_pattern: SEQUENTIAL, RANDOM or None (no io).
        cpu_time: CPU seconds spent by this node itself.
        memory_bytes: working memory this node pins while running
            (hash table, sort buffer, materialization buffer).
        avg_row_bytes: estimated width of one output row.
        column_stats: propagated per-column statistics of the output.
    """

    rows: float
    ios: float = 0.0
    io_pattern: str | None = None
    cpu_time: float = 0.0
    memory_bytes: float = 0.0
    avg_row_bytes: float = 0.0
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)


@dataclass
class PlanEstimate:
    """Estimates for every node of one plan."""

    plan: pn.PlanNode
    by_node: dict[int, NodeEstimate]
    machine: MachineConfig

    def node(self, node: pn.PlanNode) -> NodeEstimate:
        """The estimate of one plan node."""
        return self.by_node[node.node_id]

    @property
    def output_rows(self) -> float:
        return self.by_node[self.plan.node_id].rows

    # -- aggregate costs ---------------------------------------------------------

    def io_time(self, estimate: NodeEstimate) -> float:
        """Sequential-execution io time of one node's requests."""
        if not estimate.ios:
            return 0.0
        disk = self.machine.disk
        if estimate.io_pattern == SEQUENTIAL:
            return estimate.ios / disk.seq_ios_per_sec
        return estimate.ios / disk.random_ios_per_sec

    def total_ios(self) -> float:
        """Total io requests across the plan."""
        return sum(e.ios for e in self.by_node.values())

    def total_cpu_time(self) -> float:
        """Total CPU seconds across the plan."""
        return sum(e.cpu_time for e in self.by_node.values())

    def total_io_time(self) -> float:
        """Total sequential-execution io seconds across the plan."""
        return sum(self.io_time(e) for e in self.by_node.values())

    def total_memory(self) -> float:
        """Working memory the whole plan would pin if run as one task."""
        return sum(e.memory_bytes for e in self.by_node.values())

    def seqcost(self) -> float:
        """Estimated sequential elapsed time of the whole plan (seconds).

        Sequential execution interleaves io and cpu in one process, so
        the two components add.
        """
        return self.total_cpu_time() + self.total_io_time()


def estimate_plan(
    plan: pn.PlanNode,
    catalog: Catalog,
    *,
    cost_model: CostModel | None = None,
    machine: MachineConfig | None = None,
    cache: dict[int, NodeEstimate] | None = None,
) -> PlanEstimate:
    """Estimate every node of ``plan`` bottom-up.

    Args:
        cache: optional per-node memo keyed by ``node_id``.  The DP
            search reuses subplan *objects* across thousands of
            candidate joins, so with a shared cache only the nodes a
            candidate adds on top are estimated; already-seen subtrees
            are copied out of the memo.  The caller owns the cache and
            must not reuse it across different catalogs, cost models or
            machines (node ids are process-unique, so distinct plans
            never collide, but stale statistics would go unnoticed).
    """
    estimator = _Estimator(catalog, cost_model or CostModel(), machine or paper_machine())
    by_node: dict[int, NodeEstimate] = {}
    estimator.visit(plan, by_node, cache)
    return PlanEstimate(plan=plan, by_node=by_node, machine=estimator.machine)


class _Estimator:
    """Bottom-up estimation visitor."""

    def __init__(self, catalog: Catalog, cost: CostModel, machine: MachineConfig) -> None:
        self.catalog = catalog
        self.cost = cost
        self.machine = machine

    def visit(
        self,
        node: pn.PlanNode,
        out: dict[int, NodeEstimate],
        cache: dict[int, NodeEstimate] | None = None,
    ) -> NodeEstimate:
        if cache is not None:
            hit = cache.get(node.node_id)
            if hit is not None:
                # A cached root implies every descendant was cached by
                # the same bottom-up pass; copy the whole subtree out so
                # the PlanEstimate covers exactly this plan's nodes.
                for sub in node.walk():
                    out[sub.node_id] = cache[sub.node_id]
                return hit
        child_estimates = [self.visit(c, out, cache) for c in node.children]
        method = getattr(self, f"_visit_{type(node).__name__}", None)
        if method is None:
            raise OptimizerError(f"no cost rule for {type(node).__name__}")
        estimate = method(node, child_estimates)
        out[node.node_id] = estimate
        if cache is not None:
            cache[node.node_id] = estimate
        return estimate

    # -- base stats helpers --------------------------------------------------------

    def _relation_stats(self, table: str) -> RelationStats:
        stats = self.catalog.table(table).stats
        if stats is None:
            raise OptimizerError(f"relation {table!r} has no statistics (run ANALYZE)")
        return stats

    def _predicate_selectivity(
        self, predicate: Expression | None, column_stats: dict[str, ColumnStats]
    ) -> float:
        """Combined selectivity of all conjuncts under independence."""
        if predicate is None:
            return 1.0
        selectivity = 1.0
        for conj in conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(conj, column_stats)
        return max(0.0, min(1.0, selectivity))

    def _conjunct_selectivity(
        self, conj: Expression, column_stats: dict[str, ColumnStats]
    ) -> float:
        columns = conj.columns()
        if len(columns) == 1:
            (name,) = columns
            stats = column_stats.get(name)
            if stats is None:
                return 1.0 / 3.0
            low, high = column_bounds(conj, name)
            if low is not None and low == high:
                return stats.selectivity_eq(low)
            if low is not None or high is not None:
                return stats.selectivity_range(low, high)
            return 1.0 / 3.0  # e.g. != literal or opaque shapes
        pair = equality_columns(conj)
        if pair is not None:
            left = column_stats.get(pair[0])
            right = column_stats.get(pair[1])
            distinct = max(
                left.n_distinct if left else 1, right.n_distinct if right else 1, 1
            )
            return 1.0 / distinct
        return 1.0 / 3.0

    @staticmethod
    def _scale_stats(
        column_stats: dict[str, ColumnStats], rows: float
    ) -> dict[str, ColumnStats]:
        """Clamp distinct counts to the (reduced) row count."""
        cap = max(1, int(rows))
        return {
            name: s
            if s.n_distinct <= cap
            else ColumnStats(
                n_distinct=cap,
                min_value=s.min_value,
                max_value=s.max_value,
                null_fraction=s.null_fraction,
                histogram=s.histogram,
            )
            for name, s in column_stats.items()
        }

    # -- scans -----------------------------------------------------------------------

    def _visit_SeqScanNode(self, node: pn.SeqScanNode, _children) -> NodeEstimate:
        stats = self._relation_stats(node.table)
        selectivity = self._predicate_selectivity(node.predicate, stats.columns)
        rows_out = stats.row_count * selectivity
        cpu = (
            stats.page_count * self.cost.cpu_page_time
            + stats.row_count * self.cost.cpu_tuple_time
        )
        return NodeEstimate(
            rows=rows_out,
            ios=float(stats.page_count),
            io_pattern=SEQUENTIAL,
            cpu_time=cpu,
            avg_row_bytes=stats.avg_row_size,
            column_stats=self._scale_stats(stats.columns, rows_out),
        )

    def _visit_IndexScanNode(self, node: pn.IndexScanNode, _children) -> NodeEstimate:
        stats = self._relation_stats(node.table)
        entry = self.catalog.table(node.table).indexes.get(node.index_name)
        if entry is None:
            raise OptimizerError(
                f"no index {node.index_name!r} on table {node.table!r}"
            )
        column = entry.column
        col_stats = stats.columns.get(column)
        if col_stats is None:
            range_sel = 1.0 / 3.0
        elif node.low is not None and node.low == node.high:
            range_sel = col_stats.selectivity_eq(node.low)
        else:
            range_sel = col_stats.selectivity_range(node.low, node.high)
        matches = stats.row_count * range_sel
        residual = self._predicate_selectivity(node.predicate, stats.columns)
        rows_out = matches * residual
        # One heap page io per match; on a clustered index the reads are
        # ordered with the heap, so they are (almost) sequential.
        pattern = SEQUENTIAL if entry.clustered else RANDOM
        cpu = matches * (
            self.cost.cpu_index_probe_time + self.cost.cpu_tuple_time
        )
        return NodeEstimate(
            rows=rows_out,
            ios=matches,
            io_pattern=pattern,
            cpu_time=cpu,
            avg_row_bytes=stats.avg_row_size,
            column_stats=self._scale_stats(stats.columns, rows_out),
        )

    # -- unary -----------------------------------------------------------------------

    def _visit_FilterNode(self, node: pn.FilterNode, children) -> NodeEstimate:
        (child,) = children
        selectivity = self._predicate_selectivity(node.predicate, child.column_stats)
        rows_out = child.rows * selectivity
        return NodeEstimate(
            rows=rows_out,
            cpu_time=child.rows * self.cost.cpu_tuple_time,
            avg_row_bytes=child.avg_row_bytes,
            column_stats=self._scale_stats(child.column_stats, rows_out),
        )

    def _visit_ProjectNode(self, node: pn.ProjectNode, children) -> NodeEstimate:
        (child,) = children
        kept = {
            name: s for name, s in child.column_stats.items() if name in node.columns
        }
        # Projection narrows rows roughly in proportion to the number
        # of columns kept.
        total_columns = max(len(child.column_stats), len(node.columns), 1)
        width = child.avg_row_bytes * len(node.columns) / total_columns
        return NodeEstimate(
            rows=child.rows,
            cpu_time=child.rows * self.cost.cpu_output_time,
            avg_row_bytes=width,
            column_stats=kept,
        )

    def _visit_LimitNode(self, node: pn.LimitNode, children) -> NodeEstimate:
        (child,) = children
        rows_out = min(float(node.n), child.rows)
        return NodeEstimate(
            rows=rows_out,
            cpu_time=rows_out * self.cost.cpu_output_time,
            avg_row_bytes=child.avg_row_bytes,
            column_stats=self._scale_stats(child.column_stats, rows_out),
        )

    def _visit_SortNode(self, node: pn.SortNode, children) -> NodeEstimate:
        (child,) = children
        n = max(child.rows, 1.0)
        return NodeEstimate(
            rows=child.rows,
            cpu_time=n * log2(n + 1) * self.cost.cpu_compare_time,
            memory_bytes=child.rows * child.avg_row_bytes,
            avg_row_bytes=child.avg_row_bytes,
            column_stats=dict(child.column_stats),
        )

    def _visit_MaterializeNode(self, node: pn.MaterializeNode, children) -> NodeEstimate:
        (child,) = children
        return NodeEstimate(
            rows=child.rows,
            cpu_time=child.rows * self.cost.cpu_output_time,
            memory_bytes=child.rows * child.avg_row_bytes,
            avg_row_bytes=child.avg_row_bytes,
            column_stats=dict(child.column_stats),
        )

    def _visit_AggregateNode(self, node: pn.AggregateNode, children) -> NodeEstimate:
        (child,) = children
        if node.group_by:
            groups = 1.0
            for name in node.group_by:
                stats = child.column_stats.get(name)
                groups *= stats.n_distinct if stats else 10
            rows_out = min(groups, child.rows)
        else:
            rows_out = 1.0
        return NodeEstimate(
            rows=rows_out,
            cpu_time=child.rows * self.cost.cpu_tuple_time,
            memory_bytes=rows_out * 32.0,  # accumulator per group
            avg_row_bytes=32.0,
            column_stats={},
        )

    # -- joins -----------------------------------------------------------------------

    @staticmethod
    def _merged_stats(outer: NodeEstimate, inner: NodeEstimate, rows: float):
        merged = dict(outer.column_stats)
        for name, stats in inner.column_stats.items():
            merged.setdefault(name, stats)
        return _Estimator._scale_stats(merged, rows)

    def _equijoin_rows(
        self, outer: NodeEstimate, inner: NodeEstimate, outer_col: str, inner_col: str
    ) -> float:
        left = outer.column_stats.get(outer_col)
        right = inner.column_stats.get(inner_col)
        distinct = max(
            left.n_distinct if left else 1, right.n_distinct if right else 1, 1
        )
        return outer.rows * inner.rows / distinct

    def _visit_NestLoopJoinNode(self, node: pn.NestLoopJoinNode, children) -> NodeEstimate:
        outer, inner = children
        if node.predicate is None:
            rows_out = outer.rows * inner.rows
        else:
            merged = dict(outer.column_stats)
            merged.update(inner.column_stats)
            selectivity = self._predicate_selectivity(node.predicate, merged)
            rows_out = outer.rows * inner.rows * selectivity
        cpu = (
            outer.rows * inner.rows * self.cost.cpu_tuple_time
            + rows_out * self.cost.cpu_output_time
        )
        return NodeEstimate(
            rows=rows_out,
            cpu_time=cpu,
            # The lowered nest-loop materializes its inner.
            memory_bytes=inner.rows * inner.avg_row_bytes,
            avg_row_bytes=outer.avg_row_bytes + inner.avg_row_bytes,
            column_stats=self._merged_stats(outer, inner, rows_out),
        )

    def _visit_MergeJoinNode(self, node: pn.MergeJoinNode, children) -> NodeEstimate:
        outer, inner = children
        rows_out = self._equijoin_rows(outer, inner, node.outer_column, node.inner_column)
        cpu = (
            (outer.rows + inner.rows) * self.cost.cpu_compare_time
            + rows_out * self.cost.cpu_output_time
        )
        return NodeEstimate(
            rows=rows_out,
            cpu_time=cpu,
            avg_row_bytes=outer.avg_row_bytes + inner.avg_row_bytes,
            column_stats=self._merged_stats(outer, inner, rows_out),
        )

    def _visit_HashJoinNode(self, node: pn.HashJoinNode, children) -> NodeEstimate:
        outer, inner = children
        rows_out = self._equijoin_rows(outer, inner, node.outer_column, node.inner_column)
        cpu = (
            inner.rows * self.cost.cpu_hash_build_time
            + outer.rows * self.cost.cpu_hash_probe_time
            + rows_out * self.cost.cpu_output_time
        )
        return NodeEstimate(
            rows=rows_out,
            cpu_time=cpu,
            # The hash table holds the whole build (inner) side.
            memory_bytes=inner.rows * inner.avg_row_bytes,
            avg_row_bytes=outer.avg_row_bytes + inner.avg_row_bytes,
            column_stats=self._merged_stats(outer, inner, rows_out),
        )


def analyze_table(catalog: Catalog, name: str) -> RelationStats:
    """Scan a relation and (re)compute its statistics — ANALYZE.

    Returns the stats after storing them in the catalog.
    """
    from ..catalog.statistics import build_relation_stats

    entry = catalog.table(name)
    heap = entry.heap
    stats = build_relation_stats(
        (row for __, row in heap.scan()),
        entry.schema.names(),
        page_count=heap.page_count,
        avg_row_size=heap.avg_row_size(),
    )
    catalog.set_stats(name, stats)
    return stats
