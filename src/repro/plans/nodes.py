"""Sequential plan trees.

"In XPRS, a sequential plan is represented as a binary tree of the
basic relational operations, e.g., sequential scan, index scan, nestloop
join, mergejoin and hashjoin" (Section 2.1).  These nodes are the
*compile-time* representation: the optimizer builds them, the fragmenter
cuts them at blocking edges, and :meth:`PlanNode.to_operator` lowers
them onto the executor.

Each node declares which of its child edges are **blocking**: "edges
between two operations where one operation must wait for the other to
finish producing all the tuples before it can proceed".  Blocking edges
are what decompose a plan into fragments (tasks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..catalog.catalog import Catalog
from ..catalog.schema import Schema
from ..core.ids import node_ids as _node_ids
from ..errors import PlanError
from ..executor import operators as ops
from ..executor.expressions import Expression
from ..executor.iterator import Operator


class PlanNode:
    """Base class for sequential plan nodes.

    Attributes:
        children: child plan nodes (0 for scans, 1 or 2 otherwise).
        node_id: unique id, assigned at construction (used by the
            fragmenter to name cut points).
    """

    #: Indices into ``children`` whose edges are blocking.
    BLOCKING_EDGES: tuple[int, ...] = ()

    def _init_node(self, *children: "PlanNode") -> None:
        self.children = tuple(children)
        self.node_id = _node_ids()

    def blocking_children(self) -> tuple[int, ...]:
        """Indices of children whose edges are blocking (Section 2.1)."""
        return self.BLOCKING_EDGES

    def output_schema(self, catalog: Catalog) -> Schema:
        """The schema of this node's output rows."""
        raise NotImplementedError

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        """Lower this subtree to an executor operator tree."""
        raise NotImplementedError

    # -- traversal ---------------------------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["PlanNode"]:
        """The plan's leaf (scan) nodes."""
        for node in self.walk():
            if not node.children:
                yield node

    def base_relations(self) -> set[str]:
        """Names of all base relations under this node."""
        return {
            node.table
            for node in self.walk()
            if isinstance(node, (SeqScanNode, IndexScanNode))
        }

    def pretty(self, indent: int = 0) -> str:
        """A readable multi-line rendering of the subtree."""
        parts = ["  " * indent + self.label()]
        blocking = set(self.blocking_children())
        for i, child in enumerate(self.children):
            rendered = child.pretty(indent + 1)
            if i in blocking:
                first, *rest = rendered.split("\n")
                rendered = "\n".join([first + " [blocking]", *rest])
            parts.append(rendered)
        return "\n".join(parts)

    def label(self) -> str:
        """A one-line description used in plan renderings."""
        return type(self).__name__

    def __repr__(self) -> str:
        return self.label()


# ---------------------------------------------------------------------------
# scans


@dataclass(eq=False)
class SeqScanNode(PlanNode):
    """Sequential scan of a base relation with an optional predicate."""

    table: str
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        self._init_node()

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.table(self.table).schema

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        heap = catalog.table(self.table).heap
        return ops.SeqScan(heap, self.predicate, charge_io=charge_io)

    def label(self) -> str:
        if self.predicate is not None:
            return f"SeqScan({self.table}, {self.predicate!r})"
        return f"SeqScan({self.table})"


@dataclass(eq=False)
class IndexScanNode(PlanNode):
    """B+tree index scan with a key range and optional residual filter."""

    table: str
    index_name: str
    low: Any = None
    high: Any = None
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        self._init_node()

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.table(self.table).schema

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        entry = catalog.table(self.table)
        index_entry = entry.indexes.get(self.index_name)
        if index_entry is None:
            raise PlanError(
                f"no index {self.index_name!r} on table {self.table!r}"
            )
        return ops.IndexScan(
            entry.heap,
            index_entry.index,
            low=self.low,
            high=self.high,
            predicate=self.predicate,
            charge_io=charge_io,
        )

    def label(self) -> str:
        return f"IndexScan({self.table}.{self.index_name}, [{self.low!r}, {self.high!r}])"


# ---------------------------------------------------------------------------
# unary operators


@dataclass(eq=False)
class FilterNode(PlanNode):
    """Residual selection (pipelined)."""

    child: PlanNode
    predicate: Expression

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Filter(
            self.child.to_operator(catalog, charge_io=charge_io), self.predicate
        )

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(eq=False)
class ProjectNode(PlanNode):
    """Column projection (pipelined), optionally renaming (SQL AS)."""

    child: PlanNode
    columns: tuple[str, ...]
    output_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        projected = self.child.output_schema(catalog).project(self.columns)
        if self.output_names:
            from ..catalog.schema import Column

            projected = Schema(
                [
                    Column(new, column.type)
                    for new, column in zip(self.output_names, projected.columns)
                ]
            )
        return projected

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Project(
            self.child.to_operator(catalog, charge_io=charge_io),
            self.columns,
            output_names=self.output_names,
        )

    def label(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass(eq=False)
class SortNode(PlanNode):
    """Sort — blocking on its input."""

    child: PlanNode
    columns: tuple[str, ...]
    descending: tuple[bool, ...] | None = None

    BLOCKING_EDGES = (0,)

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Sort(
            self.child.to_operator(catalog, charge_io=charge_io),
            self.columns,
            descending=self.descending,
        )

    def label(self) -> str:
        return f"Sort({', '.join(self.columns)})"


@dataclass(eq=False)
class LimitNode(PlanNode):
    """Stop after n rows (pipelined)."""

    child: PlanNode
    n: int

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Limit(self.child.to_operator(catalog, charge_io=charge_io), self.n)

    def label(self) -> str:
        return f"Limit({self.n})"


@dataclass(eq=False)
class MaterializeNode(PlanNode):
    """Materialization — blocking on its input."""

    child: PlanNode

    BLOCKING_EDGES = (0,)

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Materialize(self.child.to_operator(catalog, charge_io=charge_io))


@dataclass(eq=False)
class AggregateNode(PlanNode):
    """Aggregation — blocking on its input."""

    child: PlanNode
    aggregates: tuple[ops.AggregateSpec, ...]
    group_by: tuple[str, ...] = ()

    BLOCKING_EDGES = (0,)

    def __post_init__(self) -> None:
        self._init_node(self.child)

    def output_schema(self, catalog: Catalog) -> Schema:
        op = ops.Aggregate(
            _SchemaProbe(self.child.output_schema(catalog)),
            self.aggregates,
            group_by=self.group_by,
        )
        op.open()
        schema = op.schema
        op.close()
        assert schema is not None
        return schema

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.Aggregate(
            self.child.to_operator(catalog, charge_io=charge_io),
            self.aggregates,
            group_by=self.group_by,
        )

    def label(self) -> str:
        return f"Aggregate({', '.join(a.output_name for a in self.aggregates)})"


class _SchemaProbe(ops.RowSource):
    """An empty RowSource used only to compute derived schemas."""

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema, [])


# ---------------------------------------------------------------------------
# joins


@dataclass(eq=False)
class NestLoopJoinNode(PlanNode):
    """Nested loops; the inner is wrapped in Materialize when lowered
    unless it is an index scan (re-scannable cheaply).

    The materialized inner makes the inner edge blocking.
    """

    outer: PlanNode
    inner: PlanNode
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        self._init_node(self.outer, self.inner)

    def blocking_children(self) -> tuple[int, ...]:
        if isinstance(self.inner, IndexScanNode):
            return ()
        return (1,)

    def output_schema(self, catalog: Catalog) -> Schema:
        left = self.outer.output_schema(catalog)
        right = self.inner.output_schema(catalog)
        try:
            return left.concat(right)
        except Exception:
            return left.concat(right, prefixes=("l", "r"))

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        inner_op = self.inner.to_operator(catalog, charge_io=charge_io)
        if not isinstance(self.inner, IndexScanNode):
            inner_op = ops.Materialize(inner_op)
        return ops.NestLoopJoin(
            self.outer.to_operator(catalog, charge_io=charge_io),
            inner_op,
            self.predicate,
        )

    def label(self) -> str:
        return f"NestLoopJoin({self.predicate!r})"


@dataclass(eq=False)
class MergeJoinNode(PlanNode):
    """Merge join over sorted inputs (not itself blocking; any Sort
    below it carries the blocking edge)."""

    outer: PlanNode
    inner: PlanNode
    outer_column: str
    inner_column: str

    def __post_init__(self) -> None:
        self._init_node(self.outer, self.inner)

    def output_schema(self, catalog: Catalog) -> Schema:
        left = self.outer.output_schema(catalog)
        right = self.inner.output_schema(catalog)
        try:
            return left.concat(right)
        except Exception:
            return left.concat(right, prefixes=("l", "r"))

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.MergeJoin(
            self.outer.to_operator(catalog, charge_io=charge_io),
            self.inner.to_operator(catalog, charge_io=charge_io),
            self.outer_column,
            self.inner_column,
        )

    def label(self) -> str:
        return f"MergeJoin({self.outer_column} = {self.inner_column})"


@dataclass(eq=False)
class HashJoinNode(PlanNode):
    """Hash join; the build (inner) edge is blocking."""

    outer: PlanNode
    inner: PlanNode
    outer_column: str
    inner_column: str

    BLOCKING_EDGES = (1,)

    def __post_init__(self) -> None:
        self._init_node(self.outer, self.inner)

    def output_schema(self, catalog: Catalog) -> Schema:
        left = self.outer.output_schema(catalog)
        right = self.inner.output_schema(catalog)
        try:
            return left.concat(right)
        except Exception:
            return left.concat(right, prefixes=("l", "r"))

    def to_operator(self, catalog: Catalog, *, charge_io: bool = True) -> Operator:
        return ops.HashJoin(
            self.outer.to_operator(catalog, charge_io=charge_io),
            self.inner.to_operator(catalog, charge_io=charge_io),
            self.outer_column,
            self.inner_column,
        )

    def label(self) -> str:
        return f"HashJoin({self.outer_column} = {self.inner_column})"


# ---------------------------------------------------------------------------
# shape predicates (used by the optimizer and tests)


def is_left_deep(plan: PlanNode) -> bool:
    """True when no join's inner subtree itself contains a join."""
    join_types = (NestLoopJoinNode, MergeJoinNode, HashJoinNode)
    for node in plan.walk():
        if isinstance(node, join_types):
            inner = node.children[1]
            if any(isinstance(d, join_types) for d in inner.walk()):
                return False
    return True


def is_right_deep(plan: PlanNode) -> bool:
    """True when no join's *outer* subtree contains a join.

    Right-deep trees chain hash joins through their probe inputs, so
    all builds can run first and the probes pipeline — the shape
    [SCHN90] found superior given sufficient memory.
    """
    join_types = (NestLoopJoinNode, MergeJoinNode, HashJoinNode)
    for node in plan.walk():
        if isinstance(node, join_types):
            outer = node.children[0]
            if any(isinstance(d, join_types) for d in outer.walk()):
                return False
    return True


def is_bushy(plan: PlanNode) -> bool:
    """True when some join joins the results of two joins."""
    join_types = (NestLoopJoinNode, MergeJoinNode, HashJoinNode)

    def has_join(node: PlanNode) -> bool:
        return any(isinstance(d, join_types) for d in node.walk())

    for node in plan.walk():
        if isinstance(node, join_types):
            if has_join(node.children[0]) and has_join(node.children[1]):
                return True
    return False


def count_joins(plan: PlanNode) -> int:
    """Number of join nodes in the plan."""
    join_types = (NestLoopJoinNode, MergeJoinNode, HashJoinNode)
    return sum(1 for node in plan.walk() if isinstance(node, join_types))
