"""Data series behind Figures 3-6.

Figures 3 and 4 are analytic diagrams — we regenerate their exact data
(task lines inside the (N, B) box, the balance-point intersection).
Figures 5 and 6 are protocol diagrams — we regenerate the *message
traces* of one adjustment on the micro simulator and on the real
executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig, paper_machine
from ..core.balance import BalancePoint, balance_point
from ..core.classify import classification_line, is_io_bound, max_parallelism
from ..core.task import Task, make_task
from .report import format_table


@dataclass(frozen=True)
class Figure3Data:
    """Classification lines of a task set inside the (N, B) box."""

    machine: MachineConfig
    lines: list[tuple[Task, list[tuple[float, float]]]]

    def to_table(self) -> str:
        """Render the classification lines as an ASCII table."""
        rows = []
        for task, line in self.lines:
            x_end, y_end = line[-1]
            rows.append(
                (
                    task.name,
                    f"{task.io_rate:.1f}",
                    "IO-bound" if is_io_bound(task, self.machine) else "CPU-bound",
                    f"{max_parallelism(task, self.machine):.2f}",
                    "B wall" if y_end >= self.machine.io_bandwidth - 1e-6 else "N wall",
                )
            )
        return format_table(
            ["Task", "C (ios/s)", "Class", "maxp", "limited by"],
            rows,
            title=(
                f"Figure 3 — IO-bound vs CPU-bound "
                f"(N={self.machine.processors}, B={self.machine.io_bandwidth:.0f}, "
                f"threshold B/N={self.machine.bound_threshold:.0f})"
            ),
        )


def figure3(
    io_rates: list[float] | None = None,
    *,
    machine: MachineConfig | None = None,
    points: int = 9,
) -> Figure3Data:
    """The Figure-3 lines for a representative set of io rates."""
    machine = machine or paper_machine()
    io_rates = io_rates or [5.0, 15.0, 25.0, 30.0, 35.0, 45.0, 55.0]
    lines = []
    for rate in io_rates:
        task = make_task(f"C={rate:g}", io_rate=rate, seq_time=10.0)
        lines.append((task, classification_line(task, machine, points=points)))
    return Figure3Data(machine=machine, lines=lines)


@dataclass(frozen=True)
class Figure4Data:
    """A worked balance point for one IO-bound / CPU-bound pair."""

    machine: MachineConfig
    point: BalancePoint

    def to_table(self) -> str:
        """Render the balance point as an ASCII table."""
        cpu_util, io_util = self.point.utilization(self.machine)
        rows = [
            ("IO-bound task", self.point.task_io.name, f"C={self.point.task_io.io_rate:.1f}"),
            ("CPU-bound task", self.point.task_cpu.name, f"C={self.point.task_cpu.io_rate:.1f}"),
            ("x_io", f"{self.point.x_io:.3f}", "processors"),
            ("x_cpu", f"{self.point.x_cpu:.3f}", "processors"),
            ("total parallelism", f"{self.point.total_parallelism:.3f}", f"of N={self.machine.processors}"),
            ("total io rate", f"{self.point.total_io_rate:.1f}", "ios/s"),
            ("effective bandwidth", f"{self.point.bandwidth:.1f}", "ios/s"),
            ("CPU utilization", f"{cpu_util * 100:.1f}%", ""),
            ("IO utilization", f"{io_util * 100:.1f}%", ""),
        ]
        return format_table(
            ["Quantity", "Value", ""],
            rows,
            title="Figure 4 — the IO-CPU balance point (max utilization point)",
        )


def figure4(
    io_rate_io: float = 55.0,
    io_rate_cpu: float = 10.0,
    *,
    machine: MachineConfig | None = None,
    use_effective_bandwidth: bool = True,
) -> Figure4Data:
    """Solve the Figure-4 balance point for one representative pair."""
    machine = machine or paper_machine()
    fi = make_task(f"io(C={io_rate_io:g})", io_rate=io_rate_io, seq_time=30.0)
    fj = make_task(f"cpu(C={io_rate_cpu:g})", io_rate=io_rate_cpu, seq_time=30.0)
    point = balance_point(
        fi, fj, machine, use_effective_bandwidth=use_effective_bandwidth
    )
    if point is None:
        raise ValueError("the chosen pair has no balance point")
    return Figure4Data(machine=machine, point=point)
