"""Export experiment results as CSV / JSON for external plotting.

The ASCII tables are the canonical artifacts; these exporters produce
machine-readable data files so the figures can be re-plotted with any
tool.
"""

from __future__ import annotations

import csv
import io
import json

from ..sim.fluid import ScheduleResult
from ..workloads.mixes import WorkloadKind
from .harness import Figure7Result, POLICY_NAMES


def figure7_to_csv(result: Figure7Result) -> str:
    """One CSV row per (workload, policy, seed) run."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "workload",
            "policy",
            "seed",
            "elapsed_seconds",
            "adjustments",
            "cpu_utilization",
            "io_utilization",
        ]
    )
    for kind in WorkloadKind:
        for policy in POLICY_NAMES:
            if (kind, policy) not in result.cells:
                continue
            cell = result.cell(kind, policy)
            for i, seed in enumerate(result.seeds):
                writer.writerow(
                    [
                        kind.value,
                        policy,
                        seed,
                        f"{cell.elapsed[i]:.6f}",
                        cell.adjustments[i],
                        f"{cell.cpu_utilization[i]:.4f}",
                        f"{cell.io_utilization[i]:.4f}",
                    ]
                )
    return buffer.getvalue()


def figure7_to_json(result: Figure7Result) -> str:
    """The full grid as a JSON document (means plus per-seed series)."""
    cells = []
    for (kind, policy), cell in result.cells.items():
        cells.append(
            {
                "workload": kind.value,
                "policy": policy,
                "mean_elapsed": cell.mean_elapsed,
                "elapsed": cell.elapsed,
                "adjustments": cell.adjustments,
            }
        )
    document = {
        "experiment": "figure7",
        "engine": result.engine,
        "seeds": list(result.seeds),
        "machine": {
            "processors": result.machine.processors,
            "disks": result.machine.disks,
            "io_bandwidth": result.machine.io_bandwidth,
        },
        "cells": cells,
    }
    return json.dumps(document, indent=2)


def schedule_to_json(result: ScheduleResult) -> str:
    """One schedule trace (the Gantt data) as JSON."""
    records = []
    for record in result.records:
        records.append(
            {
                "task": record.task.name,
                "io_rate": record.task.io_rate,
                "arrival": record.task.arrival_time,
                "started": record.started_at,
                "finished": record.finished_at,
                "parallelism": [list(p) for p in record.parallelism_history],
            }
        )
    document = {
        "policy": result.policy_name,
        "elapsed": result.elapsed,
        "adjustments": result.adjustments,
        "cpu_utilization": result.cpu_utilization,
        "io_utilization": result.io_utilization,
        "records": records,
    }
    return json.dumps(document, indent=2)
