"""ASCII Gantt charts for schedule traces.

Renders a :class:`~repro.sim.fluid.ScheduleResult` as one row per task:
when it ran and with how many slaves (digits encode the degree of
parallelism per time slot, so a dynamic adjustment is visible as the
digits changing mid-bar).
"""

from __future__ import annotations

from ..sim.fluid import ScheduleResult, TaskRecord


def render_gantt(
    result: ScheduleResult,
    *,
    width: int = 72,
    title: str | None = None,
) -> str:
    """Render a schedule as an ASCII Gantt chart.

    Each row is one task; each column is ``elapsed / width`` seconds.
    The glyph in a column is the task's degree of parallelism during
    that slot (``9+`` prints as ``#``); ``.`` marks time waiting
    between arrival and start.
    """
    if not result.records:
        return "(empty schedule)"
    span = max(result.elapsed, 1e-12)
    records = sorted(result.records, key=lambda r: (r.started_at, r.task.name))
    label_width = max(len(r.task.name) for r in records)
    lines = []
    if title:
        lines.append(title)
    header = " " * label_width + "  0" + "-" * (width - 6) + f"{span:7.2f}s"
    lines.append(header)
    for record in records:
        lines.append(
            f"{record.task.name.ljust(label_width)}  {_bar(record, span, width)}"
        )
    lines.append(
        f"{'':{label_width}}  policy={result.policy_name}, "
        f"cpu={result.cpu_utilization * 100:.0f}%, io={result.io_utilization * 100:.0f}%, "
        f"adjustments={result.adjustments}"
    )
    return "\n".join(lines)


def _bar(record: TaskRecord, span: float, width: int) -> str:
    """One task's bar: arrival wait dots then parallelism digits."""
    chars = [" "] * width

    def slot(t: float) -> int:
        return min(width - 1, max(0, int(t / span * width)))

    for position in range(slot(record.task.arrival_time), slot(record.started_at)):
        chars[position] = "."
    history = list(record.parallelism_history)
    for i, (start, parallelism) in enumerate(history):
        end = history[i + 1][0] if i + 1 < len(history) else record.finished_at
        glyph = _glyph(parallelism)
        for position in range(slot(start), max(slot(start) + 1, slot(end))):
            chars[position] = glyph
    return "".join(chars).rstrip()


def _glyph(parallelism: float) -> str:
    value = int(round(parallelism))
    if value >= 10:
        return "#"
    return str(max(value, 1))
