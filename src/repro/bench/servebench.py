"""Serving throughput benchmark (``python -m repro servebench``).

The admission gate is the hot loop of serving mode: the engine consults
it on every virtual event, and before the fast path (dict-backed FIFO
queue, heap-backed deadline instants, memoized gated views, head-window
admission scans — :mod:`repro.service.server`) each consult rescanned
every queue, retry entry and in-flight submission.  This harness times
the full serving pipeline on the **ext2 stress preset** — the extreme
two-tenant ETL/OLAP mix (:func:`repro.service.arrivals.mixed_tenant_config`)
driven deep into congestion: offered load far above capacity, deep
per-tenant queues, retry backoff and shed-mode deadline enforcement,
the regime where a high-throughput gate earns its keep.  Each case runs
with the fast path on (``after``) and with the preserved seed-era gate
(``before``: :class:`~repro.service.queue.ReferenceAdmissionQueue` plus
identity-keyed balance memoization via
:func:`~repro.core.balance.reference_point_keying`), verifies both arms
digest byte-identically, and reports submissions/sec and
gate-decisions/sec.  ``BENCH_SERVE.json`` at the repository root
records the trajectory, mirroring ``BENCH_PERF.json`` and
``BENCH_OPT.json``.

Workloads are seeded, so every simulated quantity — outcome statuses
and timestamps, utilizations, gate-consult counts — is byte-stable;
only wall-clock varies between machines.  ``--smoke`` prints only the
byte-stable part and asserts fast/reference digest identity, giving CI
a cheap end-to-end check of the behaviour-identity argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.balance import clear_point_cache, reference_point_keying
from ..core.ids import id_scope
from ..core.schedulers import InterWithAdjPolicy
from ..faults.retry import RetryPolicy
from ..service.admission import BalanceAwareAdmission
from ..service.arrivals import mixed_tenant_config, poisson_stream
from ..service.server import QueryService, ServiceResult
from .perf import append_trajectory  # re-exported trajectory writer

__all__ = [
    "DEFAULT_CASES",
    "DEFAULT_REPEATS",
    "ServeBenchCase",
    "ServeBenchReport",
    "append_trajectory",
    "run_servebench",
    "serve_once",
    "service_digest",
    "smoke_lines",
]

#: The ext2 stress ladder: (stream length, offered rate λ, queue bound).
#: Offered load sits far above the service capacity at every rung, so
#: the gate runs congested — deep queues, steady retry traffic and
#: deadline enforcement — which is exactly the regime the fast path
#: targets (an idle gate is cheap in any implementation).
DEFAULT_CASES: tuple[tuple[int, float, int], ...] = (
    (600, 1.5, 64),
    (1200, 3.0, 256),
    (2400, 6.0, 512),
)
#: Wall-clock repetitions per arm; the best (minimum) time is kept.
DEFAULT_REPEATS = 3
#: Fragment budget of every case (small: admission decides constantly).
_MAX_INFLIGHT = 4
#: Retry and deadline knobs of every case.
_RETRY = dict(max_retries=6, base_delay=0.5, max_delay=8.0)
_DEADLINE_GRACE = 5.0


def service_digest(result: ServiceResult) -> list:
    """A float.hex-exact digest of everything a serving run decides.

    Two runs digest equal iff they made the same decisions at the same
    virtual instants: per-submission status and every timestamp
    (admitted/finished/rejected/cancelled), the elapsed time and both
    utilizations, all rendered with ``float.hex`` so equality is
    bit-for-bit, never rounded.  The frozen serve corpus and the
    benchmark's before/after comparison both rest on this digest.
    """
    rows: list = [result.admission_name, float(result.elapsed).hex()]

    def hx(value: float | None) -> str | None:
        return None if value is None else float(value).hex()

    for outcome in result.outcomes:
        rows.append(
            [
                outcome.submission.name,
                outcome.submission.tenant,
                outcome.status,
                hx(outcome.admitted_at),
                hx(outcome.finished_at),
                hx(outcome.rejected_at),
                hx(outcome.cancelled_at),
            ]
        )
    rows.append(float(result.metrics.cpu_utilization).hex())
    rows.append(float(result.metrics.io_utilization).hex())
    return rows


def _stress_stream(n: int, rate: float, *, seed: int):
    """The ext2 arrival stream of one rung (deterministic per arguments)."""
    config = mixed_tenant_config(n)
    return poisson_stream(rate=rate, seed=seed, config=config)


def _stress_service(queue_capacity: int, *, fast_path: bool) -> QueryService:
    """A fresh service with the stress preset's gate knobs."""
    return QueryService(
        admission=BalanceAwareAdmission(),
        scheduler=InterWithAdjPolicy(),
        queue_capacity=queue_capacity,
        max_inflight_fragments=_MAX_INFLIGHT,
        retry=RetryPolicy(**_RETRY),
        deadline_policy="shed",
        deadline_grace=_DEADLINE_GRACE,
        fast_path=fast_path,
    )


def serve_once(
    n: int,
    rate: float,
    queue_capacity: int,
    *,
    seed: int = 0,
    fast_path: bool = True,
) -> ServiceResult:
    """One serving run of the ext2 stress preset, scoped and seeded.

    A pure function of its arguments: ids restart inside the scope, so
    two calls with equal arguments produce byte-identical results
    regardless of what ran before them in the process.
    """
    with id_scope():
        stream = _stress_stream(n, rate, seed=seed)
        return _stress_service(queue_capacity, fast_path=fast_path).run(
            stream
        )


@dataclass(frozen=True)
class ServeBenchCase:
    """One timed rung of the stress ladder.

    The outcome counters and ``decide_rounds`` are deterministic for a
    given seed; only the ``wall_*`` fields vary between machines.
    """

    n_submissions: int
    rate: float
    queue_capacity: int
    completed: int
    rejected: int
    deadline_cancelled: int
    degraded: int
    decide_rounds: int
    wall_before: float | None
    wall_after: float
    identical: bool

    @property
    def speedup(self) -> float | None:
        """Before/after wall-clock ratio (None without a before run)."""
        if self.wall_before is None or self.wall_after <= 0:
            return None
        return self.wall_before / self.wall_after

    @property
    def subs_per_sec(self) -> float:
        """Submissions served per wall second, fast arm."""
        return self.n_submissions / self.wall_after if self.wall_after else 0.0

    @property
    def rounds_per_sec(self) -> float:
        """Gate consults per wall second, fast arm."""
        return self.decide_rounds / self.wall_after if self.wall_after else 0.0


@dataclass
class ServeBenchReport:
    """All timed rungs of one harness invocation."""

    seed: int
    repeats: int
    cases: list[ServeBenchCase] = field(default_factory=list)

    def to_table(self) -> str:
        """Human-readable per-rung latency/throughput table."""
        lines = [
            f"serving throughput (ext2 stress preset, seed={self.seed}, "
            f"best of {self.repeats})",
            f"{'subs':>5} {'rate':>5} {'qcap':>5} {'done':>5} {'rej':>5} "
            f"{'ddl':>5} {'rounds':>7} {'before s':>9} {'after s':>8} "
            f"{'speedup':>8} {'subs/sec':>9} {'rounds/sec':>11}",
        ]
        for case in self.cases:
            before = (
                f"{case.wall_before:>9.3f}"
                if case.wall_before is not None
                else f"{'-':>9}"
            )
            speedup = (
                f"{case.speedup:>7.2f}x"
                if case.speedup is not None
                else f"{'-':>8}"
            )
            lines.append(
                f"{case.n_submissions:>5} {case.rate:>5.1f} "
                f"{case.queue_capacity:>5} {case.completed:>5} "
                f"{case.rejected:>5} {case.deadline_cancelled:>5} "
                f"{case.decide_rounds:>7} {before} {case.wall_after:>8.3f} "
                f"{speedup} {case.subs_per_sec:>9,.0f} "
                f"{case.rounds_per_sec:>11,.0f}"
            )
        if not all(case.identical for case in self.cases):
            lines.append(
                "DIGEST MISMATCH: fast path diverged from the reference gate"
            )
        return "\n".join(lines)

    def to_entries(self, label: str) -> list[dict]:
        """Before/after ``BENCH_SERVE.json`` trajectory entries.

        The *before* entry (reference gate) is only emitted when before
        timings were collected.
        """

        def case_key(case: ServeBenchCase) -> str:
            return f"{case.n_submissions}sub/{case.rate:g}ps"

        entries: list[dict] = []
        if all(case.wall_before is not None for case in self.cases):
            entries.append(
                {
                    "label": f"{label}/fast-path-off",
                    "seed": self.seed,
                    "repeats": self.repeats,
                    "fast_path": False,
                    "workloads": {
                        case_key(case): {
                            "decide_rounds": case.decide_rounds,
                            "wall_seconds": round(case.wall_before, 4),
                            "subs_per_sec": round(
                                case.n_submissions / case.wall_before
                            )
                            if case.wall_before
                            else 0,
                            "rounds_per_sec": round(
                                case.decide_rounds / case.wall_before
                            )
                            if case.wall_before
                            else 0,
                        }
                        for case in self.cases
                    },
                }
            )
        entries.append(
            {
                "label": f"{label}/fast-path-on",
                "seed": self.seed,
                "repeats": self.repeats,
                "fast_path": True,
                "workloads": {
                    case_key(case): {
                        "completed": case.completed,
                        "rejected": case.rejected,
                        "deadline_cancelled": case.deadline_cancelled,
                        "decide_rounds": case.decide_rounds,
                        "wall_seconds": round(case.wall_after, 4),
                        "subs_per_sec": round(case.subs_per_sec),
                        "rounds_per_sec": round(case.rounds_per_sec),
                        "speedup_vs_off": round(case.speedup, 2)
                        if case.speedup is not None
                        else None,
                        "digest_identical_to_off": case.identical,
                    }
                    for case in self.cases
                },
            }
        )
        return entries


def _time_arm(
    n: int,
    rate: float,
    queue_capacity: int,
    *,
    seed: int,
    fast_path: bool,
    repeats: int,
) -> tuple[float, ServiceResult]:
    """Best-of-``repeats`` wall time of one arm, each repeat cold.

    Only the serve itself is timed — the arrival stream is built once
    outside the clock, since generation cost is identical for both arms
    and not part of the gate under measurement.  The balance-point memo
    is cleared before every repeat so the measurement is a from-scratch
    serve, not a warm-cache replay; the reference arm additionally runs
    under the seed-era identity cache keys so its timings reflect the
    genuine pre-optimization behaviour.
    """
    best = float("inf")
    result: ServiceResult | None = None
    with id_scope():
        stream = _stress_stream(n, rate, seed=seed)
        for __ in range(repeats):
            clear_point_cache()
            service = _stress_service(queue_capacity, fast_path=fast_path)
            if fast_path:
                start = time.perf_counter()
                result = service.run(stream)
                best = min(best, time.perf_counter() - start)
            else:
                with reference_point_keying():
                    start = time.perf_counter()
                    result = service.run(stream)
                    best = min(best, time.perf_counter() - start)
    assert result is not None
    return best, result


def run_servebench(
    cases: tuple[tuple[int, float, int], ...] = DEFAULT_CASES,
    *,
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
    include_before: bool = True,
) -> ServeBenchReport:
    """Time the serving pipeline across the stress ladder.

    With ``include_before`` (default) each rung is also timed on the
    reference gate and the two digests are compared — a mismatch is
    reported on the case (and loudly by :meth:`ServeBenchReport.to_table`)
    rather than raised, so a regression still produces the numbers that
    localize it.
    """
    report = ServeBenchReport(seed=seed, repeats=repeats)
    for n, rate, queue_capacity in cases:
        wall_after, fast_result = _time_arm(
            n, rate, queue_capacity, seed=seed, fast_path=True, repeats=repeats
        )
        wall_before: float | None = None
        identical = True
        if include_before:
            wall_before, ref_result = _time_arm(
                n,
                rate,
                queue_capacity,
                seed=seed,
                fast_path=False,
                repeats=repeats,
            )
            identical = service_digest(fast_result) == service_digest(
                ref_result
            )
        statuses = [o.status for o in fast_result.outcomes]
        report.cases.append(
            ServeBenchCase(
                n_submissions=n,
                rate=rate,
                queue_capacity=queue_capacity,
                completed=statuses.count("completed")
                + statuses.count("degraded"),
                rejected=statuses.count("rejected"),
                deadline_cancelled=statuses.count("deadline"),
                degraded=statuses.count("degraded"),
                decide_rounds=fast_result.decide_rounds,
                wall_before=wall_before,
                wall_after=wall_after,
                identical=identical,
            )
        )
    return report


def smoke_lines(*, seed: int = 0) -> list[str]:
    """Byte-stable output of a small deterministic serving run.

    Reports only deterministic quantities (outcome counts, gate-consult
    counts, simulated elapsed time), never wall-clock, and replays the
    run on the reference gate to assert digest identity — two runs on
    any machines print the same bytes unless the behaviour-identity
    guarantee itself broke.
    """
    n, rate, queue_capacity = 120, 1.0, 16
    fast = serve_once(n, rate, queue_capacity, seed=seed, fast_path=True)
    with reference_point_keying():
        ref = serve_once(n, rate, queue_capacity, seed=seed, fast_path=False)
    statuses = [o.status for o in fast.outcomes]
    lines = [
        f"smoke: ext2 mix, {n} submissions at {rate:g}/s, "
        f"queue cap {queue_capacity}, seed {seed}",
        f"smoke: {statuses.count('completed')} completed, "
        f"{statuses.count('degraded')} degraded, "
        f"{statuses.count('rejected')} rejected, "
        f"{statuses.count('deadline')} deadline-cancelled",
        f"smoke: {fast.decide_rounds} gate consults over "
        f"{fast.elapsed:.4f}s simulated",
    ]
    if service_digest(fast) != service_digest(ref):
        lines.append(
            "smoke failed: fast path diverged from the reference gate"
        )
    return lines
