"""Benchmark harness: experiment runners, calibration and formatting."""

from .calibration import (
    CalibrationResult,
    ScanMeasurement,
    calibrate,
    measure_disk_regimes,
    measure_scan,
)
from .export import figure7_to_csv, figure7_to_json, schedule_to_json
from .figures import Figure3Data, Figure4Data, figure3, figure4
from .gantt import render_gantt
from .harness import (
    Figure7Cell,
    Figure7Result,
    POLICY_NAMES,
    make_policies,
    run_figure7,
)
from .optbench import OptBenchCase, OptBenchReport, run_optbench
from .perf import PerfCase, PerfReport, run_case, run_perf
from .servebench import ServeBenchCase, ServeBenchReport, run_servebench
from .report import format_bar_chart, format_table, percent

__all__ = [
    "CalibrationResult",
    "Figure3Data",
    "Figure4Data",
    "Figure7Cell",
    "Figure7Result",
    "POLICY_NAMES",
    "OptBenchCase",
    "OptBenchReport",
    "PerfCase",
    "PerfReport",
    "ScanMeasurement",
    "ServeBenchCase",
    "ServeBenchReport",
    "calibrate",
    "figure3",
    "figure4",
    "figure7_to_csv",
    "figure7_to_json",
    "format_bar_chart",
    "format_table",
    "make_policies",
    "measure_disk_regimes",
    "measure_scan",
    "percent",
    "render_gantt",
    "run_case",
    "run_figure7",
    "run_optbench",
    "run_perf",
    "run_servebench",
    "schedule_to_json",
]
