"""Calibration: re-measure the paper's Section-3 constants (tbl2).

The paper measures, on its real hardware:

* the r_min sequential-scan io rate — 5 ios/second;
* the r_max sequential-scan io rate — 70 ios/second;
* disk bandwidth: 97 ios/s sequential, 60 almost sequential, 35 random.

We re-measure the same quantities against our storage layer and cost
model: scans run through the real executor, their simulated io and CPU
time are taken from the cost model, and the disk regimes are measured
by driving the disk model with the three access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog import Catalog
from ..config import MachineConfig, paper_machine
from ..errors import ConfigError
from ..plans.costing import CostModel, estimate_plan
from ..plans.nodes import SeqScanNode
from ..storage import DiskArray
from ..workloads.tables import build_r_max, build_r_min
from .report import format_table


@dataclass(frozen=True)
class ScanMeasurement:
    """Measured behaviour of one sequential scan."""

    relation: str
    pages: int
    rows: int
    io_rate: float  # ios per second of (modelled) sequential execution
    seq_time: float


@dataclass(frozen=True)
class CalibrationResult:
    """All re-measured constants."""

    machine: MachineConfig
    r_min: ScanMeasurement
    r_max: ScanMeasurement
    disk_sequential: float
    disk_almost_sequential: float
    disk_random: float

    def to_table(self) -> str:
        """Render the measured-vs-paper constants as an ASCII table."""
        rows = [
            ("r_min scan io rate", f"{self.r_min.io_rate:.1f} ios/s", "5 ios/s"),
            ("r_max scan io rate", f"{self.r_max.io_rate:.1f} ios/s", "70 ios/s"),
            ("disk sequential", f"{self.disk_sequential:.1f} ios/s", "97 ios/s"),
            (
                "disk almost sequential",
                f"{self.disk_almost_sequential:.1f} ios/s",
                "60 ios/s",
            ),
            ("disk random", f"{self.disk_random:.1f} ios/s", "35 ios/s"),
            (
                "total bandwidth B",
                f"{self.machine.io_bandwidth:.0f} ios/s",
                "240 ios/s",
            ),
            (
                "IO/CPU threshold B/N",
                f"{self.machine.bound_threshold:.0f} ios/s",
                "30 ios/s",
            ),
        ]
        return format_table(
            ["Quantity", "Measured", "Paper"],
            rows,
            title="Section 3 calibration (measured on this storage layer)",
        )


def measure_scan(
    catalog: Catalog,
    relation: str,
    *,
    machine: MachineConfig,
    cost_model: CostModel | None = None,
    execute: bool = True,
) -> ScanMeasurement:
    """Measure a relation's sequential-scan profile.

    The *row/page counts* come from really draining the executor; the
    *time* comes from the cost model (this host's wall clock says
    nothing about a 1992 Sequent), giving the io rate the schedulers
    would see.
    """
    entry = catalog.table(relation)
    plan = SeqScanNode(relation)
    if execute:
        operator = plan.to_operator(catalog, charge_io=False)
        rows = len(operator.run())
    else:
        rows = entry.heap.row_count
    estimate = estimate_plan(plan, catalog, cost_model=cost_model, machine=machine)
    node = estimate.by_node[plan.node_id]
    # Sequential execution at the working (almost-sequential) rate.
    io_time = node.ios / machine.disk.almost_seq_ios_per_sec
    seq_time = node.cpu_time + io_time
    if seq_time <= 0:
        raise ConfigError("degenerate scan measurement")
    return ScanMeasurement(
        relation=relation,
        pages=entry.heap.page_count,
        rows=rows,
        io_rate=node.ios / seq_time,
        seq_time=seq_time,
    )


def measure_disk_regimes(machine: MachineConfig, *, n_ios: int = 500) -> tuple[float, float, float]:
    """Drive one disk with the three access patterns; return the rates."""
    from ..storage.disk import Disk

    # Strictly sequential.
    disk = Disk(0, machine.disk)
    disk.service_time(0)
    seq = n_ios / sum(disk.service_time(b) for b in range(1, n_ios + 1))
    # Almost sequential: a parallel scan's slightly reordered stream.
    disk = Disk(0, machine.disk)
    order = []
    for base in range(0, n_ios, 4):
        order.extend([base + 2, base, base + 3, base + 1])
    disk.service_time(order[0])
    almost = (len(order) - 1) / sum(disk.service_time(b) for b in order[1:])
    # Random: scattered blocks far beyond any stream memory.
    disk = Disk(0, machine.disk)
    stride = 10_000
    blocks = [((i * 7919) % n_ios) * stride for i in range(n_ios)]
    random_rate = len(blocks) / sum(disk.service_time(b) for b in blocks)
    return seq, almost, random_rate


def calibrate(
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    n_rows_min: int = 4000,
    n_rows_max: int = 400,
    seed: int = 0,
) -> CalibrationResult:
    """Build r_min / r_max, measure everything, return the table data."""
    machine = machine or paper_machine()
    array = DiskArray(machine)
    catalog = Catalog()
    build_r_min(catalog, array, n_rows=n_rows_min, seed=seed)
    build_r_max(catalog, array, n_rows=n_rows_max, seed=seed)
    r_min = measure_scan(catalog, "r_min", machine=machine, cost_model=cost_model)
    r_max = measure_scan(catalog, "r_max", machine=machine, cost_model=cost_model)
    seq, almost, random_rate = measure_disk_regimes(machine)
    return CalibrationResult(
        machine=machine,
        r_min=r_min,
        r_max=r_max,
        disk_sequential=seq,
        disk_almost_sequential=almost,
        disk_random=random_rate,
    )
