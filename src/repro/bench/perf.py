"""Engine throughput benchmark (``python -m repro perf``).

The page-level micro simulator is the substrate under every figure
experiment, the chaos runs and the serving-mode sweeps, so its
pages-per-second throughput bounds everything above it.  This harness
times the engine on fixed seeded workloads across task counts and
reports simulated pages per wall-clock second; ``BENCH_PERF.json`` at
the repository root records the measured trajectory (the fast-path
overhaul's before/after numbers are its first entry).

The workloads are deterministic (seeded RANDOM mixes under
``InterWithAdjPolicy``), so a run's *simulated* outputs — pages, events,
simulated elapsed — are byte-stable; only the wall-clock measurements
vary between machines.  ``--smoke`` prints only the byte-stable part,
which gives CI a cheap end-to-end check with comparable output.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..config import paper_machine
from ..core.schedulers import InterWithAdjPolicy
from ..sim.micro import MicroSimulator
from ..workloads import WorkloadConfig, WorkloadKind
from ..workloads.mixes import generate_specs

#: Task counts timed by a default ``python -m repro perf`` run.
DEFAULT_TASK_COUNTS = (10, 20, 40)
#: Pages cap per task for the default workloads.
DEFAULT_MAX_PAGES = 2000
#: Wall-clock repetitions per case; the best (minimum) time is kept,
#: which is the standard way to suppress scheduler/allocator noise.
DEFAULT_REPEATS = 5


@dataclass(frozen=True)
class PerfCase:
    """One timed workload.

    Attributes:
        n_tasks: number of tasks in the seeded workload.
        pages: total simulated pages processed (deterministic).
        events: heap events consumed by the engine run (deterministic).
        sim_elapsed: simulated seconds the schedule took (deterministic).
        wall_seconds: best wall-clock time over the repetitions.
        pages_per_sec: ``pages / wall_seconds``.
    """

    n_tasks: int
    pages: int
    events: int
    sim_elapsed: float
    wall_seconds: float
    pages_per_sec: float


@dataclass
class PerfReport:
    """All timed cases of one harness invocation."""

    seed: int
    max_pages: int
    repeats: int
    cases: list[PerfCase] = field(default_factory=list)

    def to_table(self) -> str:
        """Human-readable per-case throughput table."""
        lines = [
            f"micro-engine throughput (seed={self.seed}, "
            f"max_pages={self.max_pages}, best of {self.repeats})",
            f"{'tasks':>6} {'pages':>8} {'wall s':>9} {'pages/sec':>12}",
        ]
        for case in self.cases:
            lines.append(
                f"{case.n_tasks:>6} {case.pages:>8} "
                f"{case.wall_seconds:>9.4f} {case.pages_per_sec:>12,.0f}"
            )
        return "\n".join(lines)

    def to_entry(self, label: str) -> dict:
        """One ``BENCH_PERF.json`` trajectory entry for this report."""
        return {
            "label": label,
            "seed": self.seed,
            "max_pages": self.max_pages,
            "repeats": self.repeats,
            "workloads": {
                str(case.n_tasks): {
                    "pages": case.pages,
                    "wall_seconds": round(case.wall_seconds, 4),
                    "pages_per_sec": round(case.pages_per_sec),
                }
                for case in self.cases
            },
        }


def _case_workload(n_tasks: int, seed: int, max_pages: int):
    """(machine, specs, policy) for one timed case."""
    machine = paper_machine()
    specs = generate_specs(
        WorkloadKind.RANDOM,
        seed=seed,
        machine=machine,
        config=WorkloadConfig(n_tasks=n_tasks, max_pages=max_pages),
    )
    return machine, specs, InterWithAdjPolicy(integral=True)


def run_case(
    n_tasks: int,
    *,
    seed: int = 0,
    max_pages: int = DEFAULT_MAX_PAGES,
    repeats: int = DEFAULT_REPEATS,
) -> PerfCase:
    """Time one seeded workload; wall time is the best of ``repeats``."""
    machine, specs, policy = _case_workload(n_tasks, seed, max_pages)
    pages = sum(spec.n_pages for spec in specs)
    best = float("inf")
    result = None
    for _ in range(repeats):
        sim = MicroSimulator(machine, seed=seed)
        start = time.perf_counter()
        result = sim.run(specs, policy)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return PerfCase(
        n_tasks=n_tasks,
        pages=pages,
        # Two heap events per page (io done, cpu done) plus the
        # policy-consult ticks; derived from the run, not assumed.
        events=int(result.io_served) * 2,
        sim_elapsed=result.elapsed,
        wall_seconds=best,
        pages_per_sec=pages / best if best > 0 else 0.0,
    )


def run_perf(
    task_counts: tuple[int, ...] = DEFAULT_TASK_COUNTS,
    *,
    seed: int = 0,
    max_pages: int = DEFAULT_MAX_PAGES,
    repeats: int = DEFAULT_REPEATS,
) -> PerfReport:
    """Time the micro engine across ``task_counts`` seeded workloads."""
    report = PerfReport(seed=seed, max_pages=max_pages, repeats=repeats)
    for n_tasks in task_counts:
        report.cases.append(
            run_case(n_tasks, seed=seed, max_pages=max_pages, repeats=repeats)
        )
    return report


def smoke_lines(*, seed: int = 0) -> list[str]:
    """Byte-stable output of a tiny deterministic engine run.

    Reports only simulated quantities (pages, ios, simulated elapsed),
    never wall-clock, so two runs on different machines print the same
    bytes — the property the CLI smoke contract requires.
    """
    machine, specs, policy = _case_workload(4, seed, 200)
    result = MicroSimulator(machine, seed=seed).run(specs, policy)
    pages = sum(spec.n_pages for spec in specs)
    served = int(result.io_served)
    lines = [
        f"smoke: {len(specs)} tasks, {pages} pages, seed {seed}",
        f"smoke: {served} ios served, simulated {result.elapsed:.4f}s "
        f"under {result.policy_name}",
    ]
    if served != pages:
        lines.append(
            f"smoke failed: page conservation violated "
            f"({served} ios served for {pages} pages)"
        )
    return lines


def append_trajectory(path: Path, entry: dict) -> int:
    """Append one entry to a ``BENCH_PERF.json`` trajectory file.

    The file holds a JSON list of entries (oldest first); a missing
    file starts a new trajectory.  Returns the new entry count.
    """
    if path.exists():
        trajectory = json.loads(path.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(f"{path} does not hold a JSON list")
    else:
        trajectory = []
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=1) + "\n")
    return len(trajectory)
