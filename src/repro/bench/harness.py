"""The Figure-7 experiment runner.

Runs the four Section-3 workloads under the three scheduling algorithms
on a chosen engine (the page-level micro simulator by default, or the
fluid engine) and aggregates elapsed times over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Sequence

from ..config import MachineConfig, paper_machine
from ..core.schedulers import (
    InterWithAdjPolicy,
    InterWithoutAdjPolicy,
    IntraOnlyPolicy,
    SchedulingPolicy,
)
from ..errors import ConfigError
from ..sim.fluid import FluidSimulator, ScheduleResult
from ..sim.micro import MicroSimulator
from ..workloads.mixes import WorkloadConfig, WorkloadKind, generate_specs
from .report import format_bar_chart, format_table

#: The three algorithms of Section 3, in the paper's order.
POLICY_NAMES = ("INTRA-ONLY", "INTER-WITHOUT-ADJ", "INTER-WITH-ADJ")


def make_policies(*, integral: bool = True) -> list[SchedulingPolicy]:
    """Fresh instances of the three Section-3 policies."""
    return [
        IntraOnlyPolicy(integral=integral),
        InterWithoutAdjPolicy(integral=integral),
        InterWithAdjPolicy(integral=integral),
    ]


@dataclass
class Figure7Cell:
    """All runs of one (workload, policy) pair."""

    workload: WorkloadKind
    policy: str
    elapsed: list[float] = field(default_factory=list)
    adjustments: list[int] = field(default_factory=list)
    cpu_utilization: list[float] = field(default_factory=list)
    io_utilization: list[float] = field(default_factory=list)

    @property
    def mean_elapsed(self) -> float:
        return mean(self.elapsed)


@dataclass
class Figure7Result:
    """The full Figure-7 grid."""

    engine: str
    machine: MachineConfig
    seeds: tuple[int, ...]
    cells: dict[tuple[WorkloadKind, str], Figure7Cell]

    def cell(self, workload: WorkloadKind, policy: str) -> Figure7Cell:
        """The aggregated runs of one (workload, policy) pair."""
        return self.cells[(workload, policy)]

    def win_over_intra(self, workload: WorkloadKind, policy: str) -> float:
        """Mean relative improvement of ``policy`` over INTRA-ONLY."""
        intra = self.cell(workload, "INTRA-ONLY").mean_elapsed
        other = self.cell(workload, policy).mean_elapsed
        return (intra - other) / intra

    def max_win_over_intra(self, workload: WorkloadKind, policy: str) -> float:
        """Best single-seed improvement (the paper reports 'as much as')."""
        intra = self.cell(workload, "INTRA-ONLY").elapsed
        other = self.cell(workload, policy).elapsed
        return max((a - b) / a for a, b in zip(intra, other))

    def to_table(self) -> str:
        """Render the grid as the paper's Figure-7 table."""
        rows = []
        for kind in WorkloadKind:
            row: list[object] = [kind.value]
            for policy in POLICY_NAMES:
                row.append(f"{self.cell(kind, policy).mean_elapsed:8.2f}")
            row.append(f"{self.win_over_intra(kind, 'INTER-WITH-ADJ') * 100:+5.1f}%")
            rows.append(row)
        return format_table(
            ["Workload", *POLICY_NAMES, "WITH-ADJ win"],
            rows,
            title=(
                f"Figure 7 — elapsed time (seconds, mean over "
                f"{len(self.seeds)} seeds, engine={self.engine})"
            ),
        )

    def to_bar_chart(self) -> str:
        """Render the grid as a text bar chart (the Figure-7 figure)."""
        groups = []
        for kind in WorkloadKind:
            series = [
                (policy, self.cell(kind, policy).mean_elapsed)
                for policy in POLICY_NAMES
            ]
            groups.append((kind.value, series))
        return format_bar_chart(
            groups, title="Figure 7 — Experiment Results of Scheduling Algorithms"
        )


def run_figure7(
    *,
    engine: str = "micro",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    machine: MachineConfig | None = None,
    config: WorkloadConfig | None = None,
    integral: bool = True,
    workloads: Sequence[WorkloadKind] = tuple(WorkloadKind),
) -> Figure7Result:
    """Run the Figure-7 grid and return the aggregated result.

    Args:
        engine: ``"micro"`` (page-level DES) or ``"fluid"``.
        seeds: workload random seeds; each seed is one full grid run.
        machine: machine configuration (paper machine by default).
        config: workload generator knobs.
        integral: round degrees of parallelism to integers.
        workloads: subset of workload kinds to run.
    """
    if engine not in ("micro", "fluid"):
        raise ConfigError(f"unknown engine: {engine!r}")
    machine = machine or paper_machine()
    cells: dict[tuple[WorkloadKind, str], Figure7Cell] = {}
    for kind in workloads:
        for policy_name in POLICY_NAMES:
            cells[(kind, policy_name)] = Figure7Cell(kind, policy_name)
    for seed in seeds:
        for kind in workloads:
            specs = generate_specs(kind, seed=seed, machine=machine, config=config)
            for policy in make_policies(integral=integral):
                result = _run_engine(engine, machine, specs, policy)
                cell = cells[(kind, policy.name)]
                cell.elapsed.append(result.elapsed)
                cell.adjustments.append(result.adjustments)
                cell.cpu_utilization.append(result.cpu_utilization)
                cell.io_utilization.append(result.io_utilization)
    return Figure7Result(
        engine=engine, machine=machine, seeds=tuple(seeds), cells=cells
    )


def _run_engine(
    engine: str,
    machine: MachineConfig,
    specs,
    policy: SchedulingPolicy,
) -> ScheduleResult:
    if engine == "micro":
        return MicroSimulator(machine).run(list(specs), policy)
    tasks = [spec.to_task(machine) for spec in specs]
    return FluidSimulator(machine).run(tasks, policy)
