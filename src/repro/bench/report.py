"""Plain-text tables and bar charts for the benchmark harness.

The paper's artifacts are figures and tables; the harness renders both
as monospace text so every experiment prints "the same rows/series the
paper reports".
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A padded ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def format_bar_chart(
    groups: Sequence[tuple[str, Sequence[tuple[str, float]]]],
    *,
    title: str | None = None,
    unit: str = "s",
    width: int = 48,
) -> str:
    """Grouped horizontal bars — a text rendering of Figure 7.

    Args:
        groups: ``[(group label, [(series label, value), ...]), ...]``.
    """
    peak = max(
        (value for __, series in groups for __, value in series), default=1.0
    )
    label_width = max(
        (len(label) for __, series in groups for label, __ in series), default=4
    )
    out = []
    if title:
        out.append(title)
    for group, series in groups:
        out.append(f"{group}:")
        for label, value in series:
            bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
            out.append(
                f"  {label.ljust(label_width)} {bar} {value:.2f}{unit}"
            )
    return "\n".join(out)


def percent(delta: float) -> str:
    """Format a relative difference as a signed percentage."""
    return f"{delta * +100:+.1f}%"
