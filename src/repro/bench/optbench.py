"""Optimizer throughput benchmark (``python -m repro optbench``).

``parcost``-driven optimization is the expensive path through the
system: the bushy DP over an 8-relation query evaluates thousands of
candidate joins, each one a full fluid-engine simulation before the
fast path (estimate memoization, signature-keyed parcost caching,
branch-and-bound candidate skipping — :mod:`repro.optimizer.cache`)
was added.  This harness times phase-1 optimization across query sizes
and plan spaces with the fast path off (``before``) and on (``after``),
verifies both choose byte-identical plans, and reports candidate
throughput (plans considered per wall second) plus end-to-end optimize
latency.  ``BENCH_OPT.json`` at the repository root records the
trajectory, mirroring ``BENCH_PERF.json`` for the micro engine.

Workloads are seeded star or chain joins, so every simulated quantity —
candidate counts, prune/hit counters, the chosen plan and its parcost —
is byte-stable; only wall-clock varies between machines.  ``--smoke``
prints only the byte-stable part and asserts fast/slow plan identity,
giving CI a cheap end-to-end check of the pruning-safety argument.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..core.ids import id_scope
from ..errors import OptimizerError
from ..optimizer import (
    OptimizerCaches,
    ParcostObjective,
    enumerate_space,
    parcost,
    plan_shape_key,
)
from ..workloads.queries import JoinSchema, chain_join, star_join
from .perf import append_trajectory  # re-exported trajectory writer

__all__ = [
    "DEFAULT_RELATIONS",
    "DEFAULT_SPACES",
    "OptBenchCase",
    "OptBenchReport",
    "append_trajectory",
    "bench_workload",
    "run_optbench",
    "smoke_lines",
    "time_optimize",
]

#: Query sizes (total relations) timed by a default run.
DEFAULT_RELATIONS = (4, 6, 8)
#: Plan spaces timed for each size.
DEFAULT_SPACES = ("left-deep", "right-deep", "bushy")
#: Wall-clock repetitions per case; the best (minimum) time is kept.
DEFAULT_REPEATS = 3
#: Row scale keeping the 8-relation bushy case tractable while leaving
#: realistic cost structure (distinct relation sizes, real selectivity).
_STAR_FACT_ROWS = 400
_STAR_DIM_ROWS = 80
_CHAIN_ROWS = 300


@dataclass(frozen=True)
class OptBenchCase:
    """One timed (size, space) optimization.

    All counters and costs are deterministic for a given seed; only the
    ``wall_*`` fields vary between machines.
    """

    n_relations: int
    space: str
    topology: str
    candidates: int
    costed: int
    pruned: int
    parcost_hits: int
    simulated: int
    chosen_parcost: float
    wall_before: float | None
    wall_after: float
    plans_per_sec: float
    identical: bool

    @property
    def speedup(self) -> float | None:
        """Before/after wall-clock ratio (None without a before run)."""
        if self.wall_before is None or self.wall_after <= 0:
            return None
        return self.wall_before / self.wall_after


@dataclass
class OptBenchReport:
    """All timed cases of one harness invocation."""

    seed: int
    topology: str
    repeats: int
    cases: list[OptBenchCase] = field(default_factory=list)

    def to_table(self) -> str:
        """Human-readable per-case latency/throughput table."""
        lines = [
            f"optimizer throughput ({self.topology} joins, seed={self.seed}, "
            f"best of {self.repeats})",
            f"{'rels':>5} {'space':<10} {'cands':>6} {'pruned':>7} "
            f"{'sims':>5} {'before s':>9} {'after s':>8} {'speedup':>8} "
            f"{'plans/sec':>10}",
        ]
        for case in self.cases:
            before = (
                f"{case.wall_before:>9.3f}" if case.wall_before is not None else f"{'-':>9}"
            )
            speedup = (
                f"{case.speedup:>7.2f}x" if case.speedup is not None else f"{'-':>8}"
            )
            lines.append(
                f"{case.n_relations:>5} {case.space:<10} {case.candidates:>6} "
                f"{case.pruned:>7} {case.simulated:>5} {before} "
                f"{case.wall_after:>8.3f} {speedup} {case.plans_per_sec:>10,.0f}"
            )
        if not all(case.identical for case in self.cases):
            lines.append("PLAN MISMATCH: fast path chose a different plan")
        return "\n".join(lines)

    def to_entries(self, label: str) -> list[dict]:
        """Before/after ``BENCH_OPT.json`` trajectory entries.

        The *before* entry (fast path off) is only emitted when before
        timings were collected.
        """
        def case_key(case: OptBenchCase) -> str:
            return f"{case.n_relations}rel/{case.space}"

        entries: list[dict] = []
        if all(case.wall_before is not None for case in self.cases):
            entries.append(
                {
                    "label": f"{label}/fast-path-off",
                    "seed": self.seed,
                    "topology": self.topology,
                    "repeats": self.repeats,
                    "fast_path": False,
                    "workloads": {
                        case_key(case): {
                            "candidates": case.candidates,
                            "wall_seconds": round(case.wall_before, 4),
                            "plans_per_sec": round(
                                case.candidates / case.wall_before
                            )
                            if case.wall_before
                            else 0,
                        }
                        for case in self.cases
                    },
                }
            )
        entries.append(
            {
                "label": f"{label}/fast-path-on",
                "seed": self.seed,
                "topology": self.topology,
                "repeats": self.repeats,
                "fast_path": True,
                "workloads": {
                    case_key(case): {
                        "candidates": case.candidates,
                        "pruned": case.pruned,
                        "parcost_hits": case.parcost_hits,
                        "simulated": case.simulated,
                        "wall_seconds": round(case.wall_after, 4),
                        "plans_per_sec": round(case.plans_per_sec),
                        "speedup_vs_off": round(case.speedup, 2)
                        if case.speedup is not None
                        else None,
                        "plan_identical_to_off": case.identical,
                    }
                    for case in self.cases
                },
            }
        )
        return entries


def bench_workload(
    n_relations: int, *, topology: str = "star", seed: int = 0
) -> JoinSchema:
    """The seeded join workload for one benchmark case.

    ``star`` builds a fact table with ``n_relations - 1`` dimensions
    (the shape with the largest bushy space and the most structural
    symmetry, which is where signature caching pays off); ``chain``
    builds a linear join path.
    """
    if n_relations < 2:
        raise OptimizerError("optbench needs at least 2 relations")
    # Scoped node ids: two bench_workload calls with the same arguments
    # build byte-identical schemas, so in-process reruns are repeatable.
    with id_scope():
        if topology == "star":
            return star_join(
                n_relations - 1,
                fact_rows=_STAR_FACT_ROWS,
                dimension_rows=_STAR_DIM_ROWS,
                seed=seed,
            )
        if topology == "chain":
            return chain_join(
                n_relations, rows_per_relation=_CHAIN_ROWS, seed=seed
            )
    raise OptimizerError(f"unknown topology: {topology!r}")


def time_optimize(
    schema: JoinSchema,
    space: str,
    *,
    fast_path: bool,
    repeats: int = DEFAULT_REPEATS,
) -> tuple[float, object, OptimizerCaches | None]:
    """Time phase-1 optimization; wall time is the best of ``repeats``.

    Every repeat starts from cold caches (a fresh
    :class:`OptimizerCaches`), so the measurement is the cost of one
    from-scratch optimization, not of a warm-cache replay.  Returns
    ``(best wall seconds, chosen plan, last repeat's caches)``.
    """
    best = float("inf")
    plan = None
    caches = None
    for _ in range(repeats):
        caches = OptimizerCaches() if fast_path else None
        objective = ParcostObjective(schema.catalog, caches=caches)
        stats = caches.stats if caches is not None else None
        start = time.perf_counter()
        plan = enumerate_space(
            schema.query, schema.catalog, objective, space=space, stats=stats
        )
        best = min(best, time.perf_counter() - start)
    assert plan is not None
    return best, plan, caches


def run_optbench(
    relations: tuple[int, ...] = DEFAULT_RELATIONS,
    *,
    spaces: tuple[str, ...] = DEFAULT_SPACES,
    topology: str = "star",
    seed: int = 0,
    repeats: int = DEFAULT_REPEATS,
    include_before: bool = True,
) -> OptBenchReport:
    """Time the optimizer across sizes and plan spaces.

    With ``include_before`` (default) each case is also timed with the
    fast path off and the two chosen plans are compared — a mismatch is
    reported on the case (and loudly by :meth:`OptBenchReport.to_table`)
    rather than raised, so a regression still produces the numbers that
    localize it.
    """
    report = OptBenchReport(seed=seed, topology=topology, repeats=repeats)
    for n_relations in relations:
        schema = bench_workload(n_relations, topology=topology, seed=seed)
        for space in spaces:
            wall_after, fast_plan, caches = time_optimize(
                schema, space, fast_path=True, repeats=repeats
            )
            assert caches is not None
            stats = caches.stats
            fast_key = plan_shape_key(fast_plan)
            chosen_parcost = parcost(fast_plan, schema.catalog)
            wall_before: float | None = None
            identical = True
            if include_before:
                wall_before, slow_plan, _ = time_optimize(
                    schema, space, fast_path=False, repeats=repeats
                )
                identical = plan_shape_key(slow_plan) == fast_key and (
                    parcost(slow_plan, schema.catalog) == chosen_parcost
                )
            report.cases.append(
                OptBenchCase(
                    n_relations=n_relations,
                    space=space,
                    topology=topology,
                    candidates=stats.candidates,
                    costed=stats.costed,
                    pruned=stats.pruned,
                    parcost_hits=stats.parcost_hits,
                    simulated=stats.simulated,
                    chosen_parcost=chosen_parcost,
                    wall_before=wall_before,
                    wall_after=wall_after,
                    plans_per_sec=stats.candidates / wall_after
                    if wall_after > 0
                    else 0.0,
                    identical=identical,
                )
            )
    return report


def smoke_lines(*, seed: int = 0, topology: str = "star") -> list[str]:
    """Byte-stable output of a small deterministic optimizer run.

    Reports only deterministic quantities (candidate counts, prune and
    cache counters, the chosen plan's parcost), never wall-clock, and
    replays the search with the fast path off to assert plan identity —
    two runs on any machines print the same bytes unless the
    plan-identical guarantee itself broke.
    """
    schema = bench_workload(4, topology=topology, seed=seed)
    caches = OptimizerCaches()
    fast = ParcostObjective(schema.catalog, caches=caches)
    fast_plan = enumerate_space(
        schema.query, schema.catalog, fast, space="bushy", stats=caches.stats
    )
    slow = ParcostObjective(schema.catalog, caches=None)
    slow_plan = enumerate_space(schema.query, schema.catalog, slow, space="bushy")
    stats = caches.stats
    fast_cost = parcost(fast_plan, schema.catalog)
    slow_cost = parcost(slow_plan, schema.catalog)
    lines = [
        f"smoke: 4-relation {topology} join, bushy space, seed {seed}",
        f"smoke: {stats.candidates} candidates, {stats.pruned} pruned, "
        f"{stats.parcost_hits} cache hits, {stats.simulated} simulated",
        f"smoke: chosen parcost {fast_cost:.6f}s",
    ]
    if plan_shape_key(fast_plan) != plan_shape_key(slow_plan) or fast_cost != slow_cost:
        lines.append(
            "smoke failed: fast path chose a different plan "
            f"(parcost {fast_cost!r} vs {slow_cost!r})"
        )
    return lines
