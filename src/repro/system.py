"""The XPRS system facade — Figure 2 as one object.

"There are one master Postgres backend and multiple slave Postgres
backends.  The master backend is responsible for all the optimization
and scheduling ... XPRS query processing consists of two phases.  In
the first phase, the optimizer takes one or more user queries and
generates certain sequential plans for each query.  In the second
phase, the parallelizer parallelizes the sequential plans."

:class:`XprsSystem` bundles the catalog, storage, optimizer,
parallelizer and scheduler behind one API::

    system = XprsSystem()
    system.create_table("r1", [("a", "int4"), ("b", "text")], rows)
    system.create_index("r1", "a")

    answer = system.execute("SELECT count(*) FROM r1 WHERE a < 100")
    report = system.explain("SELECT ...")   # plan + fragments + schedule
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .catalog import Catalog, Schema
from .config import MachineConfig, paper_machine
from .core.schedulers import InterWithAdjPolicy, SchedulingPolicy
from .core.task import Task
from .errors import ReproError
from .plans.costing import CostModel, PlanEstimate, estimate_plan
from .plans.fragments import FragmentGraph, fragment_plan
from .plans.nodes import PlanNode
from .sim.fluid import FluidSimulator, ScheduleResult
from .sql.translate import TranslatedQuery, translate
from .storage import BTreeIndex, DiskArray, HeapFile


@dataclass
class ExplainReport:
    """Everything the master backend decides about one query.

    Attributes:
        sql: the statement text.
        plan: the chosen sequential plan (phase 1).
        estimate: per-node cost estimates.
        fragments: the plan fragments (tasks) with blocking-edge deps.
        tasks: scheduler-level tasks derived from the fragments.
        schedule: the predicted parallel schedule (phase 2).
    """

    sql: str
    plan: PlanNode
    estimate: PlanEstimate
    fragments: FragmentGraph
    tasks: list[Task]
    schedule: ScheduleResult

    @property
    def predicted_elapsed(self) -> float:
        """``parcost(p, n)`` — the predicted parallel elapsed time."""
        return self.schedule.elapsed

    @property
    def seqcost(self) -> float:
        """The conventional sequential cost of the chosen plan."""
        return self.estimate.seqcost()

    def pretty(self) -> str:
        """A multi-section EXPLAIN-style rendering."""
        from .bench.gantt import render_gantt

        parts = [
            f"SQL: {self.sql}",
            "",
            "Plan:",
            self.plan.pretty(1),
            "",
            f"Fragments: {len(self.fragments)} "
            f"(seqcost {self.seqcost:.3f}s, parcost {self.predicted_elapsed:.3f}s)",
        ]
        for fragment in self.fragments.fragments:
            parts.append(
                f"  frag{fragment.fragment_id}: {fragment.root.label()} "
                f"T={fragment.seq_time:.3f}s C={fragment.io_rate:.1f} ios/s "
                f"deps={sorted(fragment.depends_on)}"
            )
        parts.append("")
        parts.append(render_gantt(self.schedule, title="Predicted schedule:"))
        return "\n".join(parts)


class XprsSystem:
    """The whole reproduction behind one object (the master backend).

    Args:
        machine: machine configuration (the paper's Sequent by default).
        cost_model: CPU constants for estimation.
        space: join-order search space for phase 1 (``"bushy"`` follows
            Section 4; ``"left-deep"`` is the [HONG91] baseline).
        policy: phase-2 scheduling policy (the adaptive algorithm by
            default).
    """

    def __init__(
        self,
        *,
        machine: MachineConfig | None = None,
        cost_model: CostModel | None = None,
        space: str = "bushy",
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self.machine = machine or paper_machine()
        self.cost_model = cost_model
        self.space = space
        self.policy = policy or InterWithAdjPolicy()
        self.catalog = Catalog()
        self.array = DiskArray(self.machine)

    # -- DDL ---------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, str]],
        rows: Sequence[Sequence] = (),
    ) -> HeapFile:
        """Create, populate and ANALYZE a relation.

        Args:
            name: relation name.
            columns: ``(column, type)`` pairs (int4 / float8 / text).
            rows: initial rows to insert.
        """
        schema = Schema.of(*columns)
        heap = HeapFile(schema, self.array, name=name)
        for row in rows:
            heap.insert(row)
        self.catalog.create_table(name, schema, heap)
        self.analyze(name)
        return heap

    def insert(self, table: str, rows: Sequence[Sequence]) -> None:
        """Append rows to a relation (indexes are maintained)."""
        entry = self.catalog.table(table)
        for row in rows:
            rid = entry.heap.insert(row)
            for index_entry in entry.indexes.values():
                position = entry.schema.index_of(index_entry.column)
                key = entry.heap.fetch(rid)[position]
                if key is not None:
                    index_entry.index.insert(key, rid)

    def create_index(self, table: str, column: str) -> BTreeIndex:
        """Build an unclustered B+tree index over an existing column."""
        entry = self.catalog.table(table)
        position = entry.schema.index_of(column)
        index = BTreeIndex()
        for rid, row in entry.heap.scan():
            if row[position] is not None:
                index.insert(row[position], rid)
        self.catalog.add_index(table, f"{table}_{column}_idx", column, index)
        return index

    def analyze(self, table: str) -> None:
        """Recompute a relation's statistics (run after bulk inserts)."""
        from .plans.costing import analyze_table

        analyze_table(self.catalog, table)

    # -- queries --------------------------------------------------------------------

    def execute(self, sql: str) -> list:
        """Plan and execute a SELECT; returns the result rows."""
        return self._translate(sql).run(self.catalog)

    def explain(self, sql: str) -> ExplainReport:
        """Phase 1 + phase 2 without executing: plan, fragments, schedule."""
        translated = self._translate(sql)
        estimate = estimate_plan(
            translated.plan,
            self.catalog,
            cost_model=self.cost_model,
            machine=self.machine,
        )
        fragments = fragment_plan(translated.plan, estimate)
        tasks = fragments.to_tasks()
        simulator = FluidSimulator(self.machine, adjustment_overhead=0.0)
        self.policy.reset()
        schedule = simulator.run(list(tasks), self.policy)
        return ExplainReport(
            sql=sql,
            plan=translated.plan,
            estimate=estimate,
            fragments=fragments,
            tasks=tasks,
            schedule=schedule,
        )

    def _translate(self, sql: str) -> TranslatedQuery:
        if not isinstance(sql, str) or not sql.strip():
            raise ReproError("execute() needs a SQL string")
        return translate(
            sql,
            self.catalog,
            space=self.space,
            machine=self.machine,
            cost_model=self.cost_model,
        )
