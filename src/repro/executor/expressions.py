"""A small expression language for predicates and projections.

Expressions evaluate against ``(row, schema)`` pairs.  The paper's
workload only needs one-variable selections (``r1.a <op> const``), but
joins and the optimizer need comparisons between columns, conjunction/
disjunction and basic arithmetic, so those are included.

NULL semantics are SQL-ish three-valued logic collapsed to two values:
any comparison involving NULL is false, ``AND``/``OR`` treat missing as
false.  That is all the reproduction needs.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..catalog.schema import Row, Schema
from ..errors import ExpressionError

_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expression:
    """Base class: evaluate against a row under a schema."""

    def evaluate(self, row: Row, schema: Schema) -> Any:
        """Evaluate against one row under ``schema``."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the expression references."""
        raise NotImplementedError

    def bind(self, schema: Schema) -> "BoundExpression":
        """Pre-resolve column positions for fast repeated evaluation."""
        return BoundExpression(self, schema)


@dataclass(frozen=True)
class BoundExpression:
    """An expression paired with its schema for evaluation in a loop."""

    expression: Expression
    schema: Schema

    def __call__(self, row: Row) -> Any:
        return self.expression.evaluate(row, self.schema)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row, schema: Schema) -> Any:
        """Return the constant."""
        return self.value

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a named column of the input schema."""

    name: str

    def evaluate(self, row: Row, schema: Schema) -> Any:
        """Return the named column's value from the row."""
        return row[schema.index_of(self.name)]

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Comparison(Expression):
    """``left <op> right`` with SQL NULL semantics (NULL compares false)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator: {self.op!r}")

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """Compare the operands; NULL on either side yields False."""
        lhs = self.left.evaluate(row, schema)
        rhs = self.right.evaluate(row, schema)
        if lhs is None or rhs is None:
            return False
        try:
            return _COMPARISONS[self.op](lhs, rhs)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}"
            ) from exc

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left <op> right`` for + - * /; NULL propagates."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator: {self.op!r}")

    def evaluate(self, row: Row, schema: Schema) -> Any:
        """Apply the operator; NULL propagates."""
        lhs = self.left.evaluate(row, schema)
        rhs = self.right.evaluate(row, schema)
        if lhs is None or rhs is None:
            return None
        try:
            return _ARITHMETIC[self.op](lhs, rhs)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(
                f"cannot compute {lhs!r} {self.op} {rhs!r}"
            ) from exc

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of one or more predicates."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        if not operands:
            raise ExpressionError("AND needs at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """True iff every operand is true."""
        return all(op.evaluate(row, schema) for op in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(op.columns() for op in self.operands))

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of one or more predicates."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        if not operands:
            raise ExpressionError("OR needs at least one operand")
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """True iff any operand is true."""
        return any(op.evaluate(row, schema) for op in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(op.columns() for op in self.operands))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS NULL`` (or ``IS NOT NULL`` with negated=True)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """NULL test on the operand's value."""
        is_null = self.operand.evaluate(row, schema) is None
        return not is_null if self.negated else is_null

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """Negate the operand."""
        return not self.operand.evaluate(row, schema)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


# -- convenience constructors ---------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def _as_expr(value: Any) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


def eq(left: Any, right: Any) -> Comparison:
    """``left = right`` (values are wrapped as literals)."""
    return Comparison("=", _as_expr(left), _as_expr(right))


def lt(left: Any, right: Any) -> Comparison:
    """``left < right``."""
    return Comparison("<", _as_expr(left), _as_expr(right))


def le(left: Any, right: Any) -> Comparison:
    """``left <= right``."""
    return Comparison("<=", _as_expr(left), _as_expr(right))


def gt(left: Any, right: Any) -> Comparison:
    """``left > right``."""
    return Comparison(">", _as_expr(left), _as_expr(right))


def ge(left: Any, right: Any) -> Comparison:
    """``left >= right``."""
    return Comparison(">=", _as_expr(left), _as_expr(right))


def between(column: str, low: Any, high: Any) -> And:
    """``low <= column <= high``."""
    return And(ge(col(column), low), le(col(column), high))


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for op in expression.operands:
            result.extend(conjuncts(op))
        return result
    return [expression]


def equality_columns(expression: Expression) -> tuple[str, str] | None:
    """If the expression is ``col_a = col_b``, return the two names.

    Used by the optimizer to recognize equi-join predicates.
    """
    if (
        isinstance(expression, Comparison)
        and expression.op == "="
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
    ):
        return expression.left.name, expression.right.name
    return None


def column_bounds(
    expression: Expression | None, column: str
) -> tuple[Any, Any]:
    """Extract constant (low, high) bounds on ``column`` from conjuncts.

    Recognizes ``column <op> literal`` and ``literal <op> column``
    shapes.  Returns ``(None, None)`` when unbounded.  Used to decide
    index-scan ranges and selectivities.
    """
    low: Any = None
    high: Any = None

    def tighten_low(value: Any) -> None:
        nonlocal low
        if low is None or value > low:
            low = value

    def tighten_high(value: Any) -> None:
        nonlocal high
        if high is None or value < high:
            high = value

    for conj in conjuncts(expression):
        if not isinstance(conj, Comparison):
            continue
        left, right = conj.left, conj.right
        if isinstance(left, ColumnRef) and left.name == column and isinstance(right, Literal):
            op, value = conj.op, right.value
        elif isinstance(right, ColumnRef) and right.name == column and isinstance(left, Literal):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            op, value = flip[conj.op], left.value
        else:
            continue
        if op == "=":
            tighten_low(value)
            tighten_high(value)
        elif op in ("<", "<="):
            tighten_high(value)
        elif op in (">", ">="):
            tighten_low(value)
    return low, high
