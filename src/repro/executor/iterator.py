"""The Volcano-style iterator protocol.

Every operator implements ``open() / next_row() / close()`` plus the
Python iterator protocol on top.  Operators track their lifecycle state
so misuse fails loudly, and count the rows they produce — the executor's
row counts feed the calibration benches.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Iterator

from ..catalog.schema import Row, Schema
from ..errors import OperatorStateError


class _State(Enum):
    CREATED = auto()
    OPEN = auto()
    CLOSED = auto()


class Operator:
    """Base class for all executor operators.

    Subclasses implement :meth:`_open`, :meth:`_next` and optionally
    :meth:`_close`, and set :attr:`schema` before ``open`` returns.
    """

    def __init__(self, children: tuple["Operator", ...] = ()) -> None:
        self.children = children
        self.schema: Schema | None = None
        self.rows_produced = 0
        self._state = _State.CREATED

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> "Operator":
        """Prepare for iteration (opens children first). Idempotent reopen
        after close is allowed — operators are restartable, which the
        nest-loop join needs for its inner plan."""
        if self._state == _State.OPEN:
            raise OperatorStateError(f"{self!r} is already open")
        for child in self.children:
            child.open()
        self.rows_produced = 0
        self._open()
        if self.schema is None:
            raise OperatorStateError(f"{self!r} did not set its schema in _open")
        self._state = _State.OPEN
        return self

    def next_row(self) -> Row | None:
        """The next output row, or None when exhausted."""
        if self._state != _State.OPEN:
            raise OperatorStateError(f"{self!r} is not open")
        row = self._next()
        if row is not None:
            self.rows_produced += 1
        return row

    def close(self) -> None:
        """Release resources (closes children last)."""
        if self._state != _State.OPEN:
            raise OperatorStateError(f"{self!r} is not open")
        self._close()
        for child in self.children:
            child.close()
        self._state = _State.CLOSED

    def rewind(self) -> None:
        """Close and reopen — restart the stream from the beginning."""
        self.close()
        self.open()

    # -- subclass hooks ----------------------------------------------------------

    def _open(self) -> None:
        raise NotImplementedError

    def _next(self) -> Row | None:
        raise NotImplementedError

    def _close(self) -> None:
        """Default: nothing to release."""

    # -- conveniences --------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        while True:
            row = self.next_row()
            if row is None:
                return
            yield row

    def run(self) -> list[Row]:
        """Open, drain and close; returns all output rows."""
        self.open()
        try:
            return list(self)
        finally:
            self.close()

    @property
    def is_open(self) -> bool:
        return self._state == _State.OPEN

    def __repr__(self) -> str:
        return type(self).__name__
