"""Aggregation operators (blocking).

Supports COUNT / SUM / AVG / MIN / MAX, optionally grouped.  NULL inputs
are skipped (SQL semantics); COUNT(*) counts rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ...catalog.schema import Column, Row, Schema
from ...catalog.types import FLOAT8, INT4
from ...errors import PlanError
from ..iterator import Operator

_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: function name + input column (None = COUNT(*))."""

    function: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function not in _FUNCTIONS:
            raise PlanError(f"unknown aggregate function: {self.function!r}")
        if self.function != "count" and self.column is None:
            raise PlanError(f"{self.function} requires a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.column is None:
            return f"{self.function}_all"
        return f"{self.function}_{self.column}"


class _Accumulator:
    """Streaming state for one aggregate over one group."""

    __slots__ = ("spec", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if self.spec.column is not None and value is None:
            return
        self.count += 1
        if self.spec.function in ("sum", "avg"):
            self.total += value
        elif self.spec.function == "min":
            self.minimum = value if not self.seen else min(self.minimum, value)
        elif self.spec.function == "max":
            self.maximum = value if not self.seen else max(self.maximum, value)
        self.seen = True

    def result(self) -> Any:
        f = self.spec.function
        if f == "count":
            return self.count
        if not self.seen:
            return None
        if f == "sum":
            return self.total
        if f == "avg":
            return self.total / self.count
        if f == "min":
            return self.minimum
        return self.maximum


class Aggregate(Operator):
    """Hash aggregation, optionally grouped (blocking on open).

    Output schema: the group columns (in order) followed by one column
    per aggregate.  Ungrouped aggregation over empty input produces one
    row (COUNT = 0, others NULL), matching SQL.
    """

    def __init__(
        self,
        child: Operator,
        aggregates: Sequence[AggregateSpec],
        *,
        group_by: Sequence[str] = (),
    ) -> None:
        super().__init__((child,))
        if not aggregates:
            raise PlanError("aggregate needs at least one AggregateSpec")
        self.aggregates = tuple(aggregates)
        self.group_by = tuple(group_by)
        self._results: list[Row] | None = None
        self._pos = 0

    def _open(self) -> None:
        child_schema = self.children[0].schema
        assert child_schema is not None
        self.schema = self._output_schema(child_schema)
        group_positions = [child_schema.index_of(g) for g in self.group_by]
        agg_positions = [
            child_schema.index_of(a.column) if a.column is not None else None
            for a in self.aggregates
        ]
        groups: dict[tuple, list[_Accumulator]] = {}
        for row in self.children[0]:
            key = tuple(row[i] for i in group_positions)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(a) for a in self.aggregates]
                groups[key] = accs
            for acc, pos in zip(accs, agg_positions):
                acc.add(row[pos] if pos is not None else 1)
        if not groups and not self.group_by:
            groups[()] = [_Accumulator(a) for a in self.aggregates]
        self._results = [
            key + tuple(acc.result() for acc in accs)
            for key, accs in groups.items()
        ]
        self._pos = 0

    def _output_schema(self, child_schema: Schema) -> Schema:
        columns = [child_schema[child_schema.index_of(g)] for g in self.group_by]
        for spec in self.aggregates:
            if spec.function == "count":
                ctype = INT4
            elif spec.column is not None and spec.function in ("min", "max", "sum"):
                ctype = child_schema[child_schema.index_of(spec.column)].type
            else:
                ctype = FLOAT8
            columns.append(Column(spec.output_name, ctype))
        return Schema(columns)

    def _next(self) -> Row | None:
        assert self._results is not None
        if self._pos >= len(self._results):
            return None
        row = self._results[self._pos]
        self._pos += 1
        return row

    def _close(self) -> None:
        self._results = None

    def __repr__(self) -> str:
        aggs = ", ".join(a.output_name for a in self.aggregates)
        if self.group_by:
            return f"Aggregate({aggs} BY {', '.join(self.group_by)})"
        return f"Aggregate({aggs})"
