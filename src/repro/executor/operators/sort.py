"""Sort and sorted-stream helpers (blocking)."""

from __future__ import annotations

from typing import Sequence

from ...catalog.schema import Row
from ...errors import PlanError
from ..iterator import Operator

_NULL_SENTINEL = object()


def sort_key(positions: Sequence[int]):
    """A key function ordering NULLs first, then values ascending."""

    def key(row: Row):
        return tuple(
            (0, None) if row[i] is None else (1, row[i]) for i in positions
        )

    return key


class Sort(Operator):
    """In-memory sort on one or more columns (blocking on open).

    Args:
        child: input operator.
        columns: column names to order by; NULLs sort first (ascending).
        descending: optional per-column direction flags (default all
            ascending).  Implemented as stable single-column passes in
            reverse column order, so mixed directions are exact.
    """

    def __init__(
        self,
        child: Operator,
        columns: Sequence[str],
        *,
        descending: Sequence[bool] | None = None,
    ) -> None:
        super().__init__((child,))
        if not columns:
            raise PlanError("sort needs at least one column")
        self.columns = tuple(columns)
        if descending is None:
            descending = [False] * len(self.columns)
        if len(descending) != len(self.columns):
            raise PlanError("one direction flag per sort column required")
        self.descending = tuple(bool(d) for d in descending)
        self._sorted: list[Row] | None = None
        self._pos = 0

    def _open(self) -> None:
        self.schema = self.children[0].schema
        assert self.schema is not None
        rows = list(self.children[0])
        for name, desc in reversed(list(zip(self.columns, self.descending))):
            position = self.schema.index_of(name)
            rows.sort(key=sort_key([position]), reverse=desc)
        self._sorted = rows
        self._pos = 0

    def _next(self) -> Row | None:
        assert self._sorted is not None
        if self._pos >= len(self._sorted):
            return None
        row = self._sorted[self._pos]
        self._pos += 1
        return row

    def _close(self) -> None:
        self._sorted = None

    def __repr__(self) -> str:
        return f"Sort({', '.join(self.columns)})"
