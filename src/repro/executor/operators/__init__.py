"""Executor operators."""

from .aggregate import Aggregate, AggregateSpec
from .joins import HashJoin, MergeJoin, NestLoopJoin
from .misc import Filter, Limit, Materialize, Project, RowSource
from .scans import IndexScan, SeqScan
from .sort import Sort

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "Filter",
    "HashJoin",
    "IndexScan",
    "Limit",
    "Materialize",
    "MergeJoin",
    "NestLoopJoin",
    "Project",
    "RowSource",
    "SeqScan",
    "Sort",
]
