"""Join operators: nest-loop, merge join and hash join.

Blocking behaviour (which determines plan fragments, Section 2.1):

* **NestLoopJoin** — fully pipelined on the outer; the inner is
  restarted per outer row (wrap it in Materialize unless it is cheap).
* **MergeJoin** — pipelined when its inputs arrive sorted; a Sort
  beneath it is the blocking edge, not the join itself.
* **HashJoin** — the *build* (inner) edge is blocking: the inner is
  drained into the hash table on open; the probe (outer) edge pipelines.
"""

from __future__ import annotations

from collections import defaultdict

from ...catalog.schema import Row, Schema
from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from ..iterator import Operator


def _join_schema(left: Schema, right: Schema) -> Schema:
    try:
        return left.concat(right)
    except Exception:
        return left.concat(right, prefixes=("l", "r"))


class NestLoopJoin(Operator):
    """Tuple nested-loops join with an arbitrary join predicate.

    The inner child is rewound for every outer row, so give it a
    Materialize (or an index scan) unless it is trivially small.
    A None predicate yields the cross product.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        predicate: Expression | None = None,
    ) -> None:
        super().__init__((outer, inner))
        self.predicate = predicate
        self._bound: BoundExpression | None = None
        self._outer_row: Row | None = None

    def _open(self) -> None:
        outer_schema = self.children[0].schema
        inner_schema = self.children[1].schema
        assert outer_schema is not None and inner_schema is not None
        self.schema = _join_schema(outer_schema, inner_schema)
        self._bound = (
            self.predicate.bind(self.schema) if self.predicate else None
        )
        self._outer_row = self.children[0].next_row()

    def _next(self) -> Row | None:
        while self._outer_row is not None:
            inner_row = self.children[1].next_row()
            if inner_row is None:
                self._outer_row = self.children[0].next_row()
                if self._outer_row is None:
                    return None
                self.children[1].rewind()
                continue
            joined = self._outer_row + inner_row
            if self._bound is None or self._bound(joined):
                return joined
        return None

    def __repr__(self) -> str:
        return f"NestLoopJoin({self.predicate!r})"


class MergeJoin(Operator):
    """Equi-join over inputs sorted on the join columns.

    Args:
        outer / inner: children, each sorted ascending on its join column.
        outer_column / inner_column: join column names in each child.

    Duplicate keys on both sides produce the full cross product of the
    matching groups.  NULL keys never match.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_column: str,
        inner_column: str,
    ) -> None:
        super().__init__((outer, inner))
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._outer_pos = -1
        self._inner_pos = -1
        self._outer_row: Row | None = None
        self._inner_group: list[Row] = []
        self._group_index = 0
        self._pending_inner: Row | None = None

    def _open(self) -> None:
        outer_schema = self.children[0].schema
        inner_schema = self.children[1].schema
        assert outer_schema is not None and inner_schema is not None
        self.schema = _join_schema(outer_schema, inner_schema)
        self._outer_pos = outer_schema.index_of(self.outer_column)
        self._inner_pos = inner_schema.index_of(self.inner_column)
        self._outer_row = self._next_outer_nonnull()
        self._pending_inner = self._next_inner_nonnull()
        self._inner_group = []
        self._group_index = 0

    def _next_outer_nonnull(self) -> Row | None:
        while True:
            row = self.children[0].next_row()
            if row is None or row[self._outer_pos] is not None:
                return row

    def _next_inner_nonnull(self) -> Row | None:
        while True:
            row = self.children[1].next_row()
            if row is None or row[self._inner_pos] is not None:
                return row

    def _load_group(self, key) -> None:
        """Collect all inner rows equal to ``key`` into the group buffer."""
        self._inner_group = []
        while (
            self._pending_inner is not None
            and self._pending_inner[self._inner_pos] == key
        ):
            self._inner_group.append(self._pending_inner)
            self._pending_inner = self._next_inner_nonnull()
        self._group_index = 0

    def _next(self) -> Row | None:
        while self._outer_row is not None:
            key = self._outer_row[self._outer_pos]
            if self._group_index < len(self._inner_group):
                # Continue emitting the current group.
                joined = self._outer_row + self._inner_group[self._group_index]
                self._group_index += 1
                return joined
            if self._inner_group and self._group_index >= len(self._inner_group):
                # Group exhausted for this outer row; advance the outer.
                next_outer = self._next_outer_nonnull()
                if (
                    next_outer is not None
                    and next_outer[self._outer_pos] == key
                ):
                    # Same key: replay the group.
                    self._outer_row = next_outer
                    self._group_index = 0
                    continue
                self._outer_row = next_outer
                self._inner_group = []
                continue
            # No group loaded yet: advance the inner to the outer's key.
            while (
                self._pending_inner is not None
                and self._pending_inner[self._inner_pos] < key
            ):
                self._pending_inner = self._next_inner_nonnull()
            if (
                self._pending_inner is not None
                and self._pending_inner[self._inner_pos] == key
            ):
                self._load_group(key)
                continue
            # No inner match; advance the outer.
            self._outer_row = self._next_outer_nonnull()
            self._inner_group = []
        return None

    def __repr__(self) -> str:
        return f"MergeJoin({self.outer_column} = {self.inner_column})"


class HashJoin(Operator):
    """Classic hash join; builds on the inner, probes with the outer.

    The build edge is the blocking edge ("one operation must wait for
    the other to finish producing all the tuples").  NULL keys never
    match.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_column: str,
        inner_column: str,
    ) -> None:
        super().__init__((outer, inner))
        self.outer_column = outer_column
        self.inner_column = inner_column
        self._table: dict | None = None
        self._outer_pos = -1
        self._current_matches: list[Row] = []
        self._match_index = 0
        self._outer_row: Row | None = None

    def _open(self) -> None:
        outer_schema = self.children[0].schema
        inner_schema = self.children[1].schema
        assert outer_schema is not None and inner_schema is not None
        self.schema = _join_schema(outer_schema, inner_schema)
        self._outer_pos = outer_schema.index_of(self.outer_column)
        inner_pos = inner_schema.index_of(self.inner_column)
        # Build phase: drain the inner completely.
        table: dict = defaultdict(list)
        for row in self.children[1]:
            key = row[inner_pos]
            if key is not None:
                table[key].append(row)
        self._table = dict(table)
        self._current_matches = []
        self._match_index = 0
        self._outer_row = None

    @property
    def build_rows(self) -> int:
        """Number of rows in the hash table (memory-footprint proxy)."""
        if self._table is None:
            raise PlanError("hash join not open")
        return sum(len(v) for v in self._table.values())

    def _next(self) -> Row | None:
        assert self._table is not None
        while True:
            if self._match_index < len(self._current_matches):
                assert self._outer_row is not None
                joined = self._outer_row + self._current_matches[self._match_index]
                self._match_index += 1
                return joined
            self._outer_row = self.children[0].next_row()
            if self._outer_row is None:
                return None
            key = self._outer_row[self._outer_pos]
            self._current_matches = (
                self._table.get(key, []) if key is not None else []
            )
            self._match_index = 0

    def _close(self) -> None:
        self._table = None

    def __repr__(self) -> str:
        return f"HashJoin({self.outer_column} = {self.inner_column})"
