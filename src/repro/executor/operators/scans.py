"""Scan operators: sequential scan and (B+tree) index scan.

Both charge their page reads to the simulated disk array, so a drained
scan leaves behind exactly the io trace the scheduling theory reasons
about: sequential scans issue one (striped, per-disk sequential) read
per heap page; index scans on an unclustered index issue one random
heap read per qualifying tuple — "the i/o rate is always high because
index scans can follow the pointer in an index to a qualified tuple on
a disk page" (Section 3).
"""

from __future__ import annotations

from typing import Any, Iterator

from ...catalog.schema import Row
from ...errors import PlanError
from ...storage.btree import BTreeIndex
from ...storage.heap import HeapFile
from ..expressions import BoundExpression, Expression
from ..iterator import Operator


class SeqScan(Operator):
    """Full (or page-partitioned) scan of a heap file.

    Args:
        heap: the relation to scan.
        predicate: optional filter applied to each tuple.
        n_partitions / partition: page partition to scan (the paper's
            ``{p | p mod n == i}``); defaults to the whole file.
        charge_io: whether to charge simulated page reads to the disks.
        buffer_pool: optional shared buffer pool; hits skip the
            simulated disk read entirely (XPRS backends share one pool
            in shared memory).
    """

    def __init__(
        self,
        heap: HeapFile,
        predicate: Expression | None = None,
        *,
        n_partitions: int = 1,
        partition: int = 0,
        charge_io: bool = True,
        buffer_pool=None,
    ) -> None:
        super().__init__()
        self.heap = heap
        self.predicate = predicate
        self.n_partitions = n_partitions
        self.partition = partition
        self.charge_io = charge_io
        self.buffer_pool = buffer_pool
        self.pages_read = 0
        self._rows: Iterator[Row] | None = None
        self._bound: BoundExpression | None = None

    def _open(self) -> None:
        self.schema = self.heap.schema
        self.pages_read = 0
        self._bound = (
            self.predicate.bind(self.heap.schema) if self.predicate else None
        )
        self._rows = self._scan()

    def _scan(self) -> Iterator[Row]:
        pages = self.heap.partition_pages(self.n_partitions, self.partition)
        for page_no in pages:
            if self.buffer_pool is not None:
                self.buffer_pool.get(self.heap, page_no)  # miss charges io
            elif self.charge_io:
                self.heap.read_time(page_no)
            self.pages_read += 1
            for __, row in self.heap.scan_pages([page_no]):
                if self._bound is None or self._bound(row):
                    yield row

    def _next(self) -> Row | None:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None

    def __repr__(self) -> str:
        name = self.heap.name or f"file{self.heap.extent.file_id}"
        if self.n_partitions > 1:
            return f"SeqScan({name}[{self.partition}/{self.n_partitions}])"
        return f"SeqScan({name})"


class IndexScan(Operator):
    """Range scan through a B+tree, fetching tuples from the heap.

    Every qualifying entry triggers one heap page read; on an
    *unclustered* index those reads are effectively random, which is
    what makes the paper's index-scan tasks IO-bound.

    Args:
        heap: the base relation.
        index: B+tree over ``column``.
        low / high: key range (either may be None).
        predicate: optional residual filter on fetched tuples.
        charge_io: whether to charge simulated heap reads.
        buffer_pool: optional shared buffer pool (hits skip the io).
    """

    def __init__(
        self,
        heap: HeapFile,
        index: BTreeIndex,
        *,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        predicate: Expression | None = None,
        charge_io: bool = True,
        buffer_pool=None,
    ) -> None:
        super().__init__()
        if index is None:
            raise PlanError("IndexScan requires an index")
        self.heap = heap
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self.charge_io = charge_io
        self.buffer_pool = buffer_pool
        self.heap_reads = 0
        self._rows: Iterator[Row] | None = None
        self._bound: BoundExpression | None = None

    def _open(self) -> None:
        self.schema = self.heap.schema
        self.heap_reads = 0
        self._bound = (
            self.predicate.bind(self.heap.schema) if self.predicate else None
        )
        self._rows = self._scan()

    def _scan(self) -> Iterator[Row]:
        entries = self.index.range_scan(
            self.low,
            self.high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
        )
        for __, rid in entries:
            if self.buffer_pool is not None:
                self.buffer_pool.get(self.heap, rid.page_no)
            elif self.charge_io:
                self.heap.read_time(rid.page_no)
            self.heap_reads += 1
            row = self.heap.fetch(rid)
            if self._bound is None or self._bound(row):
                yield row

    def _next(self) -> Row | None:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None

    def __repr__(self) -> str:
        name = self.heap.name or f"file{self.heap.extent.file_id}"
        return f"IndexScan({name}, [{self.low!r}, {self.high!r}])"
