"""Pipelined glue operators: Filter, Project, Limit, Materialize, RowSource.

``Materialize`` is the one *blocking* operator here: it drains its child
completely on open.  The plan layer marks the edge below a Materialize
as a blocking edge, which is what splits plans into fragments.
"""

from __future__ import annotations

from typing import Sequence

from ...catalog.schema import Row, Schema
from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from ..iterator import Operator


class Filter(Operator):
    """Keep only rows satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        super().__init__((child,))
        self.predicate = predicate
        self._bound: BoundExpression | None = None

    def _open(self) -> None:
        self.schema = self.children[0].schema
        assert self.schema is not None
        self._bound = self.predicate.bind(self.schema)

    def _next(self) -> Row | None:
        assert self._bound is not None
        while True:
            row = self.children[0].next_row()
            if row is None:
                return None
            if self._bound(row):
                return row

    def __repr__(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(Operator):
    """Project (and reorder) columns by name, optionally renaming.

    Args:
        child: input operator.
        column_names: input column names to keep, in output order.
        output_names: optional new names (one per kept column) — SQL
            ``AS`` aliases.
    """

    def __init__(
        self,
        child: Operator,
        column_names: Sequence[str],
        *,
        output_names: Sequence[str] | None = None,
    ) -> None:
        super().__init__((child,))
        if not column_names:
            raise PlanError("projection needs at least one column")
        self.column_names = tuple(column_names)
        if output_names is not None and len(output_names) != len(column_names):
            raise PlanError("one output name per projected column required")
        self.output_names = tuple(output_names) if output_names else None
        self._positions: tuple[int, ...] = ()

    def _open(self) -> None:
        child_schema = self.children[0].schema
        assert child_schema is not None
        projected = child_schema.project(self.column_names)
        if self.output_names:
            from ...catalog.schema import Column, Schema

            projected = Schema(
                [
                    Column(new, col.type)
                    for new, col in zip(self.output_names, projected.columns)
                ]
            )
        self.schema = projected
        self._positions = tuple(
            child_schema.index_of(name) for name in self.column_names
        )

    def _next(self) -> Row | None:
        row = self.children[0].next_row()
        if row is None:
            return None
        return tuple(row[i] for i in self._positions)

    def __repr__(self) -> str:
        return f"Project({', '.join(self.column_names)})"


class Limit(Operator):
    """Stop after ``n`` rows."""

    def __init__(self, child: Operator, n: int) -> None:
        super().__init__((child,))
        if n < 0:
            raise PlanError("limit must be non-negative")
        self.n = n
        self._emitted = 0

    def _open(self) -> None:
        self.schema = self.children[0].schema
        self._emitted = 0

    def _next(self) -> Row | None:
        if self._emitted >= self.n:
            return None
        row = self.children[0].next_row()
        if row is None:
            return None
        self._emitted += 1
        return row

    def __repr__(self) -> str:
        return f"Limit({self.n})"


class Materialize(Operator):
    """Drain the child on open; replay from memory (blocking edge).

    A rewound Materialize replays its buffer without re-running the
    child, which is what makes it the cheap inner of a nest-loop join.
    """

    def __init__(self, child: Operator) -> None:
        # The child is managed manually: a buffered reopen must not
        # reopen (and so re-run) the child, so it is not registered in
        # ``children`` for the automatic lifecycle.
        super().__init__(())
        self.child = child
        self._buffer: list[Row] | None = None
        self._child_schema: Schema | None = None
        self._pos = 0

    def _open(self) -> None:
        if self._buffer is None:
            self.child.open()
            self._child_schema = self.child.schema
            self._buffer = [row for row in self.child]
            self.child.close()
        self.schema = self._child_schema
        self._pos = 0

    def _next(self) -> Row | None:
        assert self._buffer is not None
        if self._pos >= len(self._buffer):
            return None
        row = self._buffer[self._pos]
        self._pos += 1
        return row

    def invalidate(self) -> None:
        """Forget the buffered rows (re-run the child on next open)."""
        self._buffer = None

    def __repr__(self) -> str:
        return "Materialize"


class RowSource(Operator):
    """An operator over in-memory rows (tests and intermediate results)."""

    def __init__(self, schema: Schema, rows: Sequence[Row]) -> None:
        super().__init__()
        self._schema = schema
        self._rows = [schema.validate_row(r) for r in rows]
        self._pos = 0

    def _open(self) -> None:
        self.schema = self._schema
        self._pos = 0

    def _next(self) -> Row | None:
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def __repr__(self) -> str:
        return f"RowSource({len(self._rows)} rows)"
