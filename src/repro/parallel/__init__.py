"""Real master/slave parallel execution on multiprocessing."""

from .executor import (
    AdjustmentPlan,
    ParallelIndexScan,
    ParallelSeqScan,
    ScanReport,
)
from .partition import (
    PageAssignment,
    adjusted_assignments,
    balanced_ranges,
    intervals_from_separators,
    maxpage_split,
    page_assignments,
    repartition_intervals,
)

__all__ = [
    "AdjustmentPlan",
    "PageAssignment",
    "ParallelIndexScan",
    "ParallelSeqScan",
    "ScanReport",
    "adjusted_assignments",
    "balanced_ranges",
    "intervals_from_separators",
    "maxpage_split",
    "page_assignments",
    "repartition_intervals",
]
