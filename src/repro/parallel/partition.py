"""Partitioning arithmetic for parallel scans.

XPRS parallelizes operators two ways (Section 2.4):

* **page partitioning** — "given n processors, processor i processes
  disk pages ``{p | p mod n = i}``"; used for sequential scans;
* **range partitioning** — partition by attribute value, balanced using
  "data distribution information in the system catalog or in the root
  node of an index"; used for index scans.

This module holds the pure arithmetic shared by the simulators and the
real multiprocessing executor: stride assignments, the maxpage split,
balanced range cuts and the repartitioning of leftover intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import SchedulingError


@dataclass(frozen=True)
class PageAssignment:
    """Pages ``{p | lo <= p <= hi and p mod stride == residue}``."""

    lo: int
    hi: int
    stride: int
    residue: int

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise SchedulingError("stride must be >= 1")
        if not 0 <= self.residue < self.stride:
            raise SchedulingError("residue out of range")

    def pages(self) -> range:
        """The assigned page numbers, ascending."""
        first = self.first_at_or_after(self.lo)
        if first is None:
            return range(0)
        return range(first, self.hi + 1, self.stride)

    def first_at_or_after(self, p: int) -> int | None:
        """Smallest assigned page >= ``p``, or None when exhausted."""
        start = max(p, self.lo)
        offset = (start - self.residue) % self.stride
        candidate = start if offset == 0 else start + (self.stride - offset)
        return candidate if candidate <= self.hi else None

    def count(self) -> int:
        """Number of pages in this assignment."""
        return len(self.pages())


def page_assignments(n_pages: int, parallelism: int) -> list[PageAssignment]:
    """Initial page partition of ``n_pages`` over ``parallelism`` slaves."""
    if n_pages < 0:
        raise SchedulingError("n_pages must be >= 0")
    if parallelism < 1:
        raise SchedulingError("parallelism must be >= 1")
    return [
        PageAssignment(lo=0, hi=n_pages - 1, stride=parallelism, residue=i)
        for i in range(parallelism)
    ]


def maxpage_split(
    cursors: Sequence[int], n_pages: int
) -> int:
    """Figure 5: the adjustment boundary from the slaves' cursors.

    Each cursor is a slave's next-unclaimed page.  Every page below the
    returned boundary stays with the old strides; pages at or above it
    move to the new strides.
    """
    if not cursors:
        return n_pages
    return min(max(cursors), n_pages)


def adjusted_assignments(
    old: Sequence[PageAssignment],
    cursors: Sequence[int],
    n_pages: int,
    new_parallelism: int,
) -> tuple[int, list[list[PageAssignment]]]:
    """Apply the Figure-5 protocol to a set of page assignments.

    Args:
        old: current assignment of slave i at index i.
        cursors: slave i's next-unclaimed page.
        n_pages: total pages of the scan.
        new_parallelism: the new degree ``n'``.

    Returns ``(maxpage, per_slave)`` where ``per_slave[i]`` is the new
    assignment list for slave ``i`` (``max(len(old), n')`` entries —
    shrunk slaves keep only their old remainder, new slaves get only a
    post-maxpage stride).
    """
    if len(old) != len(cursors):
        raise SchedulingError("one cursor per old assignment required")
    maxpage = maxpage_split(cursors, n_pages)
    total_slaves = max(len(old), new_parallelism)
    per_slave: list[list[PageAssignment]] = []
    for i in range(total_slaves):
        assignments: list[PageAssignment] = []
        if i < len(old) and maxpage - 1 >= old[i].lo:
            clamped = PageAssignment(
                lo=old[i].lo,
                hi=min(old[i].hi, maxpage - 1),
                stride=old[i].stride,
                residue=old[i].residue,
            )
            assignments.append(clamped)
        if i < new_parallelism and maxpage <= n_pages - 1:
            assignments.append(
                PageAssignment(
                    lo=maxpage, hi=n_pages - 1, stride=new_parallelism, residue=i
                )
            )
        per_slave.append(assignments)
    return maxpage, per_slave


def readjust_assignments(
    current: Sequence[Sequence[PageAssignment]],
    cursors: Sequence[int],
    n_pages: int,
    new_parallelism: int,
) -> tuple[int, list[list[PageAssignment]]]:
    """Generalized Figure-5 step for slaves holding *segment lists*.

    After one adjustment a slave owns several stride segments, so a
    second adjustment must clamp every remaining segment at
    ``maxpage - 1`` and append the new post-maxpage stride.  Returns
    ``(maxpage, per_slave)`` with ``max(len(current), n')`` entries;
    entry ``i`` is the full new segment list for the slave at position
    ``i`` (new positions beyond ``len(current)`` are fresh slaves).
    """
    if len(current) != len(cursors):
        raise SchedulingError("one cursor per live slave required")
    maxpage = maxpage_split(cursors, n_pages)
    total = max(len(current), new_parallelism)
    per_slave: list[list[PageAssignment]] = []
    for i in range(total):
        segments: list[PageAssignment] = []
        if i < len(current):
            for seg in current[i]:
                if seg.lo <= maxpage - 1:
                    segments.append(
                        PageAssignment(
                            lo=seg.lo,
                            hi=min(seg.hi, maxpage - 1),
                            stride=seg.stride,
                            residue=seg.residue,
                        )
                    )
        if i < new_parallelism and maxpage <= n_pages - 1:
            segments.append(
                PageAssignment(
                    lo=maxpage, hi=n_pages - 1, stride=new_parallelism, residue=i
                )
            )
        per_slave.append(segments)
    return maxpage, per_slave


# ---------------------------------------------------------------------------
# range partitioning


def balanced_ranges(
    separators: Sequence[Any], parallelism: int
) -> list[tuple[Any, Any] | None]:
    """Cut balanced key ranges from ordered separator keys.

    ``separators`` come from an equi-depth histogram or a B+tree root;
    adjacent separators bound roughly equal row counts, so slicing them
    evenly yields a balanced partition.  Returns ``parallelism``
    ``(low, high)`` interval bounds (high of slot i = low of slot i+1;
    scan i uses ``low <= key < high`` except the last, which is
    unbounded above).  ``None`` entries mean "no work" (more slaves
    than separators).
    """
    if parallelism < 1:
        raise SchedulingError("parallelism must be >= 1")
    keys = list(separators)
    if not keys:
        return [None] * parallelism
    out: list[tuple[Any, Any] | None] = []
    n = len(keys)
    for i in range(parallelism):
        lo_index = (i * n) // parallelism
        hi_index = ((i + 1) * n) // parallelism
        if lo_index >= hi_index:
            out.append(None)
            continue
        low = keys[lo_index] if i > 0 else None
        high = keys[hi_index] if i < parallelism - 1 else None
        out.append((low, high))
    return out


def intervals_from_separators(
    low: int,
    high: int,
    separators: Sequence[int],
    parallelism: int,
) -> list[list[tuple[int, int]]]:
    """Initial range partition of ``[low, high]`` using distribution info.

    "We try to find a balanced range partition with data distribution
    information in the system catalog or in the root node of an index"
    (Section 2.4).  ``separators`` are ordered keys bounding roughly
    equal row counts (a B+tree root's separator keys or an equi-depth
    histogram); the cut points are chosen from them so each slave gets
    a near-equal *row* share even when keys are skewed.  Falls back to
    an even key-space split when no separators land inside the range.
    """
    if parallelism < 1:
        raise SchedulingError("parallelism must be >= 1")
    if low > high:
        raise SchedulingError("low must be <= high")
    inside = sorted({int(k) for k in separators if low < k <= high})
    if not inside or parallelism == 1:
        return repartition_intervals([(low, high)], parallelism)
    cut_points = []
    for i in range(1, parallelism):
        cut = inside[(i * len(inside)) // parallelism]
        if not cut_points or cut > cut_points[-1]:
            cut_points.append(cut)
    shares: list[list[tuple[int, int]]] = []
    start = low
    for cut in cut_points:
        shares.append([(start, cut - 1)] if start <= cut - 1 else [])
        start = cut
    shares.append([(start, high)] if start <= high else [])
    while len(shares) < parallelism:
        shares.append([])
    return shares


def repartition_intervals(
    remaining: Sequence[tuple[int, int]], parallelism: int
) -> list[list[tuple[int, int]]]:
    """Figure 6: deal leftover ``(lo, hi)`` key intervals to n' slaves.

    Intervals are integer-keyed and inclusive.  Each slave receives a
    near-equal share of the remaining keys and "may get more than one
    intervals to scan instead of only one contiguous interval".
    """
    if parallelism < 1:
        raise SchedulingError("parallelism must be >= 1")
    ordered = sorted((lo, hi) for lo, hi in remaining if lo <= hi)
    total = sum(hi - lo + 1 for lo, hi in ordered)
    shares: list[list[tuple[int, int]]] = [[] for __ in range(parallelism)]
    if not total:
        return shares
    base, extra = divmod(total, parallelism)
    quotas = [base + (1 if i < extra else 0) for i in range(parallelism)]
    slot = 0
    for lo, hi in ordered:
        while lo <= hi:
            while slot < parallelism and quotas[slot] == 0:
                slot += 1
            if slot >= parallelism:  # pragma: no cover - quotas sum to total
                raise SchedulingError("interval accounting error")
            take = min(quotas[slot], hi - lo + 1)
            shares[slot].append((lo, lo + take - 1))
            quotas[slot] -= take
            lo += take
    return shares
