"""A real master/slave parallel scan executor on ``multiprocessing``.

This is the paper's execution architecture made concrete: one master
process coordinates N slave processes over pipes and a report queue.
Slaves run page-partitioned sequential scans (or range-partitioned
index scans) and the master can change a running scan's degree of
parallelism with the literal Figure-5 / Figure-6 protocols:

1. master sends :class:`~repro.parallel.protocol.Signal` to every slave;
2. each slave finishes its in-hand page, reports its position
   (``curpage`` / remaining intervals) and pauses;
3. the master computes ``maxpage`` (or repartitions the intervals) and
   broadcasts the new assignments; paused slaves resume and freshly
   spawned slaves join.

On this grid the Python GIL is irrelevant — slaves are processes — but
a single-core host obviously gains no wall-clock speedup; the executor
demonstrates *correctness* of the protocols (every page scanned exactly
once across adjustments), while the simulators carry the performance
experiments.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..catalog.schema import Row
from ..errors import ProtocolError
from ..executor.expressions import Expression
from ..storage.btree import BTreeIndex
from ..storage.heap import HeapFile
from . import protocol as msg
from .partition import (
    PageAssignment,
    intervals_from_separators,
    page_assignments,
    readjust_assignments,
    repartition_intervals,
)

_BATCH_PAGES = 16


@dataclass
class ScanReport:
    """Outcome of one parallel scan."""

    rows: list[Row]
    pages_read: int
    parallelism_history: list[int] = field(default_factory=list)
    adjustments: int = 0


# ---------------------------------------------------------------------------
# slave processes


def _page_slave(
    slave_id: int,
    heap: HeapFile,
    predicate: Expression | None,
    assignments: list[PageAssignment],
    command_conn,
    report_queue,
) -> None:
    """Slave main loop: page-partitioned sequential scan."""
    try:
        bound = predicate.bind(heap.schema) if predicate is not None else None
        pending = list(assignments)
        cursor = 0
        generation = 0
        rows: list[Row] = []
        pages = 0
        total_pages = 0
        total_rows = 0

        def flush() -> None:
            nonlocal rows, pages, total_pages, total_rows
            if rows or pages:
                report_queue.put(msg.Rows(slave_id, tuple(rows), pages))
                total_pages += pages
                total_rows += len(rows)
                rows, pages = [], 0

        def next_page() -> int | None:
            nonlocal pending, cursor
            while pending:
                page = pending[0].first_at_or_after(cursor)
                if page is None:
                    pending.pop(0)
                    continue
                cursor = page + 1
                return page
            return None

        def handle_commands(block: bool) -> bool:
            """Process pending commands; returns False on Shutdown."""
            nonlocal pending, generation
            while block or command_conn.poll():
                command = command_conn.recv()
                if isinstance(command, msg.Shutdown):
                    return False
                if isinstance(command, msg.Signal):
                    # Figure 5 step 2: report position, then pause until
                    # the new assignment arrives.
                    flush()
                    report_queue.put(msg.CurPage(slave_id, cursor, generation))
                    block = True
                    continue
                if isinstance(command, msg.NewPageAssignment):
                    pending = list(command.assignments)
                    generation = command.generation
                    block = False
                    continue
                raise ProtocolError(f"unexpected command: {command!r}")
            return True

        alive = True
        while alive:
            if not handle_commands(block=False):
                break
            page = next_page()
            if page is None:
                flush()
                report_queue.put(
                    msg.SlaveDone(slave_id, total_pages, total_rows, generation)
                )
                # Wait for the shutdown (or a late adjustment reviving us).
                if not handle_commands(block=True):
                    break
                continue
            for __, row in heap.scan_pages([page]):
                if bound is None or bound(row):
                    rows.append(row)
            pages += 1
            if pages >= _BATCH_PAGES:
                flush()
    except Exception:  # pragma: no cover - surfaced via SlaveError
        report_queue.put(msg.SlaveError(slave_id, traceback.format_exc()))


def _range_slave(
    slave_id: int,
    heap: HeapFile,
    index: BTreeIndex,
    predicate: Expression | None,
    intervals: list[tuple[int, int]],
    command_conn,
    report_queue,
) -> None:
    """Slave main loop: range-partitioned index scan over int keys."""
    try:
        bound = predicate.bind(heap.schema) if predicate is not None else None
        pending = [(lo, hi) for lo, hi in intervals if lo <= hi]
        generation = 0
        rows: list[Row] = []
        fetched = 0
        total_fetched = 0
        total_rows = 0

        def flush() -> None:
            nonlocal rows, fetched, total_fetched, total_rows
            if rows or fetched:
                report_queue.put(msg.Rows(slave_id, tuple(rows), fetched))
                total_fetched += fetched
                total_rows += len(rows)
                rows, fetched = [], 0

        def next_key() -> int | None:
            nonlocal pending
            while pending:
                lo, hi = pending[0]
                if lo > hi:
                    pending.pop(0)
                    continue
                pending[0] = (lo + 1, hi)
                return lo
            return None

        def handle_commands(block: bool) -> bool:
            nonlocal pending, generation
            while block or command_conn.poll():
                command = command_conn.recv()
                if isinstance(command, msg.Shutdown):
                    return False
                if isinstance(command, msg.Signal):
                    flush()
                    remaining = tuple((lo, hi) for lo, hi in pending if lo <= hi)
                    report_queue.put(
                        msg.RemainingIntervals(slave_id, remaining, generation)
                    )
                    pending = []
                    block = True
                    continue
                if isinstance(command, msg.NewIntervals):
                    pending = [(lo, hi) for lo, hi in command.intervals]
                    generation = command.generation
                    block = False
                    continue
                raise ProtocolError(f"unexpected command: {command!r}")
            return True

        alive = True
        while alive:
            if not handle_commands(block=False):
                break
            key = next_key()
            if key is None:
                flush()
                report_queue.put(
                    msg.SlaveDone(slave_id, total_fetched, total_rows, generation)
                )
                if not handle_commands(block=True):
                    break
                continue
            for __, rid in index.range_scan(key, key):
                row = heap.fetch(rid)
                fetched += 1
                if bound is None or bound(row):
                    rows.append(row)
            if fetched >= _BATCH_PAGES:
                flush()
    except Exception:  # pragma: no cover
        report_queue.put(msg.SlaveError(slave_id, traceback.format_exc()))


# ---------------------------------------------------------------------------
# master


@dataclass
class AdjustmentPlan:
    """Adjust the scan to ``parallelism`` once ``after_pages`` pages done."""

    after_pages: int
    parallelism: int


class _MasterBase:
    """Shared master plumbing for both partitioning styles."""

    def __init__(self, parallelism: int) -> None:
        if parallelism < 1:
            raise ProtocolError("parallelism must be >= 1")
        self._ctx = mp.get_context("fork")
        self.parallelism = parallelism
        self.report_queue = self._ctx.Queue()
        self._conns: dict[int, Any] = {}
        self._procs: dict[int, Any] = {}
        self._done: set[int] = set()
        self._buffer: list = []
        self._generation = 0
        #: slaves spawned at generation g report that g in SlaveDone.
        self._spawn_generation: dict[int, int] = {}

    def _spawn(self, slave_id: int, target, args) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=target, args=(*args, child, self.report_queue), daemon=True
        )
        proc.start()
        child.close()
        self._conns[slave_id] = parent
        self._procs[slave_id] = proc
        self._done.discard(slave_id)

    def _broadcast(self, message) -> None:
        for conn in self._conns.values():
            conn.send(message)

    def _shutdown(self) -> None:
        for conn in self._conns.values():
            try:
                conn.send(msg.Shutdown())
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs.values():
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
        for conn in self._conns.values():
            conn.close()

    def _collect_reports(self, expected_type, live: list) -> dict:
        """One *fresh* position report per live slave, keyed by slave id.

        A report whose ``generation`` predates the slave's latest
        assignment is a straggler from before a completed adjustment
        round; applying it would rewind the slave's position and
        re-scan pages the new partition already covers, so it is
        discarded and the master keeps waiting for the fresh one.
        Duplicates and reports from finished slaves are dropped the
        same way; row traffic arriving meanwhile is buffered for the
        main loop.
        """
        wanted = set(live)
        reports: dict[int, Any] = {}
        buffered: list = []
        while wanted - reports.keys():
            message = self.report_queue.get(timeout=60)
            if isinstance(message, msg.SlaveError):
                raise ProtocolError(message.message)
            if isinstance(message, expected_type):
                if (
                    message.slave_id in wanted
                    and message.slave_id not in reports
                    and message.generation
                    >= self._min_generation(message.slave_id)
                ):
                    reports[message.slave_id] = message
                continue
            buffered.append(message)
        self._buffer.extend(buffered)
        return reports

    def _next_message(self):
        if self._buffer:
            return self._buffer.pop(0)
        return self.report_queue.get(timeout=60)

    def _min_generation(self, slave_id: int) -> int:
        """The generation a report from this slave must carry to count.

        A slave that took part in adjustment g (or was spawned at g)
        reports generation g; an older CurPage, RemainingIntervals or
        SlaveDone is stale — the slave was handed new work after
        sending it.
        """
        return self._spawn_generation.get(slave_id, 0)


class ParallelSeqScan(_MasterBase):
    """Page-partitioned parallel sequential scan with dynamic adjustment.

    Args:
        heap: relation to scan.
        predicate: optional selection.
        parallelism: initial number of slaves.
        adjustments: optional schedule of mid-scan parallelism changes,
            triggered by total pages processed.
    """

    def __init__(
        self,
        heap: HeapFile,
        predicate: Expression | None = None,
        *,
        parallelism: int = 2,
        adjustments: Sequence[AdjustmentPlan] = (),
    ) -> None:
        super().__init__(parallelism)
        self.heap = heap
        self.predicate = predicate
        self.adjustments = sorted(adjustments, key=lambda a: a.after_pages)
        self._assignments: dict[int, list[PageAssignment]] = {}

    def run(self) -> ScanReport:
        """Execute the scan to completion; returns rows and statistics."""
        n_pages = self.heap.page_count
        initial = page_assignments(n_pages, self.parallelism)
        for i, assignment in enumerate(initial):
            self._assignments[i] = [assignment]
            self._spawn(
                i, _page_slave, (i, self.heap, self.predicate, [assignment])
            )
        report = ScanReport(rows=[], pages_read=0)
        report.parallelism_history.append(self.parallelism)
        pending_adjustments = list(self.adjustments)
        while len(self._done) < len(self._procs):
            message = self._next_message()
            if isinstance(message, msg.SlaveError):
                self._shutdown()
                raise ProtocolError(message.message)
            if isinstance(message, msg.Rows):
                report.rows.extend(message.rows)
                report.pages_read += message.pages_read
            elif isinstance(message, msg.SlaveDone):
                if message.generation >= self._min_generation(message.slave_id):
                    self._done.add(message.slave_id)
            elif isinstance(message, (msg.CurPage, msg.RemainingIntervals)):
                if message.generation >= self._min_generation(message.slave_id):
                    raise ProtocolError(f"unsolicited report: {message!r}")
                # Stale straggler from before a completed adjustment
                # round; the round already collected a fresh report.
            if (
                pending_adjustments
                and report.pages_read >= pending_adjustments[0].after_pages
                and len(self._done) < len(self._procs)
            ):
                plan = pending_adjustments.pop(0)
                if plan.parallelism != self.parallelism:
                    self._adjust(plan.parallelism, n_pages)
                    report.adjustments += 1
                    report.parallelism_history.append(plan.parallelism)
        self._shutdown()
        return report

    def _adjust(self, new_parallelism: int, n_pages: int) -> None:
        """The Figure-5 maxpage protocol, for real."""
        live = [i for i in sorted(self._procs) if i not in self._done]
        for slave_id in live:
            self._conns[slave_id].send(msg.Signal())
        reports = self._collect_reports(msg.CurPage, live)
        current = [self._assignments[i] for i in live]
        cursors = [reports[i].curpage for i in live]
        maxpage, per_slave = readjust_assignments(
            current, cursors, n_pages, new_parallelism
        )
        self._generation += 1
        # per_slave is indexed by live position; position i takes the
        # new-stride residue i.
        for index, slave_id in enumerate(live):
            new_assignment = per_slave[index] if index < len(per_slave) else []
            self._assignments[slave_id] = new_assignment
            self._spawn_generation[slave_id] = self._generation
            self._conns[slave_id].send(
                msg.NewPageAssignment(
                    maxpage,
                    new_parallelism,
                    tuple(new_assignment),
                    self._generation,
                )
            )
        # Spawn brand-new slaves for residues beyond the old count.
        for residue in range(len(live), new_parallelism):
            assignment = per_slave[residue]
            slave_id = max(self._procs) + 1
            self._assignments[slave_id] = assignment
            self._spawn_generation[slave_id] = 0  # fresh slaves report gen 0
            self._spawn(
                slave_id,
                _page_slave,
                (slave_id, self.heap, self.predicate, assignment),
            )
        self.parallelism = new_parallelism


class ParallelIndexScan(_MasterBase):
    """Range-partitioned parallel index scan with dynamic adjustment.

    Keys must be integers.  The initial partition is *balanced using
    the index root's separator keys* (the paper's "data distribution
    information ... in the root node of an index"), so skewed key
    distributions still hand each slave a near-equal row share; set
    ``use_index_distribution=False`` for a plain even key-space split.
    The Figure-6 protocol rebalances leftovers on adjustment.
    """

    def __init__(
        self,
        heap: HeapFile,
        index: BTreeIndex,
        *,
        low: int,
        high: int,
        predicate: Expression | None = None,
        parallelism: int = 2,
        adjustments: Sequence[AdjustmentPlan] = (),
        use_index_distribution: bool = True,
        separators: Sequence[int] | None = None,
    ) -> None:
        super().__init__(parallelism)
        if low > high:
            raise ProtocolError("low must be <= high")
        self.heap = heap
        self.index = index
        self.low = low
        self.high = high
        self.predicate = predicate
        self.adjustments = sorted(adjustments, key=lambda a: a.after_pages)
        self.use_index_distribution = use_index_distribution
        self.separators = tuple(separators) if separators is not None else None

    def initial_shares(self) -> list[list[tuple[int, int]]]:
        """The initial per-slave interval lists.

        Preference order for distribution info (Section 2.4): an
        explicit equi-depth histogram from the system catalog (row
        mass, handles duplicate-heavy skew), then the index root's
        separator keys (distinct-key mass), then an even key-space
        split.
        """
        if self.separators:
            return intervals_from_separators(
                self.low, self.high, self.separators, self.parallelism
            )
        if self.use_index_distribution:
            separators = self.index.root_separators()
            if separators:
                return intervals_from_separators(
                    self.low, self.high, separators, self.parallelism
                )
        return repartition_intervals([(self.low, self.high)], self.parallelism)

    def run(self) -> ScanReport:
        """Execute the index scan to completion; returns rows + stats."""
        shares = self.initial_shares()
        for i, intervals in enumerate(shares):
            self._spawn(
                i,
                _range_slave,
                (i, self.heap, self.index, self.predicate, intervals),
            )
        report = ScanReport(rows=[], pages_read=0)
        report.parallelism_history.append(self.parallelism)
        pending_adjustments = list(self.adjustments)
        while len(self._done) < len(self._procs):
            message = self._next_message()
            if isinstance(message, msg.SlaveError):
                self._shutdown()
                raise ProtocolError(message.message)
            if isinstance(message, msg.Rows):
                report.rows.extend(message.rows)
                report.pages_read += message.pages_read
            elif isinstance(message, msg.SlaveDone):
                if message.generation >= self._min_generation(message.slave_id):
                    self._done.add(message.slave_id)
            elif isinstance(message, (msg.CurPage, msg.RemainingIntervals)):
                if message.generation >= self._min_generation(message.slave_id):
                    raise ProtocolError(f"unsolicited report: {message!r}")
            if (
                pending_adjustments
                and report.pages_read >= pending_adjustments[0].after_pages
                and len(self._done) < len(self._procs)
            ):
                plan = pending_adjustments.pop(0)
                if plan.parallelism != self.parallelism:
                    self._adjust(plan.parallelism)
                    report.adjustments += 1
                    report.parallelism_history.append(plan.parallelism)
        self._shutdown()
        return report

    def _adjust(self, new_parallelism: int) -> None:
        """The Figure-6 interval protocol, for real."""
        live = [i for i in sorted(self._procs) if i not in self._done]
        for slave_id in live:
            self._conns[slave_id].send(msg.Signal())
        reports = self._collect_reports(msg.RemainingIntervals, live)
        remaining: list[tuple[int, int]] = []
        for slave_id in live:
            remaining.extend(reports[slave_id].intervals)
        shares = repartition_intervals(remaining, new_parallelism)
        self._generation += 1
        for index, slave_id in enumerate(live):
            intervals = shares[index] if index < len(shares) else []
            self._spawn_generation[slave_id] = self._generation
            self._conns[slave_id].send(
                msg.NewIntervals(new_parallelism, tuple(intervals), self._generation)
            )
        for residue in range(len(live), new_parallelism):
            slave_id = max(self._procs) + 1
            self._spawn_generation[slave_id] = 0
            self._spawn(
                slave_id,
                _range_slave,
                (slave_id, self.heap, self.index, self.predicate, shares[residue]),
            )
        self.parallelism = new_parallelism
