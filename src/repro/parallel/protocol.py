"""Master/slave message types (Figures 5 and 6).

The real multiprocessing executor and its tests speak these messages.
Everything is a small picklable dataclass; the master sends commands
down per-slave pipes and slaves reply on a shared report queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .partition import PageAssignment


# -- master -> slave ----------------------------------------------------------


@dataclass(frozen=True)
class Signal:
    """Step 1 of either protocol: 'report your position and pause-point'."""


@dataclass(frozen=True)
class NewPageAssignment:
    """Figure 5 step 3: maxpage + the slave's updated stride list.

    ``generation`` counts adjustments; slaves tag later reports with it
    so the master can discard reports that predate an adjustment.
    """

    maxpage: int
    parallelism: int
    assignments: tuple[PageAssignment, ...]
    generation: int = 0


@dataclass(frozen=True)
class NewIntervals:
    """Figure 6 step 3: the slave's repartitioned key intervals."""

    parallelism: int
    intervals: tuple[tuple[int, int], ...]
    generation: int = 0


@dataclass(frozen=True)
class Shutdown:
    """Terminate the slave process."""


# -- slave -> master -----------------------------------------------------------


@dataclass(frozen=True)
class CurPage:
    """Figure 5 step 2: the slave's current (next unclaimed) page.

    ``generation`` is the adjustment generation the slave had seen when
    it reported.  The master discards a CurPage older than the slave's
    spawn generation — applying one would repartition from a position
    that predates a completed adjustment round and double-scan pages.
    """

    slave_id: int
    curpage: int
    generation: int = 0


@dataclass(frozen=True)
class RemainingIntervals:
    """Figure 6 step 2: intervals the slave has not yet scanned.

    ``generation`` plays the same staleness role as on :class:`CurPage`.
    """

    slave_id: int
    intervals: tuple[tuple[int, int], ...]
    generation: int = 0


@dataclass(frozen=True)
class Rows:
    """A batch of qualifying rows produced by a slave."""

    slave_id: int
    rows: tuple = field(default_factory=tuple)
    pages_read: int = 0


@dataclass(frozen=True)
class SlaveDone:
    """The slave has exhausted its assignment.

    ``generation`` is the adjustment generation the slave last saw; the
    master ignores a SlaveDone older than its current generation (the
    slave was re-assigned work after sending it).
    """

    slave_id: int
    pages_read: int
    rows_produced: int
    generation: int = 0


@dataclass(frozen=True)
class SlaveError:
    """The slave died; ``message`` is the formatted traceback."""

    slave_id: int
    message: str


MasterMessage = Signal | NewPageAssignment | NewIntervals | Shutdown
SlaveMessage = CurPage | RemainingIntervals | Rows | SlaveDone | SlaveError


def orphan_residues(old_parallelism: int, new_parallelism: int) -> list[int]:
    """Residues needing *new* slave processes after growing to n'."""
    return [i for i in range(old_parallelism, new_parallelism)]
