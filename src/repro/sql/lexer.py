"""Tokenizer for the SQL subset.

Supported lexemes: identifiers (optionally ``rel.col`` qualified),
integer/float/string literals, comparison operators, parentheses,
commas, ``*`` and the keywords the parser understands.  Case-insensitive
keywords, single-quoted strings with ``''`` escaping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import ReproError


class SqlError(ReproError):
    """A SQL string could not be tokenized, parsed or translated."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "GROUP",
    "ORDER",
    "BY",
    "LIMIT",
    "AS",
    "BETWEEN",
    "ASC",
    "DESC",
    "NULL",
    "IS",
}

#: Token kinds.
KEYWORD = "keyword"
IDENT = "ident"
NUMBER = "number"
STRING = "string"
OPERATOR = "operator"
PUNCT = "punct"
END = "end"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<operator><=|>=|!=|<>|=|<|>)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<punct>[(),*-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword."""
        return self.kind == KEYWORD and self.value == word.upper()

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string.

    Raises:
        SqlError: on an unrecognized character.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character {sql[position]!r}", position)
        if match.lastgroup != "ws":
            text = match.group()
            kind = match.lastgroup
            if kind == "ident" and text.upper() in KEYWORDS and "." not in text:
                tokens.append(Token(KEYWORD, text.upper(), position))
            elif kind == "operator" and text == "<>":
                tokens.append(Token(OPERATOR, "!=", position))
            else:
                assert kind is not None
                tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token(END, "", len(sql)))
    return tokens


def unquote(literal: str) -> str:
    """Strip quotes from a string literal and unescape ``''``."""
    return literal[1:-1].replace("''", "'")


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens except the trailing END sentinel."""
    for token in tokens:
        if token.kind != END:
            yield token
