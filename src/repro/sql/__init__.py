"""A SQL front end for the reproduction.

Supports single-block ``SELECT`` statements over the catalog:
projection with aliases, aggregates (COUNT/SUM/AVG/MIN/MAX) with GROUP
BY, multi-table FROM with equi-join extraction from the WHERE clause,
BETWEEN / IS NULL / boolean conditions, ORDER BY (ASC/DESC) and LIMIT::

    from repro.sql import run_sql

    rows = run_sql(
        "SELECT a, count(*) AS n FROM r1, r2 "
        "WHERE b1 = b2 AND a BETWEEN 0 AND 99 "
        "GROUP BY a ORDER BY n DESC LIMIT 10",
        catalog,
    )
"""

from .ast import SelectStatement
from .lexer import SqlError, Token, tokenize
from .parser import parse
from .translate import TranslatedQuery, run_sql, translate

__all__ = [
    "SelectStatement",
    "SqlError",
    "Token",
    "TranslatedQuery",
    "parse",
    "run_sql",
    "tokenize",
    "translate",
]
