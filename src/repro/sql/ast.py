"""Abstract syntax for the SQL subset.

The parser produces these nodes; the translator lowers them onto
``repro.optimizer.Query`` plus executor post-operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ColumnName:
    """A possibly-qualified column reference (``col`` or ``rel.col``)."""

    name: str
    relation: str | None = None

    def __repr__(self) -> str:
        if self.relation:
            return f"{self.relation}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Literal:
    """An integer, float, string or NULL literal."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` where operands are columns or literals."""

    op: str  # = != < <= > >=
    left: ColumnName | Literal
    right: ColumnName | Literal


@dataclass(frozen=True)
class IsNull:
    """``col IS [NOT] NULL``."""

    column: ColumnName
    negated: bool = False


@dataclass(frozen=True)
class Between:
    """``col BETWEEN low AND high``."""

    column: ColumnName
    low: Literal
    high: Literal


@dataclass(frozen=True)
class Not:
    operand: "Condition"


@dataclass(frozen=True)
class And:
    operands: tuple["Condition", ...]


@dataclass(frozen=True)
class Or:
    operands: tuple["Condition", ...]


Condition = Comparison | IsNull | Between | Not | And | Or


@dataclass(frozen=True)
class Aggregate:
    """``func(col)`` or ``COUNT(*)`` in the select list."""

    function: str  # count / sum / avg / min / max
    column: ColumnName | None
    alias: str | None = None


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column (with optional alias)."""

    column: ColumnName
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    column: ColumnName
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed ``SELECT`` statement."""

    star: bool = False
    items: list[SelectItem] = field(default_factory=list)
    aggregates: list[Aggregate] = field(default_factory=list)
    tables: list[str] = field(default_factory=list)
    where: Condition | None = None
    group_by: list[ColumnName] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
