"""Recursive-descent parser for the SQL subset.

Grammar (keywords case-insensitive)::

    select    := SELECT select_list FROM table_list
                 [WHERE condition] [GROUP BY columns]
                 [ORDER BY order_items] [LIMIT integer]
    select_list := '*' | item (',' item)*
    item      := agg '(' ('*' | column) ')' [AS ident]
               | column [AS ident]
    condition := or_term
    or_term   := and_term (OR and_term)*
    and_term  := not_term (AND not_term)*
    not_term  := NOT not_term | '(' condition ')' | predicate
    predicate := column IS [NOT] NULL
               | operand op operand
               | column BETWEEN literal AND literal
    operand   := column | literal
"""

from __future__ import annotations

from . import ast
from .lexer import (
    END,
    IDENT,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    SqlError,
    Token,
    tokenize,
    unquote,
)

_AGG_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlError(
                f"expected {word}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_punct(self, char: str) -> bool:
        if self.current.kind == PUNCT and self.current.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise SqlError(
                f"expected {char!r}, found {self.current.value!r}",
                self.current.position,
            )

    def expect_ident(self) -> str:
        if self.current.kind != IDENT:
            raise SqlError(
                f"expected identifier, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance().value

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        statement = ast.SelectStatement()
        self._select_list(statement)
        self.expect_keyword("FROM")
        statement.tables.append(self.expect_ident())
        while self.accept_punct(","):
            statement.tables.append(self.expect_ident())
        if self.accept_keyword("WHERE"):
            statement.where = self._condition()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            statement.group_by.append(self._column())
            while self.accept_punct(","):
                statement.group_by.append(self._column())
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            statement.order_by.append(self._order_item())
            while self.accept_punct(","):
                statement.order_by.append(self._order_item())
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != NUMBER or "." in token.value:
                raise SqlError("LIMIT needs an integer", token.position)
            statement.limit = int(token.value)
        if self.current.kind != END:
            raise SqlError(
                f"unexpected trailing input: {self.current.value!r}",
                self.current.position,
            )
        return statement

    def _select_list(self, statement: ast.SelectStatement) -> None:
        if self.accept_punct("*"):
            statement.star = True
            return
        self._select_item(statement)
        while self.accept_punct(","):
            self._select_item(statement)

    def _select_item(self, statement: ast.SelectStatement) -> None:
        token = self.current
        if (
            token.kind == IDENT
            and token.value.upper() in _AGG_FUNCTIONS
            and self.tokens[self.position + 1].kind == PUNCT
            and self.tokens[self.position + 1].value == "("
        ):
            function = self.advance().value.lower()
            self.expect_punct("(")
            if self.accept_punct("*"):
                if function != "count":
                    raise SqlError(f"{function}(*) is not valid", token.position)
                column = None
            else:
                column = self._column()
            self.expect_punct(")")
            alias = self.expect_ident() if self.accept_keyword("AS") else None
            statement.aggregates.append(ast.Aggregate(function, column, alias))
            return
        column = self._column()
        alias = self.expect_ident() if self.accept_keyword("AS") else None
        statement.items.append(ast.SelectItem(column, alias))

    def _column(self) -> ast.ColumnName:
        name = self.expect_ident()
        if "." in name:
            relation, column = name.split(".", 1)
            return ast.ColumnName(column, relation)
        return ast.ColumnName(name)

    def _order_item(self) -> ast.OrderItem:
        column = self._column()
        if self.accept_keyword("DESC"):
            return ast.OrderItem(column, ascending=False)
        self.accept_keyword("ASC")
        return ast.OrderItem(column, ascending=True)

    # -- conditions ---------------------------------------------------------------

    def _condition(self) -> ast.Condition:
        return self._or_term()

    def _or_term(self) -> ast.Condition:
        terms = [self._and_term()]
        while self.accept_keyword("OR"):
            terms.append(self._and_term())
        if len(terms) == 1:
            return terms[0]
        return ast.Or(tuple(terms))

    def _and_term(self) -> ast.Condition:
        terms = [self._not_term()]
        while self.accept_keyword("AND"):
            terms.append(self._not_term())
        if len(terms) == 1:
            return terms[0]
        return ast.And(tuple(terms))

    def _not_term(self) -> ast.Condition:
        if self.accept_keyword("NOT"):
            return ast.Not(self._not_term())
        if self.accept_punct("("):
            condition = self._condition()
            self.expect_punct(")")
            return condition
        return self._predicate()

    def _predicate(self) -> ast.Condition:
        left = self._operand()
        if isinstance(left, ast.ColumnName) and self.current.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        if isinstance(left, ast.ColumnName) and self.current.is_keyword("BETWEEN"):
            self.advance()
            low = self._literal()
            self.expect_keyword("AND")
            high = self._literal()
            return ast.Between(left, low, high)
        if self.current.kind != OPERATOR:
            raise SqlError(
                f"expected a comparison, found {self.current.value!r}",
                self.current.position,
            )
        op = self.advance().value
        right = self._operand()
        return ast.Comparison(op, left, right)

    def _operand(self) -> ast.ColumnName | ast.Literal:
        token = self.current
        if token.kind == IDENT:
            return self._column()
        return self._literal()

    def _literal(self) -> ast.Literal:
        token = self.advance()
        if token.kind == PUNCT and token.value == "-":
            inner = self._literal()
            if not isinstance(inner.value, (int, float)) or inner.value is None:
                raise SqlError("'-' must precede a number", token.position)
            return ast.Literal(-inner.value)
        if token.kind == NUMBER:
            if "." in token.value:
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.kind == STRING:
            return ast.Literal(unquote(token.value))
        if token.is_keyword("NULL"):
            return ast.Literal(None)
        raise SqlError(f"expected a literal, found {token.value!r}", token.position)


def parse(sql: str) -> ast.SelectStatement:
    """Parse one SELECT statement.

    Raises:
        SqlError: on any lexical or syntactic problem.
    """
    return _Parser(tokenize(sql)).parse()
