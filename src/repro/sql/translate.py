"""Lower parsed SQL onto the optimizer and executor.

The translator resolves columns against the catalog, splits the WHERE
clause into pushed-down per-relation selections, equi-join predicates
and a residual filter, builds the :class:`~repro.optimizer.Query` for
the join optimizer, and stacks the post-operators (residual filter,
aggregation, projection, sort, limit) on top of the optimized join
tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..config import MachineConfig
from ..executor import expressions as ex
from ..executor.operators.aggregate import AggregateSpec
from ..optimizer.enumeration import enumerate_space
from ..optimizer.query import JoinPredicate, Query
from ..plans import nodes as pn
from ..plans.costing import CostModel, estimate_plan
from . import ast
from .lexer import SqlError
from .parser import parse


@dataclass
class TranslatedQuery:
    """The lowering of one SELECT statement."""

    statement: ast.SelectStatement
    query: Query
    residual: ex.Expression | None
    plan: pn.PlanNode

    def run(self, catalog: Catalog) -> list:
        """Execute the plan and return the result rows."""
        return self.plan.to_operator(catalog).run()


class _Resolver:
    """Column-name resolution against the catalog."""

    def __init__(self, catalog: Catalog, tables: list[str]) -> None:
        self.catalog = catalog
        self.owner: dict[str, str] = {}
        for table in tables:
            schema = self.catalog.table(table).schema
            for column in schema.names():
                if column in self.owner:
                    raise SqlError(
                        f"column {column!r} is ambiguous between "
                        f"{self.owner[column]!r} and {table!r}"
                    )
                self.owner[column] = table

    def resolve(self, column: ast.ColumnName) -> tuple[str, str]:
        """(relation, column) for a reference; validates qualification."""
        owner = self.owner.get(column.name)
        if owner is None:
            raise SqlError(f"unknown column {column!r}")
        if column.relation is not None and column.relation != owner:
            raise SqlError(
                f"column {column.name!r} belongs to {owner!r}, "
                f"not {column.relation!r}"
            )
        return owner, column.name


def _operand_expr(operand: ast.ColumnName | ast.Literal) -> ex.Expression:
    if isinstance(operand, ast.ColumnName):
        return ex.col(operand.name)
    return ex.lit(operand.value)


def _condition_expr(condition: ast.Condition) -> ex.Expression:
    """Lower a condition AST to an executor expression."""
    if isinstance(condition, ast.Comparison):
        return ex.Comparison(
            condition.op,
            _operand_expr(condition.left),
            _operand_expr(condition.right),
        )
    if isinstance(condition, ast.IsNull):
        return ex.IsNull(ex.col(condition.column.name), condition.negated)
    if isinstance(condition, ast.Between):
        return ex.between(
            condition.column.name, condition.low.value, condition.high.value
        )
    if isinstance(condition, ast.Not):
        return ex.Not(_condition_expr(condition.operand))
    if isinstance(condition, ast.And):
        return ex.And(*(_condition_expr(c) for c in condition.operands))
    if isinstance(condition, ast.Or):
        return ex.Or(*(_condition_expr(c) for c in condition.operands))
    raise SqlError(f"unsupported condition: {condition!r}")  # pragma: no cover


def _condition_relations(condition: ast.Condition, resolver: _Resolver) -> set[str]:
    """All relations a condition touches (validating columns)."""
    if isinstance(condition, ast.Comparison):
        out = set()
        for operand in (condition.left, condition.right):
            if isinstance(operand, ast.ColumnName):
                out.add(resolver.resolve(operand)[0])
        return out
    if isinstance(condition, (ast.IsNull, ast.Between)):
        return {resolver.resolve(condition.column)[0]}
    if isinstance(condition, ast.Not):
        return _condition_relations(condition.operand, resolver)
    if isinstance(condition, (ast.And, ast.Or)):
        out = set()
        for operand in condition.operands:
            out |= _condition_relations(operand, resolver)
        return out
    raise SqlError(f"unsupported condition: {condition!r}")  # pragma: no cover


def _flatten_and(condition: ast.Condition) -> list[ast.Condition]:
    if isinstance(condition, ast.And):
        out: list[ast.Condition] = []
        for operand in condition.operands:
            out.extend(_flatten_and(operand))
        return out
    return [condition]


def translate(
    sql: str,
    catalog: Catalog,
    *,
    space: str = "bushy",
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
) -> TranslatedQuery:
    """Parse, plan and lower one SELECT statement.

    Args:
        sql: the statement text.
        catalog: resolves tables, columns, indexes and statistics.
        space: join-order search space (``"bushy"`` or ``"left-deep"``).
        machine / cost_model: cost-estimation context.

    Raises:
        SqlError: for syntax errors, unknown tables/columns, ambiguous
            references or unsupported constructs.
    """
    statement = parse(sql)
    for table in statement.tables:
        if not catalog.has_table(table):
            raise SqlError(f"unknown table {table!r}")
    if len(set(statement.tables)) != len(statement.tables):
        raise SqlError("duplicate table in FROM (self-joins are unsupported)")
    resolver = _Resolver(catalog, statement.tables)

    # -- classify the WHERE conjuncts -----------------------------------------
    selections: dict[str, list[ex.Expression]] = {}
    joins: list[JoinPredicate] = []
    residual_parts: list[ex.Expression] = []
    if statement.where is not None:
        for conjunct in _flatten_and(statement.where):
            relations = _condition_relations(conjunct, resolver)
            if len(relations) <= 1:
                expr = _condition_expr(conjunct)
                if relations:
                    (relation,) = relations
                    selections.setdefault(relation, []).append(expr)
                else:  # constant predicate: keep as residual
                    residual_parts.append(expr)
            elif (
                isinstance(conjunct, ast.Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnName)
                and isinstance(conjunct.right, ast.ColumnName)
            ):
                left_rel, left_col = resolver.resolve(conjunct.left)
                right_rel, right_col = resolver.resolve(conjunct.right)
                joins.append(
                    JoinPredicate(left_rel, left_col, right_rel, right_col)
                )
            else:
                residual_parts.append(_condition_expr(conjunct))

    query = Query(
        relations=list(statement.tables),
        joins=joins,
        selections={
            rel: exprs[0] if len(exprs) == 1 else ex.And(*exprs)
            for rel, exprs in selections.items()
        },
    )
    query.validate(catalog)

    # -- phase 1: join-order optimization ---------------------------------------
    def seqcost(plan: pn.PlanNode) -> float:
        return estimate_plan(
            plan, catalog, cost_model=cost_model, machine=machine
        ).seqcost()

    plan = enumerate_space(query, catalog, seqcost, space=space)
    residual = None
    if residual_parts:
        residual = (
            residual_parts[0]
            if len(residual_parts) == 1
            else ex.And(*residual_parts)
        )
        plan = pn.FilterNode(plan, residual)

    # -- post-operators ------------------------------------------------------------
    plan = _apply_select_list(statement, resolver, plan)
    if statement.order_by:
        columns = []
        descending = []
        for item in statement.order_by:
            columns.append(_output_column(statement, resolver, item.column))
            descending.append(not item.ascending)
        plan = pn.SortNode(plan, tuple(columns), tuple(descending))
    if statement.limit is not None:
        plan = pn.LimitNode(plan, statement.limit)
    return TranslatedQuery(
        statement=statement, query=query, residual=residual, plan=plan
    )


def _apply_select_list(
    statement: ast.SelectStatement, resolver: _Resolver, plan: pn.PlanNode
) -> pn.PlanNode:
    """Aggregation or projection per the select list."""
    if statement.aggregates:
        specs = []
        for aggregate in statement.aggregates:
            column = None
            if aggregate.column is not None:
                resolver.resolve(aggregate.column)
                column = aggregate.column.name
            specs.append(
                AggregateSpec(aggregate.function, column, aggregate.alias)
            )
        group_by = []
        for column in statement.group_by:
            resolver.resolve(column)
            group_by.append(column.name)
        plain = {item.column.name for item in statement.items}
        if not plain <= set(group_by):
            raise SqlError(
                "plain select columns must appear in GROUP BY when "
                "aggregates are present"
            )
        return pn.AggregateNode(plan, tuple(specs), tuple(group_by))
    if statement.group_by:
        raise SqlError("GROUP BY without aggregates is unsupported")
    if statement.star:
        return plan
    columns = []
    output_names = []
    for item in statement.items:
        resolver.resolve(item.column)
        columns.append(item.column.name)
        output_names.append(item.alias or item.column.name)
    return pn.ProjectNode(plan, tuple(columns), tuple(output_names))


def _output_column(
    statement: ast.SelectStatement, resolver: _Resolver, column: ast.ColumnName
) -> str:
    """Resolve an ORDER BY column against the (possibly renamed) output."""
    if statement.aggregates:
        names = [a.alias or _default_agg_name(a) for a in statement.aggregates]
        names.extend(c.name for c in statement.group_by)
        if column.name in names:
            return column.name
        raise SqlError(
            f"ORDER BY column {column.name!r} is not in the aggregate output"
        )
    if statement.star:
        resolver.resolve(column)
        return column.name
    for item in statement.items:
        if (item.alias or item.column.name) == column.name:
            return item.alias or item.column.name
    raise SqlError(f"ORDER BY column {column.name!r} is not in the select list")


def _default_agg_name(aggregate: ast.Aggregate) -> str:
    if aggregate.column is None:
        return f"{aggregate.function}_all"
    return f"{aggregate.function}_{aggregate.column.name}"


def run_sql(sql: str, catalog: Catalog, **kwargs) -> list:
    """One-call convenience: translate and execute, returning rows."""
    return translate(sql, catalog, **kwargs).run(catalog)
