"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure7``   — run the headline experiment and print the table.
* ``calibrate`` — re-measure the paper's Section-3 constants.
* ``fig3``      — the IO/CPU classification table.
* ``fig4``      — a worked IO-CPU balance point.
* ``gantt``     — schedule one workload and draw its Gantt chart.
* ``demo-sql``  — build a demo database and run a SQL statement.
* ``serve``     — serving mode: open arrival stream + admission control.
* ``chaos``     — run the simulator under an injected fault schedule.
* ``recover``   — compare checkpointed resume against restart-from-scratch.
* ``perf``      — time the micro engine's pages/sec throughput.
* ``optbench``  — time the optimizer's plans/sec throughput.
* ``servebench``— time the serving gate's submissions/sec throughput.
* ``trace``     — record a unified trace and export it (Chrome/JSON).
* ``check``     — runtime invariants, differential checks and fuzzing.

Exit codes: ``0`` success, ``1`` command-specific failure, ``2`` bad
arguments (argparse usage errors), ``3`` a :class:`~repro.errors.ReproError`
escaped a command.
"""

from __future__ import annotations

import argparse
import sys

#: Exit code for malformed command lines (argparse's own convention).
EXIT_USAGE = 2
#: Exit code when a command dies with a ReproError.
EXIT_REPRO_ERROR = 3


def _cmd_figure7(args: argparse.Namespace) -> int:
    from .bench import run_figure7
    from .workloads import WorkloadConfig

    result = run_figure7(
        engine=args.engine,
        seeds=tuple(range(args.seeds)),
        config=WorkloadConfig(max_pages=args.max_pages),
    )
    print(result.to_table())
    print()
    print(result.to_bar_chart())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .bench import calibrate

    print(calibrate().to_table())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .bench import figure3

    print(figure3().to_table())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from .bench import figure4

    print(figure4(args.io_rate, args.cpu_rate).to_table())
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .bench.gantt import render_gantt
    from .config import paper_machine
    from .core import policy_by_name
    from .sim import FluidSimulator
    from .workloads import WorkloadConfig, WorkloadKind, generate_tasks

    machine = paper_machine()
    kind = WorkloadKind(args.workload)
    tasks = generate_tasks(
        kind,
        seed=args.seed,
        machine=machine,
        config=WorkloadConfig(max_pages=args.max_pages),
    )
    result = FluidSimulator(machine).run(tasks, policy_by_name(args.policy))
    print(
        render_gantt(
            result,
            title=f"{kind.value} workload under {args.policy} "
            f"(digits = degree of parallelism)",
        )
    )
    return 0


def _cmd_demo_sql(args: argparse.Namespace) -> int:
    from .sql import SqlError, run_sql
    from .workloads import chain_join

    schema = chain_join(3, rows_per_relation=500, seed=0)
    print(
        "Demo tables: s1(s1_l, s1_r, s1_pad), s2(s2_l, s2_r, s2_pad), "
        "s3(s3_l, s3_r, s3_pad)"
    )
    try:
        rows = run_sql(args.sql, schema.catalog)
    except SqlError as error:
        print(f"SQL error: {error}", file=sys.stderr)
        return 1
    for row in rows[: args.max_rows]:
        print(row)
    if len(rows) > args.max_rows:
        print(f"... ({len(rows)} rows total)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .config import paper_machine
    from .service import (
        QueryService,
        admission_by_name,
        estimate_capacity,
        format_sweep,
        format_timeline,
        mixed_tenant_config,
        onoff_stream,
        poisson_stream,
        smoke_lines,
        sweep,
    )

    if args.smoke:
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0

    machine = paper_machine()
    config = mixed_tenant_config(args.n)
    service = QueryService(
        machine,
        admission=admission_by_name(args.admission),
        queue_capacity=args.queue_cap,
        max_inflight_fragments=args.inflight,
        timeline_bucket=args.bucket,
    )

    def stream_factory(rate, seed, cfg, mach):
        if args.arrivals == "onoff":
            return onoff_stream(
                rate=rate,
                seed=seed,
                on_fraction=args.on_fraction,
                period=args.period,
                config=cfg,
                machine=mach,
            )
        return poisson_stream(rate=rate, seed=seed, config=cfg, machine=mach)

    if args.sweep:
        points = sweep(
            rhos=tuple(args.rho_points),
            seed=args.seed,
            config=config,
            machine=machine,
            service=service,
            stream_factory=stream_factory,
        )
        print(
            format_sweep(
                points,
                title=f"latency-vs-throughput knee ({args.admission} admission, "
                f"{args.arrivals} arrivals, seed {args.seed})",
            )
        )
        return 0

    rate = args.rate
    if rate is None:
        mu = estimate_capacity(
            seed=args.seed, config=config, machine=machine, service=service
        )
        rate = args.rho * mu
    stream = stream_factory(rate, args.seed, config, machine)
    result = service.run(stream)
    print(result.metrics.to_table())
    if args.bucket is not None:
        print()
        print(format_timeline(result.metrics.utilization_timeline))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .errors import SimulationError
    from .faults import load_schedule, random_schedule
    from .faults.chaos import run_chaos, run_soak

    if args.soak is not None:
        try:
            soak = run_soak(
                n_schedules=args.soak,
                scale=0.2 if args.smoke else args.scale,
            )
        except SimulationError as error:
            print(f"chaos failed: {error}", file=sys.stderr)
            return 1
        print("\n".join(soak.to_lines()))
        if not soak.ok:
            print("chaos failed: soak verdict FAILED", file=sys.stderr)
            return 1
        return 0
    schedule = None
    if args.schedule is not None:
        schedule = load_schedule(args.schedule)
    elif args.random is not None:
        schedule = random_schedule(
            args.random,
            horizon=args.horizon,
            n_disks=4,
            task_names=("io0", "cpu0", "rnd0"),
        )
    scale = 0.2 if args.smoke else args.scale
    try:
        report = run_chaos(
            schedule=schedule,
            preset=args.preset,
            seed=args.seed,
            scale=scale,
            adjust_timeout=args.adjust_timeout,
        )
    except SimulationError as error:
        # A tolerance invariant broke mid-run (e.g. page conservation):
        # that is a chaos *failure*, distinct from a usage error.
        print(f"chaos failed: {error}", file=sys.stderr)
        return 1
    print("\n".join(report.to_lines()))
    if not report.ok:
        print("chaos failed: fault tolerance verdict FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .faults import load_schedule
    from .recovery.harness import run_recover, smoke_lines

    if args.smoke:
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    schedule = (
        load_schedule(args.schedule) if args.schedule is not None else None
    )
    report = run_recover(
        seed=args.seed,
        scale=args.scale,
        preset=args.preset,
        schedule=schedule,
    )
    print("\n".join(report.to_lines()))
    if not report.complete:
        print(
            "recover failed: an arm did not finish every task",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench.perf import append_trajectory, run_perf, smoke_lines

    if args.smoke:
        # Byte-stable: simulated quantities only, never wall-clock.
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    report = run_perf(
        tuple(args.tasks),
        seed=args.seed,
        max_pages=args.max_pages,
        repeats=args.repeats,
    )
    print(report.to_table())
    if args.json is not None:
        path = Path(args.json)
        count = append_trajectory(path, report.to_entry(args.label))
        print(f"appended entry {count} to {path}")
    return 0


def _cmd_optbench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench.optbench import append_trajectory, run_optbench, smoke_lines

    if args.smoke:
        # Byte-stable: deterministic counters and costs, never
        # wall-clock; fails if the fast path diverged from the
        # reference search.
        lines = smoke_lines(seed=args.seed, topology=args.topology)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    report = run_optbench(
        tuple(args.relations),
        spaces=tuple(args.spaces),
        topology=args.topology,
        seed=args.seed,
        repeats=args.repeats,
        include_before=not args.no_before,
    )
    print(report.to_table())
    if not all(case.identical for case in report.cases):
        print(
            "optbench failed: fast path chose a different plan",
            file=sys.stderr,
        )
        return 1
    if args.json is not None:
        path = Path(args.json)
        count = 0
        for entry in report.to_entries(args.label):
            count = append_trajectory(path, entry)
        print(f"appended entries through {count} to {path}")
    return 0


def _cmd_servebench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench.servebench import (
        DEFAULT_CASES,
        append_trajectory,
        run_servebench,
        smoke_lines,
    )

    if args.smoke:
        # Byte-stable: outcome and gate-consult counts plus simulated
        # time, never wall-clock; fails if the fast path diverged from
        # the reference gate.
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    cases = DEFAULT_CASES
    if args.cases is not None:
        if len(args.cases) % 3:
            print(
                "servebench failed: --cases wants n rate qcap triples",
                file=sys.stderr,
            )
            return 1
        cases = tuple(
            (int(args.cases[i]), float(args.cases[i + 1]), int(args.cases[i + 2]))
            for i in range(0, len(args.cases), 3)
        )
    report = run_servebench(
        cases,
        seed=args.seed,
        repeats=args.repeats,
        include_before=not args.no_before,
    )
    print(report.to_table())
    if not all(case.identical for case in report.cases):
        print(
            "servebench failed: fast path diverged from the reference gate",
            file=sys.stderr,
        )
        return 1
    if args.json is not None:
        path = Path(args.json)
        count = 0
        for entry in report.to_entries(args.label):
            count = append_trajectory(path, entry)
        print(f"appended entries through {count} to {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import flat_json, run_trace, smoke_lines, validate_chrome

    if args.smoke:
        # Byte-stable: virtual-time event counts and simulated
        # quantities only, never wall-clock.
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    report = run_trace(
        args.seed,
        n_tasks=args.tasks,
        max_pages=args.max_pages,
        n_submissions=args.submissions,
        faulted=not args.healthy,
    )
    print(report.summary())
    print()
    print(report.metrics.to_table())
    if args.chrome is not None:
        text = report.chrome_json()
        problem = validate_chrome(text)
        if problem is not None:
            print(f"trace failed: chrome export invalid ({problem})", file=sys.stderr)
            return 1
        Path(args.chrome).write_text(text)
        print(f"wrote Chrome trace to {args.chrome} (open in Perfetto)")
    if args.json is not None:
        Path(args.json).write_text(flat_json(report.tracer, report.metrics))
        print(f"wrote flat trace JSON to {args.json}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check.fuzz import fuzz, generate_scenario, run_case, shrink, smoke_lines

    if args.smoke:
        # One quick pass over every pillar: invariant hooks in both
        # engines, each differential pair, and the real executor.
        lines = smoke_lines(seed=args.seed)
        print("\n".join(lines))
        if any(line.startswith("smoke failed") for line in lines):
            return 1
        return 0
    if args.invariants:
        scenario = generate_scenario(args.seed)
        print(scenario.describe())
        failures = run_case(scenario, executor=args.executor)
        for failure in failures:
            print(f"check failed: {failure}")
        return 1 if failures else 0
    n = args.fuzz if args.fuzz is not None else 50

    def progress(done: int, total: int, failed: int) -> None:
        print(f"fuzz: {done}/{total} cases, {failed} failing", flush=True)

    report = fuzz(
        n,
        seed=args.seed,
        deep=not args.shallow,
        executor=args.executor,
        do_shrink=args.shrink,
        progress=progress,
    )
    if report.ok:
        print(f"check ok: {report.cases} cases, 0 failures")
        return 0
    print(f"check failed: {len(report.failures)} of {report.cases} cases")
    for scenario, failures in report.failures:
        print()
        print(scenario.describe())
        for failure in failures:
            print(f"  {failure}")
    if args.shrink:
        print()
        print("reproduce the first failure with:")
        print(f"  python -m repro check --invariants --seed {report.failures[0][0].seed}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="XPRS inter-operation parallelism reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure7 = commands.add_parser("figure7", help="run the Figure-7 experiment")
    figure7.add_argument("--engine", choices=("micro", "fluid"), default="micro")
    figure7.add_argument("--seeds", type=int, default=3)
    figure7.add_argument("--max-pages", type=int, default=2000)
    figure7.set_defaults(func=_cmd_figure7)

    calibrate = commands.add_parser("calibrate", help="re-measure Section-3 constants")
    calibrate.set_defaults(func=_cmd_calibrate)

    fig3 = commands.add_parser("fig3", help="IO/CPU classification table")
    fig3.set_defaults(func=_cmd_fig3)

    fig4 = commands.add_parser("fig4", help="a worked IO-CPU balance point")
    fig4.add_argument("--io-rate", type=float, default=55.0)
    fig4.add_argument("--cpu-rate", type=float, default=10.0)
    fig4.set_defaults(func=_cmd_fig4)

    gantt = commands.add_parser("gantt", help="draw one workload's schedule")
    gantt.add_argument(
        "--workload",
        choices=[k.value for k in __import__("repro.workloads", fromlist=["WorkloadKind"]).WorkloadKind],
        default="Extreme",
    )
    gantt.add_argument(
        "--policy",
        choices=("INTRA-ONLY", "INTER-WITHOUT-ADJ", "INTER-WITH-ADJ"),
        default="INTER-WITH-ADJ",
    )
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--max-pages", type=int, default=2000)
    gantt.set_defaults(func=_cmd_gantt)

    demo_sql = commands.add_parser("demo-sql", help="run SQL on a demo database")
    demo_sql.add_argument("sql", help="a SELECT statement")
    demo_sql.add_argument("--max-rows", type=int, default=20)
    demo_sql.set_defaults(func=_cmd_demo_sql)

    serve = commands.add_parser(
        "serve", help="serving mode: open arrivals + admission control"
    )
    serve.add_argument(
        "--admission", choices=("balance", "fifo"), default="balance"
    )
    serve.add_argument(
        "--arrivals", choices=("poisson", "onoff"), default="poisson"
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load λ in submissions/s (default: --rho × measured μ)",
    )
    serve.add_argument(
        "--rho",
        type=float,
        default=0.8,
        help="offered load as a fraction of measured capacity μ",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--n", type=int, default=80, help="stream length")
    serve.add_argument(
        "--queue-cap", type=int, default=20, help="per-tenant queue bound"
    )
    serve.add_argument(
        "--inflight",
        type=int,
        default=2,
        help="max admitted-but-unfinished fragments",
    )
    serve.add_argument(
        "--on-fraction", type=float, default=0.4, help="onoff: ON fraction"
    )
    serve.add_argument(
        "--period", type=float, default=120.0, help="onoff: cycle seconds"
    )
    serve.add_argument(
        "--bucket",
        type=float,
        default=None,
        help="utilization-timeline bucket seconds (omit to skip)",
    )
    serve.add_argument(
        "--sweep",
        action="store_true",
        help="sweep offered load and print the knee table",
    )
    serve.add_argument(
        "--rho-points",
        type=float,
        nargs="+",
        default=[0.4, 0.6, 0.8, 0.9, 1.0, 1.2],
        help="ρ points of --sweep",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic end-to-end trace",
    )
    serve.set_defaults(func=_cmd_serve)

    chaos = commands.add_parser(
        "chaos", help="run the simulator under an injected fault schedule"
    )
    chaos.add_argument(
        "--preset",
        choices=("slow-disk", "stall", "crashes", "messages", "mixed"),
        default="mixed",
        help="built-in fault schedule (scaled to the healthy elapsed time)",
    )
    chaos.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="JSON fault-schedule file (overrides --preset)",
    )
    chaos.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="SEED",
        help="generate a random schedule from SEED (overrides --preset)",
    )
    chaos.add_argument(
        "--horizon",
        type=float,
        default=15.0,
        help="time horizon of a --random schedule, seconds",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier",
    )
    chaos.add_argument(
        "--adjust-timeout",
        type=float,
        default=0.5,
        help="master's adjustment-round timeout, seconds",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run on a shrunken workload",
    )
    chaos.add_argument(
        "--soak",
        type=int,
        default=None,
        metavar="N",
        help="soak mode: N random schedules x 3 seeds, each layered "
        "with deadline cancellations and periodic master crashes; "
        "fails on any conservation violation or wedged round",
    )
    chaos.set_defaults(func=_cmd_chaos)

    recover = commands.add_parser(
        "recover",
        help="compare checkpointed resume against restart-from-scratch "
        "under a crash-heavy fault schedule",
    )
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier",
    )
    recover.add_argument(
        "--preset",
        choices=(
            "slow-disk",
            "stall",
            "crashes",
            "messages",
            "mixed",
            "crash-heavy",
        ),
        default="crash-heavy",
        help="built-in fault schedule (scaled to the healthy elapsed time)",
    )
    recover.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="JSON fault-schedule file (overrides --preset)",
    )
    recover.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run on a shrunken workload",
    )
    recover.set_defaults(func=_cmd_recover)

    perf = commands.add_parser(
        "perf", help="time the micro engine's pages/sec throughput"
    )
    perf.add_argument(
        "--tasks",
        type=int,
        nargs="+",
        default=[10, 20, 40],
        help="workload sizes (task counts) to time",
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--max-pages", type=int, default=2000, help="pages cap per task"
    )
    perf.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="wall-clock repetitions per case (best is kept)",
    )
    perf.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="append this run to a BENCH_PERF.json trajectory file",
    )
    perf.add_argument(
        "--label",
        default="local",
        help="label of the --json trajectory entry",
    )
    perf.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run, byte-stable output",
    )
    perf.set_defaults(func=_cmd_perf)

    optbench = commands.add_parser(
        "optbench", help="time the optimizer's plans/sec throughput"
    )
    optbench.add_argument(
        "--relations",
        type=int,
        nargs="+",
        default=[4, 6, 8],
        help="query sizes (total relations) to time",
    )
    optbench.add_argument(
        "--spaces",
        nargs="+",
        choices=("left-deep", "right-deep", "bushy"),
        default=["left-deep", "right-deep", "bushy"],
        help="plan spaces to time for each size",
    )
    optbench.add_argument(
        "--topology", choices=("star", "chain"), default="star"
    )
    optbench.add_argument("--seed", type=int, default=0)
    optbench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock repetitions per case (best is kept)",
    )
    optbench.add_argument(
        "--no-before",
        action="store_true",
        help="skip the fast-path-off reference timings",
    )
    optbench.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="append this run to a BENCH_OPT.json trajectory file",
    )
    optbench.add_argument(
        "--label",
        default="local",
        help="label of the --json trajectory entries",
    )
    optbench.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run, byte-stable output",
    )
    optbench.set_defaults(func=_cmd_optbench)

    servebench = commands.add_parser(
        "servebench",
        help="time the serving gate's submissions/sec throughput",
    )
    servebench.add_argument(
        "--cases",
        type=float,
        nargs="+",
        default=None,
        metavar="N RATE QCAP",
        help="stress rungs as (stream length, offered rate, queue cap) "
        "triples (default: the ext2 stress ladder)",
    )
    servebench.add_argument("--seed", type=int, default=0)
    servebench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock repetitions per arm (best is kept)",
    )
    servebench.add_argument(
        "--no-before",
        action="store_true",
        help="skip the reference-gate timings",
    )
    servebench.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="append this run to a BENCH_SERVE.json trajectory file",
    )
    servebench.add_argument(
        "--label",
        default="local",
        help="label of the --json trajectory entries",
    )
    servebench.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run, byte-stable output",
    )
    servebench.set_defaults(func=_cmd_servebench)

    trace = commands.add_parser(
        "trace", help="record a unified trace and export it"
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--tasks", type=int, default=4, help="micro-engine workload size"
    )
    trace.add_argument(
        "--max-pages", type=int, default=200, help="pages cap per task"
    )
    trace.add_argument(
        "--submissions", type=int, default=10, help="serving stream length"
    )
    trace.add_argument(
        "--healthy",
        action="store_true",
        help="skip the mixed fault preset in the micro phase",
    )
    trace.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="write the Chrome trace-event JSON (open in Perfetto)",
    )
    trace.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the flat events + metrics JSON",
    )
    trace.add_argument(
        "--smoke",
        action="store_true",
        help="quick deterministic run, byte-stable output",
    )
    trace.set_defaults(func=_cmd_trace)

    check = commands.add_parser(
        "check",
        help="runtime invariants, cross-engine differentials and fuzzing",
    )
    check.add_argument("--seed", type=int, default=0, help="base fuzz seed")
    check.add_argument(
        "--fuzz",
        type=int,
        default=None,
        metavar="N",
        help="number of fuzz cases (default 50)",
    )
    check.add_argument(
        "--invariants",
        action="store_true",
        help="run the single seeded scenario, printing it first "
        "(the reproducer mode --shrink points at)",
    )
    check.add_argument(
        "--shrink",
        action="store_true",
        help="minimize failing scenarios before reporting them",
    )
    check.add_argument(
        "--executor",
        action="store_true",
        help="include the multiprocessing executor differential "
        "(spawns real processes on every 25th seed)",
    )
    check.add_argument(
        "--shallow",
        action="store_true",
        help="skip the O(state) checkpoint-roundtrip invariant",
    )
    check.add_argument(
        "--smoke",
        action="store_true",
        help="one quick pass over every pillar",
    )
    check.set_defaults(func=_cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Usage errors exit with :data:`EXIT_USAGE` (2); a
    :class:`~repro.errors.ReproError` escaping a command exits with
    :data:`EXIT_REPRO_ERROR` (3) — distinct codes so scripts can tell
    a mistyped flag from a failed run.
    """
    from .errors import ReproError

    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else EXIT_USAGE
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_REPRO_ERROR


if __name__ == "__main__":
    sys.exit(main())
