"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure7``   — run the headline experiment and print the table.
* ``calibrate`` — re-measure the paper's Section-3 constants.
* ``fig3``      — the IO/CPU classification table.
* ``fig4``      — a worked IO-CPU balance point.
* ``gantt``     — schedule one workload and draw its Gantt chart.
* ``demo-sql``  — build a demo database and run a SQL statement.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figure7(args: argparse.Namespace) -> int:
    from .bench import run_figure7
    from .workloads import WorkloadConfig

    result = run_figure7(
        engine=args.engine,
        seeds=tuple(range(args.seeds)),
        config=WorkloadConfig(max_pages=args.max_pages),
    )
    print(result.to_table())
    print()
    print(result.to_bar_chart())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .bench import calibrate

    print(calibrate().to_table())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .bench import figure3

    print(figure3().to_table())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from .bench import figure4

    print(figure4(args.io_rate, args.cpu_rate).to_table())
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .bench.gantt import render_gantt
    from .config import paper_machine
    from .core import policy_by_name
    from .sim import FluidSimulator
    from .workloads import WorkloadConfig, WorkloadKind, generate_tasks

    machine = paper_machine()
    kind = WorkloadKind(args.workload)
    tasks = generate_tasks(
        kind,
        seed=args.seed,
        machine=machine,
        config=WorkloadConfig(max_pages=args.max_pages),
    )
    result = FluidSimulator(machine).run(tasks, policy_by_name(args.policy))
    print(
        render_gantt(
            result,
            title=f"{kind.value} workload under {args.policy} "
            f"(digits = degree of parallelism)",
        )
    )
    return 0


def _cmd_demo_sql(args: argparse.Namespace) -> int:
    from .sql import SqlError, run_sql
    from .workloads import chain_join

    schema = chain_join(3, rows_per_relation=500, seed=0)
    print(
        "Demo tables: s1(s1_l, s1_r, s1_pad), s2(s2_l, s2_r, s2_pad), "
        "s3(s3_l, s3_r, s3_pad)"
    )
    try:
        rows = run_sql(args.sql, schema.catalog)
    except SqlError as error:
        print(f"SQL error: {error}", file=sys.stderr)
        return 1
    for row in rows[: args.max_rows]:
        print(row)
    if len(rows) > args.max_rows:
        print(f"... ({len(rows)} rows total)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="XPRS inter-operation parallelism reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure7 = commands.add_parser("figure7", help="run the Figure-7 experiment")
    figure7.add_argument("--engine", choices=("micro", "fluid"), default="micro")
    figure7.add_argument("--seeds", type=int, default=3)
    figure7.add_argument("--max-pages", type=int, default=2000)
    figure7.set_defaults(func=_cmd_figure7)

    calibrate = commands.add_parser("calibrate", help="re-measure Section-3 constants")
    calibrate.set_defaults(func=_cmd_calibrate)

    fig3 = commands.add_parser("fig3", help="IO/CPU classification table")
    fig3.set_defaults(func=_cmd_fig3)

    fig4 = commands.add_parser("fig4", help="a worked IO-CPU balance point")
    fig4.add_argument("--io-rate", type=float, default=55.0)
    fig4.add_argument("--cpu-rate", type=float, default=10.0)
    fig4.set_defaults(func=_cmd_fig4)

    gantt = commands.add_parser("gantt", help="draw one workload's schedule")
    gantt.add_argument(
        "--workload",
        choices=[k.value for k in __import__("repro.workloads", fromlist=["WorkloadKind"]).WorkloadKind],
        default="Extreme",
    )
    gantt.add_argument(
        "--policy",
        choices=("INTRA-ONLY", "INTER-WITHOUT-ADJ", "INTER-WITH-ADJ"),
        default="INTER-WITH-ADJ",
    )
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--max-pages", type=int, default=2000)
    gantt.set_defaults(func=_cmd_gantt)

    demo_sql = commands.add_parser("demo-sql", help="run SQL on a demo database")
    demo_sql.add_argument("sql", help="a SELECT statement")
    demo_sql.add_argument("--max-rows", type=int, default=20)
    demo_sql.set_defaults(func=_cmd_demo_sql)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
