"""Exception hierarchy for the XPRS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Sub-hierarchies mirror the
subsystems: storage, catalog, execution, optimization and scheduling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid machine or system configuration was supplied."""


# --------------------------------------------------------------------------
# catalog


class CatalogError(ReproError):
    """Base class for catalog errors."""


class UnknownRelationError(CatalogError):
    """A relation name was not found in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownColumnError(CatalogError):
    """A column name was not found in a schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown column: {name!r}")
        self.name = name


class DuplicateRelationError(CatalogError):
    """A relation with the same name already exists."""

    def __init__(self, name: str) -> None:
        super().__init__(f"relation already exists: {name!r}")
        self.name = name


class SchemaError(CatalogError):
    """A schema definition or a tuple/schema mismatch is invalid."""


# --------------------------------------------------------------------------
# storage


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class PageFullError(StorageError):
    """A record does not fit into the remaining free space of a page."""


class RecordTooLargeError(StorageError):
    """A record cannot fit into any page, even an empty one."""


class InvalidSlotError(StorageError):
    """A slot id does not exist (or was deleted) on a page."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all pages pinned)."""


class BTreeError(StorageError):
    """A B+tree invariant was violated or a bad key was supplied."""


def __getattr__(name: str):
    # ``IndexError_`` shadow-punned the ``IndexError`` builtin and is
    # retired; the lazy shim keeps old imports working for one release
    # while warning loudly.  New code must catch :class:`BTreeError`.
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.errors.IndexError_ is deprecated; catch BTreeError",
            DeprecationWarning,
            stacklevel=2,
        )
        return BTreeError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# --------------------------------------------------------------------------
# execution


class ExecutionError(ReproError):
    """Base class for executor errors."""


class ExpressionError(ExecutionError):
    """An expression could not be evaluated against a tuple."""


class OperatorStateError(ExecutionError):
    """An operator was used outside its open/next/close protocol."""


# --------------------------------------------------------------------------
# plans and optimization


class PlanError(ReproError):
    """A plan tree is malformed (e.g. wrong arity for an operator)."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a query."""


# --------------------------------------------------------------------------
# scheduling and simulation


class SchedulingError(ReproError):
    """Base class for scheduler errors."""


class InfeasibleBalanceError(SchedulingError):
    """No IO-CPU balance point exists for the given pair of tasks."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ProtocolError(ReproError):
    """A master/slave message violated the adjustment protocol."""


class ProtocolTimeoutError(ProtocolError):
    """An adjustment round did not complete before the master's timeout.

    The master *aborts* the round instead of wedging; the engine records
    this error in the fault log rather than raising it, so the run
    continues with the old degrees of parallelism.

    Attributes:
        task_name: the task whose adjustment hung.
        timeout: the timeout that expired, in simulated seconds.
    """

    def __init__(self, task_name: str, timeout: float) -> None:
        super().__init__(
            f"adjustment of {task_name!r} timed out after {timeout:g}s; aborted"
        )
        self.task_name = task_name
        self.timeout = timeout


# --------------------------------------------------------------------------
# fault injection


class FaultError(ReproError):
    """A fault schedule is malformed or a fault could not be applied."""


# --------------------------------------------------------------------------
# recovery


class RecoveryError(ReproError):
    """A checkpoint could not be captured, serialized or restored."""


class MasterCrashError(ReproError):
    """The whole engine crashed at a scheduled instant (fault injection).

    Raised out of :meth:`MicroSimulator.run` when a ``master-crash``
    fault fires; :func:`repro.recovery.run_with_recovery` catches it and
    resumes from the last checkpoint.

    Attributes:
        at: simulated time of the crash.
        checkpoint_at: time of the newest checkpoint taken before the
            crash, or ``None`` when no checkpoint exists yet.
    """

    def __init__(self, at: float, checkpoint_at: float | None = None) -> None:
        tail = (
            f"; last checkpoint at t={checkpoint_at:.3f}"
            if checkpoint_at is not None
            else "; no checkpoint yet"
        )
        super().__init__(f"master crashed at t={at:.3f}{tail}")
        self.at = at
        self.checkpoint_at = checkpoint_at


# --------------------------------------------------------------------------
# observability


class ObsError(ReproError):
    """An invalid tracing or metrics operation (repro.obs)."""


# --------------------------------------------------------------------------
# checking (repro.check)


class CheckError(ReproError):
    """Base class for correctness-checking errors (repro.check)."""


class InvariantViolation(CheckError):
    """A runtime invariant failed inside an engine.

    Attributes:
        site: the hook site that tripped, e.g. ``micro:adjust``.
        detail: what was violated, with the offending numbers.
    """

    def __init__(self, site: str, detail: str) -> None:
        super().__init__(f"[{site}] {detail}")
        self.site = site
        self.detail = detail


# --------------------------------------------------------------------------
# serving


class ServiceError(ReproError):
    """Base class for query-service (serving mode) errors."""


class ServiceOverloadError(ServiceError):
    """A submission was rejected because its tenant queue was full.

    Attributes:
        submission_id: id of the rejected submission.
        tenant: the tenant whose queue overflowed.
    """

    def __init__(self, submission_id: int, tenant: str) -> None:
        super().__init__(
            f"submission {submission_id} rejected: queue full for tenant {tenant!r}"
        )
        self.submission_id = submission_id
        self.tenant = tenant


class AdmissionError(ServiceError):
    """The admission controller reached an inconsistent state.

    Attributes:
        submission_id: id of the submission the controller choked on,
            or ``-1`` when the error is not about one submission (the
            id is then left out of the message).
    """

    def __init__(self, submission_id: int, reason: str) -> None:
        prefix = f"submission {submission_id}: " if submission_id >= 0 else ""
        super().__init__(prefix + reason)
        self.submission_id = submission_id


class RetryExhaustedError(ServiceError):
    """A submission was shed on every attempt allowed by the retry policy.

    Attributes:
        submission_id: id of the submission that gave up.
        attempts: total offers made (the first try plus all retries).
    """

    def __init__(self, submission_id: int, attempts: int) -> None:
        super().__init__(
            f"submission {submission_id} shed after {attempts} attempts"
        )
        self.submission_id = submission_id
        self.attempts = attempts


class DeadlineExceededError(ServiceError):
    """A query overran its deadline budget and was cancelled.

    Cooperative cancellation: the holder of the budget raises (or logs)
    this error at a clean boundary, releases its resources, and leaves
    every conservation invariant intact — a cancelled query never wedges
    an adjustment round.

    Attributes:
        name: the query or task that blew its budget.
        deadline: the absolute virtual-time deadline.
        now: virtual time when the overrun was detected.
    """

    def __init__(self, name: str, deadline: float, now: float) -> None:
        super().__init__(
            f"{name!r} exceeded its deadline "
            f"(deadline t={deadline:.3f}, now t={now:.3f})"
        )
        self.name = name
        self.deadline = deadline
        self.now = now


class CircuitOpenError(ServiceError):
    """A submission was rejected at the gate because the breaker is open.

    Attributes:
        submission_id: id of the rejected submission.
    """

    def __init__(self, submission_id: int) -> None:
        super().__init__(
            f"submission {submission_id} rejected: circuit breaker is open"
        )
        self.submission_id = submission_id
