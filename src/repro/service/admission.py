"""Admission control: which waiting query enters the scheduler next.

The controller bounds the number of *in-flight fragments* (admitted but
not yet completed tasks) and, when a slot frees up, picks the next
submission from the waiting queues.  Two policies:

* **FIFO** — admit in global arrival order; the control arm.
* **BALANCE** — the paper's Section-2.2 IO/CPU classification applied
  at admission time: classify the work already in flight and admit the
  waiting submission whose task mix best *complements* it — the most
  IO-bound waiting query when the machine is CPU-saturated, the most
  CPU-bound one when it is disk-saturated.
  This keeps the scheduler's two queues (``S_io``/``S_cpu``) populated
  so INTER-WITH-ADJ can always pair tasks at a balance point, which a
  FIFO gate cannot guarantee under bursty mixes.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..core.classify import is_io_bound
from ..core.task import Task
from ..errors import ServiceError
from .queue import QueuedSubmission, ServiceSubmission


class AdmissionPolicy:
    """Base class: picks the next submission to admit.

    ``head_window`` declares how many leading entries of ``waiting``
    the policy can ever pick from — an opt-in contract the fast
    admission gate uses to stop building candidate lists deeper than
    the policy will look.  ``None`` (the default for third-party
    policies) promises nothing and the gate passes the full list.
    """

    name = "abstract"
    head_window: int | None = None

    def select(
        self,
        waiting: list[QueuedSubmission],
        inflight: list[Task],
        machine: MachineConfig,
    ) -> ServiceSubmission | None:
        """Choose one waiting submission, or ``None`` to admit nothing.

        Args:
            waiting: waiting submissions in global FIFO order.
            inflight: admitted-but-not-completed tasks (running or
                visible to the scheduler).
            machine: the machine configuration (for the ``B/N``
                classification threshold).
        """
        raise NotImplementedError


class FifoAdmission(AdmissionPolicy):
    """Admit strictly in global arrival order (the control arm)."""

    name = "FIFO"
    head_window = 1

    def select(
        self,
        waiting: list[QueuedSubmission],
        inflight: list[Task],
        machine: MachineConfig,
    ) -> ServiceSubmission | None:
        """The head of the global FIFO order."""
        if not waiting:
            return None
        return waiting[0].submission


class BalanceAwareAdmission(AdmissionPolicy):
    """Admit the submission that best complements the in-flight mix.

    Every in-flight fragment is classified with the paper's Section-2.2
    rule (:func:`repro.core.classify.is_io_bound`: ``C_i > B/N``) and
    the two classes' in-flight sequential work is compared.  When the
    machine is CPU-saturated (more CPU-bound than IO-bound work in
    flight) the most IO-bound waiting submission is admitted, and vice
    versa — the admission-time analogue of the scheduler's
    most-IO-with-most-CPU pairing, keeping both of its queues
    (``S_io``/``S_cpu``) populated so a balance-point pair always
    exists.  With nothing in flight the head of the queue is taken, as
    FIFO would.

    Unbounded complement-seeking would starve whichever class the
    machine already has plenty of, trading tail latency for
    utilization, so the pick is limited to the ``window`` oldest
    waiting submissions — bounded unfairness: nobody is overtaken by
    more than ``window - 1`` younger submissions.  Ties (identical io
    rates) break on arrival order, keeping the policy deterministic.

    Args:
        window: how many of the oldest waiting submissions compete
            (``window = 1`` degenerates to FIFO).
    """

    name = "BALANCE"

    def __init__(self, *, window: int = 6) -> None:
        if window < 1:
            raise ServiceError("window must be >= 1")
        self.window = window
        self.head_window = window

    def select(
        self,
        waiting: list[QueuedSubmission],
        inflight: list[Task],
        machine: MachineConfig,
    ) -> ServiceSubmission | None:
        """The windowed complement-seeking pick described on the class."""
        if not waiting:
            return None
        head = waiting[: self.window]
        io_load = sum(
            t.seq_time for t in inflight if is_io_bound(t, machine)
        )
        cpu_load = sum(
            t.seq_time for t in inflight if not is_io_bound(t, machine)
        )
        if io_load == cpu_load:
            # Empty or perfectly split in-flight mix: take the head.
            return head[0].submission
        if io_load < cpu_load:
            # CPU-saturated machine: feed it the most IO-bound query.
            best = max(
                enumerate(head),
                key=lambda iw: (iw[1].submission.io_rate, -iw[0]),
            )
        else:
            # Disk-saturated machine: feed it the most CPU-bound query.
            best = min(
                enumerate(head),
                key=lambda iw: (iw[1].submission.io_rate, iw[0]),
            )
        return best[1].submission


def admission_by_name(name: str) -> AdmissionPolicy:
    """Construct an admission policy from its CLI name."""
    table = {
        "fifo": FifoAdmission,
        "balance": BalanceAwareAdmission,
    }
    try:
        cls = table[name.lower()]
    except KeyError:
        raise ServiceError(f"unknown admission policy: {name!r}") from None
    return cls()
