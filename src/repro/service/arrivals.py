"""Open-loop arrival processes over the Section-3 workload mixes.

The closed batch of ``optimizer/multiquery.py`` answers "how fast does
this fixed set finish"; the serving-mode questions — throughput
ceilings, tail latency, overload — need an *open* system where work
keeps arriving regardless of progress.  This module turns the existing
:mod:`repro.workloads` mixes into deterministic submission streams:

* :func:`poisson_stream` — memoryless arrivals at offered rate λ
  (exponential inter-arrival times), the standard open-loop model;
* :func:`onoff_stream` — a bursty on-off (interrupted Poisson)
  process: ON periods arriving at a boosted rate alternate with silent
  OFF gaps, stressing the admission queue far harder than the same
  average λ spread evenly.

Both are seeded and fully deterministic: the same ``(seed, λ, mix)``
always yields byte-identical streams.  Each submission bundles one or
more tasks drawn from the mix; multi-task bundles are chained with
order-dependencies (fragment pipelines), and arrival stamping re-keys
task ids, so dependencies are re-wired with
:func:`repro.optimizer.rewire_dependencies` — the same helper the
multi-query batch pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineConfig, paper_machine
from ..core.balance import intra_time
from ..core.ids import id_scope, restore_counters, snapshot_counters
from ..errors import ConfigError
from ..optimizer.multiquery import rewire_dependencies
from ..workloads import RateBands, WorkloadConfig, WorkloadKind, generate_tasks
from .queue import ServiceSubmission


@dataclass(frozen=True)
class ArrivalConfig:
    """Knobs of the submission-stream generators.

    Attributes:
        kind: which Section-3 mix the tasks are drawn from.
        n_submissions: length of the stream.
        tenants: tenant labels, assigned in blocks of ``tenant_block``
            consecutive submissions.
        tenant_kinds: optional per-tenant workload kinds (positionally
            matching ``tenants``); lets one tenant submit IO-heavy
            scans while another submits CPU-heavy joins — the *mixed*
            multi-tenant traffic balance-aware admission exists for.
            ``None`` draws every tenant from ``kind``.
        tenant_bands: optional per-tenant io-rate bands (positionally
            matching ``tenants``), e.g. the Section-3 *extreme* bands
            for an ETL tenant; ``None`` uses the default bands.
        tenant_max_pages: optional per-tenant task-length caps
            (positionally matching ``tenants``).  A task's sequential
            time is roughly ``pages / io_rate``, so at equal page
            counts a CPU-bound tenant (low rate) submits far *longer*
            tasks than an IO-bound one; per-tenant caps let the two
            classes carry comparable work.  ``None`` uses
            ``max_pages`` for every tenant.
        tenant_block: consecutive submissions per tenant before
            rotating to the next.  1 interleaves tenants perfectly;
            larger values model the bursty reality where one tenant's
            jobs arrive back-to-back.
        max_bundle: largest number of fragments per submission
            (bundle sizes are drawn uniformly from ``[1, max_bundle]``).
        chain_fragments: wire each bundle as a dependency chain
            (fragment pipelines) rather than independent fragments.
        slo_stretch: response-time SLO as a multiple of the
            submission's ideal service time (the sum of its fragments'
            ``T_intra`` run alone); ``None`` disables SLO tagging.
        max_pages: per-task length cap forwarded to the mix generator.
    """

    kind: WorkloadKind = WorkloadKind.RANDOM
    n_submissions: int = 50
    tenants: tuple[str, ...] = ("t0", "t1")
    tenant_kinds: tuple[WorkloadKind, ...] | None = None
    tenant_bands: tuple[RateBands, ...] | None = None
    tenant_max_pages: tuple[int, ...] | None = None
    tenant_block: int = 1
    max_bundle: int = 2
    chain_fragments: bool = True
    slo_stretch: float | None = 6.0
    max_pages: int = 2000

    def __post_init__(self) -> None:
        if self.n_submissions < 1:
            raise ConfigError("n_submissions must be >= 1")
        if not self.tenants:
            raise ConfigError("at least one tenant is required")
        if self.tenant_kinds is not None and len(self.tenant_kinds) != len(
            self.tenants
        ):
            raise ConfigError("tenant_kinds must match tenants in length")
        if self.tenant_bands is not None and len(self.tenant_bands) != len(
            self.tenants
        ):
            raise ConfigError("tenant_bands must match tenants in length")
        if self.tenant_max_pages is not None:
            if len(self.tenant_max_pages) != len(self.tenants):
                raise ConfigError(
                    "tenant_max_pages must match tenants in length"
                )
            if any(p < 1 for p in self.tenant_max_pages):
                raise ConfigError("tenant_max_pages entries must be >= 1")
        if self.tenant_block < 1:
            raise ConfigError("tenant_block must be >= 1")
        if self.max_bundle < 1:
            raise ConfigError("max_bundle must be >= 1")
        if self.slo_stretch is not None and self.slo_stretch <= 0:
            raise ConfigError("slo_stretch must be positive")

    def tenant_of(self, index: int) -> int:
        """Tenant index of the ``index``-th submission (block rotation)."""
        return (index // self.tenant_block) % len(self.tenants)

    def kind_of(self, tenant_index: int) -> WorkloadKind:
        """Workload kind a tenant draws its tasks from."""
        if self.tenant_kinds is None:
            return self.kind
        return self.tenant_kinds[tenant_index]

    def bands_of(self, tenant_index: int) -> RateBands:
        """Io-rate bands a tenant draws its tasks from."""
        if self.tenant_bands is None:
            return RateBands()
        return self.tenant_bands[tenant_index]

    def max_pages_of(self, tenant_index: int) -> int:
        """Task-length cap (pages) for a tenant's drawn tasks."""
        if self.tenant_max_pages is None:
            return self.max_pages
        return self.tenant_max_pages[tenant_index]


def mixed_tenant_config(n_submissions: int = 80) -> ArrivalConfig:
    """The two-tenant ETL/OLAP mix the serving benchmarks use.

    An *etl* tenant submits extremely IO-bound scans and an *olap*
    tenant submits nearly-pure CPU-bound joins, in blocks of five
    back-to-back submissions per tenant.  Three properties make this
    the canonical stress mix for balance-aware admission:

    * same-class bursts — a FIFO gate admits whole blocks of one class,
      leaving the scheduler nothing to pair;
    * nearly-pure CPU tasks (io rate 2-6) — pairing them with an
      extreme-IO scan steals almost no disk bandwidth, so cross-class
      overlap is nearly free (an io rate near the ``B/N`` threshold
      would slow the IO class instead);
    * per-tenant page caps sized so both classes carry comparable
      sequential work (``seq_time ≈ pages / io_rate``), keeping
      cross-class pairing available through most of the timeline.
    """
    return ArrivalConfig(
        n_submissions=n_submissions,
        tenants=("etl", "olap"),
        tenant_kinds=(WorkloadKind.ALL_IO, WorkloadKind.ALL_CPU),
        tenant_bands=(
            RateBands(io_low=52.0, io_high=58.0),
            RateBands(cpu_low=2.0, cpu_high=6.0),
        ),
        tenant_max_pages=(2000, 180),
        tenant_block=5,
        max_bundle=1,
    )


def _build_submissions(
    arrival_times: list[float],
    *,
    config: ArrivalConfig,
    machine: MachineConfig,
    seed: int,
) -> list[ServiceSubmission]:
    """Bundle mix tasks and stamp one arrival time per submission."""
    with id_scope():
        return _build_submissions_scoped(
            arrival_times, config=config, machine=machine, seed=seed
        )


#: Memoized bundle sizes and tenant task pools, keyed by everything the
#: pool build depends on.  Bounded small: a λ sweep reuses one key many
#: times, it does not accumulate many keys.
_POOL_CACHE: dict[tuple, tuple[list[int], list, dict[str, int]]] = {}
_POOL_CACHE_LIMIT = 32


def clear_pool_cache() -> None:
    """Empty the task-pool memo (benchmarks time cold starts)."""
    _POOL_CACHE.clear()


def _sized_pools(
    *, config: ArrivalConfig, machine: MachineConfig, seed: int
) -> tuple[list[int], list]:
    """Bundle sizes and per-tenant task pools, memoized across rates.

    Neither the bundle sizes (first ``n_submissions`` draws of the
    stream RNG) nor the task pools depend on the offered rate λ, so a
    load sweep that rebuilds its stream at every ρ point was paying the
    full task-generation cost — by far the dominant setup term — once
    per point for identical pools.  The memo key carries every input of
    the build; the id-counter snapshot taken right after the cold build
    is replayed on each hit so the ids allocated by the caller's
    arrival stamping come out identical to a cold run's.  Pool tasks
    are immutable (stamping copies them), so sharing is safe.
    """
    key = (seed, config, machine)
    hit = _POOL_CACHE.get(key)
    if hit is not None:
        sizes, pools, counters = hit
        restore_counters(counters)
        return sizes, pools
    rng = np.random.default_rng(seed)
    sizes = [
        int(rng.integers(1, config.max_bundle + 1))
        for __ in range(config.n_submissions)
    ]
    # One task pool per tenant so each tenant can draw from its own
    # workload kind; pool seeds are derived deterministically.
    needed = [0] * len(config.tenants)
    for i, size in enumerate(sizes):
        needed[config.tenant_of(i)] += size
    pools = [
        generate_tasks(
            config.kind_of(t),
            seed=seed + 7919 * t,
            machine=machine,
            config=WorkloadConfig(
                n_tasks=max(count, 1),
                min_pages=min(100, config.max_pages_of(t)),
                max_pages=config.max_pages_of(t),
                bands=config.bands_of(t),
            ),
        )
        for t, count in enumerate(needed)
    ]
    if len(_POOL_CACHE) >= _POOL_CACHE_LIMIT:
        _POOL_CACHE.pop(next(iter(_POOL_CACHE)))
    _POOL_CACHE[key] = (sizes, pools, snapshot_counters())
    return sizes, pools


def _build_submissions_scoped(
    arrival_times: list[float],
    *,
    config: ArrivalConfig,
    machine: MachineConfig,
    seed: int,
) -> list[ServiceSubmission]:
    # Task and submission ids restart at zero inside the enclosing
    # id_scope, making a stream a pure function of (seed, rate, config)
    # even within one process — retry jitter keys on submission ids, so
    # this is what makes two in-process runs byte-identical.
    sizes, pools = _sized_pools(config=config, machine=machine, seed=seed)
    cursors = [0] * len(config.tenants)
    submissions: list[ServiceSubmission] = []
    for i, (arrival, size) in enumerate(zip(arrival_times, sizes)):
        tenant_index = config.tenant_of(i)
        cursor = cursors[tenant_index]
        bundle = pools[tenant_index][cursor : cursor + size]
        cursors[tenant_index] = cursor + size
        if config.chain_fragments:
            bundle = [
                task
                if j == 0
                else task.with_dependencies({bundle[j - 1].task_id})
                for j, task in enumerate(bundle)
            ]
        stamped = rewire_dependencies(
            bundle, [t.with_arrival(arrival) for t in bundle]
        )
        deadline = None
        if config.slo_stretch is not None:
            ideal = sum(intra_time(t, machine) for t in stamped)
            deadline = arrival + config.slo_stretch * ideal
        submissions.append(
            ServiceSubmission(
                name=f"q{i}",
                tenant=config.tenants[tenant_index],
                tasks=tuple(stamped),
                arrival_time=arrival,
                deadline=deadline,
            )
        )
    return submissions


def poisson_stream(
    *,
    rate: float,
    seed: int,
    config: ArrivalConfig | None = None,
    machine: MachineConfig | None = None,
) -> list[ServiceSubmission]:
    """A Poisson arrival stream of submissions at offered rate λ.

    Args:
        rate: offered load λ in submissions/second (must be positive).
        seed: RNG seed; the stream is a pure function of
            ``(seed, rate, config)``.
        config: stream shape knobs.
        machine: machine the tasks are calibrated against.
    """
    if rate <= 0:
        raise ConfigError("arrival rate must be positive")
    config = config or ArrivalConfig()
    machine = machine or paper_machine()
    rng = np.random.default_rng(seed)
    clock = 0.0
    arrivals: list[float] = []
    for __ in range(config.n_submissions):
        clock += float(rng.exponential(1.0 / rate))
        arrivals.append(clock)
    return _build_submissions(
        arrivals, config=config, machine=machine, seed=seed
    )


def onoff_stream(
    *,
    rate: float,
    seed: int,
    on_fraction: float = 0.5,
    period: float = 20.0,
    config: ArrivalConfig | None = None,
    machine: MachineConfig | None = None,
) -> list[ServiceSubmission]:
    """A bursty on-off (interrupted Poisson) stream averaging rate λ.

    Time alternates between ON windows of length
    ``on_fraction * period`` and silent OFF windows; during ON windows
    arrivals are Poisson at ``rate / on_fraction``, so the long-run
    average offered load is still λ while the instantaneous load during
    bursts exceeds it by ``1 / on_fraction`` — stressing the admission
    queue far harder than the same λ spread evenly.

    Args:
        rate: long-run average offered rate λ (submissions/second).
        seed: RNG seed (deterministic stream).
        on_fraction: fraction of each period that is ON, in (0, 1];
            smaller values mean burstier traffic.
        period: seconds per ON+OFF cycle.
        config: stream shape knobs.
        machine: machine the tasks are calibrated against.
    """
    if rate <= 0:
        raise ConfigError("arrival rate must be positive")
    if not 0.0 < on_fraction <= 1.0:
        raise ConfigError("on_fraction must be in (0, 1]")
    if period <= 0:
        raise ConfigError("period must be positive")
    config = config or ArrivalConfig()
    machine = machine or paper_machine()
    rng = np.random.default_rng(seed)
    on_len = on_fraction * period
    burst_rate = rate / on_fraction
    clock = 0.0
    arrivals: list[float] = []
    while len(arrivals) < config.n_submissions:
        clock += float(rng.exponential(1.0 / burst_rate))
        # Skip OFF windows: fold the clock forward to the next ON window.
        phase = clock % period
        if phase > on_len:
            clock += period - phase
            continue
        arrivals.append(clock)
    return _build_submissions(
        arrivals, config=config, machine=machine, seed=seed
    )
