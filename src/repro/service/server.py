"""The online serving loop: admission gate + scheduler + engine.

:class:`QueryService` turns the closed-batch pipeline into an open
system.  Submissions arrive over time (see
:mod:`repro.service.arrivals`), wait in bounded per-tenant queues, and
are *admitted* into the scheduler a few at a time by an
:class:`~repro.service.admission.AdmissionPolicy`.  Execution is driven
by the existing :class:`~repro.sim.fluid.FluidSimulator` with the
existing :class:`~repro.core.schedulers.InterWithAdjPolicy` unchanged:
the service wraps it in an admission *gate* — a
:class:`~repro.core.schedulers.SchedulingPolicy` that

1. offers newly arrived submissions to the tenant queues, shedding
   load (:class:`~repro.errors.ServiceOverloadError` →
   :class:`~repro.core.schedulers.Shed` actions) when a queue is full;
2. admits waiting submissions while the in-flight fragment budget
   allows, using the configured admission policy to pick which one;
3. delegates to the inner scheduling policy with a *gated view* of the
   engine state whose pending set contains admitted fragments only.

Because the gate runs inside the engine's event loop it reacts online
to every arrival, completion and adjustment, exactly as a live
admission controller would.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import MachineConfig, paper_machine
from ..core.schedulers import (
    Action,
    EngineState,
    InterWithAdjPolicy,
    SchedulingPolicy,
    Shed,
)
from ..core.task import Task
from ..errors import AdmissionError, ServiceOverloadError
from ..faults.breaker import CircuitBreaker
from ..faults.retry import RetryPolicy
from ..sim.fluid import FluidSimulator, ScheduleResult

if TYPE_CHECKING:
    from ..faults.schedule import DiskDegradation
from .admission import AdmissionPolicy, BalanceAwareAdmission
from .metrics import ServiceMetrics, TenantMetrics, utilization_timeline
from .queue import AdmissionQueue, ServiceSubmission

_EPS = 1e-9


@dataclass(frozen=True)
class SubmissionOutcome:
    """What happened to one submission.

    Attributes:
        submission: the submission itself.
        status: ``"completed"`` or ``"rejected"``.
        admitted_at: when the gate released it to the scheduler
            (``None`` if rejected).
        finished_at: when its last fragment completed (``None`` if
            rejected).
        rejected_at: when it was shed (``None`` if it ran).
    """

    submission: ServiceSubmission
    status: str
    admitted_at: float | None = None
    finished_at: float | None = None
    rejected_at: float | None = None

    @property
    def response_time(self) -> float:
        """Completion minus arrival; raises for rejected submissions."""
        if self.finished_at is None:
            raise AdmissionError(
                self.submission.submission_id,
                "rejected submissions have no response time",
            )
        return self.finished_at - self.submission.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Seconds spent waiting for admission."""
        if self.admitted_at is None:
            raise AdmissionError(
                self.submission.submission_id,
                "rejected submissions have no queueing delay",
            )
        return self.admitted_at - self.submission.arrival_time

    @property
    def slo_missed(self) -> bool:
        """Did an SLO-tagged submission finish past its deadline?

        Rejected SLO-tagged submissions count as misses: the service
        failed to answer inside the deadline either way.
        """
        deadline = self.submission.deadline
        if deadline is None:
            return False
        if self.finished_at is None:
            return True
        return self.finished_at > deadline


@dataclass
class ServiceResult:
    """Full outcome of one service run."""

    admission_name: str
    outcomes: list[SubmissionOutcome]
    schedule: ScheduleResult
    metrics: ServiceMetrics

    @property
    def elapsed(self) -> float:
        """Simulated seconds until the last admitted fragment finished."""
        return self.schedule.elapsed

    def outcome(self, name: str) -> SubmissionOutcome:
        """The outcome of the submission labelled ``name``."""
        for outcome in self.outcomes:
            if outcome.submission.name == name:
                return outcome
        raise AdmissionError(-1, f"no submission named {name!r}")


class _GatedView:
    """Engine state restricted to admitted fragments.

    The inner policy sees the true clock, machine and running set, but
    only the admitted subset of pending tasks — everything else is
    still waiting at the admission gate.
    """

    def __init__(self, state: EngineState, allowed: set[int]) -> None:
        self._state = state
        self._allowed = allowed
        self.machine = state.machine
        self.completed_ids = state.completed_ids
        self.effective_machine = getattr(
            state, "effective_machine", state.machine
        )

    @property
    def now(self) -> float:
        return self._state.now

    @property
    def running(self):
        return self._state.running

    @property
    def pending(self) -> list[Task]:
        return [
            t for t in self._state.pending if t.task_id in self._allowed
        ]


class AdmissionGate(SchedulingPolicy):
    """The serving-mode policy wrapper (see the module docstring).

    Args:
        submissions: the full arrival stream, any order.
        inner: the scheduling policy that places admitted fragments
            (the paper's INTER-WITH-ADJ by default).
        admission: queue-selection policy.
        queue_capacity: bound of each tenant's waiting queue.
        max_inflight_fragments: admitted-but-unfinished fragment budget;
            when nothing is in flight one submission is always admitted
            regardless, so an over-sized bundle cannot wedge the gate.
        retry: when set, a shed submission is re-offered after a capped
            exponential backoff (deterministic jitter) instead of being
            rejected on the first full queue; ``None`` keeps the
            pre-hardening single-shot behaviour.
        breaker: when set, a circuit breaker guards the gate: it opens
            after consecutive sheds or under sustained measured
            bandwidth degradation, rejecting offers outright until a
            cooldown probe succeeds; ``None`` disables it.
        tracer: a :class:`~repro.obs.Tracer` recording admission
            decisions (queue-wait spans, backoff/shed instants) at
            virtual time; ``None`` (or the falsy NullTracer) records
            nothing.
    """

    name = "ADMISSION-GATE"

    def __init__(
        self,
        submissions: Sequence[ServiceSubmission],
        *,
        inner: SchedulingPolicy,
        admission: AdmissionPolicy,
        queue_capacity: int = 8,
        max_inflight_fragments: int = 6,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        tracer=None,
    ) -> None:
        if max_inflight_fragments < 1:
            raise AdmissionError(-1, "max_inflight_fragments must be >= 1")
        self.inner = inner
        self.admission = admission
        self.queue_capacity = queue_capacity
        self.max_inflight_fragments = max_inflight_fragments
        self.retry = retry
        self.breaker = breaker
        self.tracer = tracer or None
        self._stream = sorted(
            submissions, key=lambda s: (s.arrival_time, s.submission_id)
        )
        names = [s.name for s in self._stream]
        if len(set(names)) != len(names):
            raise AdmissionError(-1, "duplicate submission names in stream")
        self.reset()

    def reset(self) -> None:
        """Clear all gate state before a fresh run."""
        self.inner.reset()
        self._queue = AdmissionQueue(self.queue_capacity)
        self._cursor = 0
        self._allowed: set[int] = set()
        self._inflight: dict[int, Task] = {}
        self._by_submission: dict[int, ServiceSubmission] = {}
        self.admitted_at: dict[int, float] = {}
        self.rejected_at: dict[int, float] = {}
        #: Deferred re-offers: (due_time, submission_id, attempt, submission).
        self._retries: list[tuple[float, int, int, ServiceSubmission]] = []
        #: Retries performed per submission id.
        self.retry_counts: dict[int, int] = {}
        if self.breaker is not None:
            self.breaker.reset()

    # -- gate steps --------------------------------------------------------------

    def _offer_arrivals(self, state: EngineState) -> list[Action]:
        """Queue submissions that arrived by now; shed on overflow."""
        shed: list[Action] = []
        while (
            self._cursor < len(self._stream)
            and self._stream[self._cursor].arrival_time <= state.now + _EPS
        ):
            submission = self._stream[self._cursor]
            self._cursor += 1
            shed.extend(self._offer(submission, 0, state))
        return shed

    def _offer(
        self, submission: ServiceSubmission, attempt: int, state: EngineState
    ) -> list[Action]:
        """One offer of a submission to its tenant queue, breaker-gated."""
        now = state.now
        if self.breaker is not None and not self.breaker.allow(now):
            if self.tracer is not None:
                self.tracer.instant(
                    f"breaker:reject {submission.name}",
                    t=now,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                )
            return self._handle_shed(submission, attempt, state)
        try:
            self._queue.offer(submission, now)
        except ServiceOverloadError:
            if self.breaker is not None:
                self.breaker.record_failure(now)
            return self._handle_shed(submission, attempt, state)
        if self.breaker is not None:
            self.breaker.record_success(now)
        return []

    def _handle_shed(
        self, submission: ServiceSubmission, attempt: int, state: EngineState
    ) -> list[Action]:
        """Backoff-and-retry a shed submission, or reject it for good."""
        tracer = self.tracer
        if self.retry is not None and attempt < self.retry.max_retries:
            due = state.now + self.retry.backoff(
                submission.submission_id, attempt
            )
            heapq.heappush(
                self._retries,
                (due, submission.submission_id, attempt + 1, submission),
            )
            self.retry_counts[submission.submission_id] = attempt + 1
            if tracer is not None:
                tracer.instant(
                    f"backoff {submission.name}",
                    t=state.now,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                    args={"attempt": attempt + 1, "due": due},
                )
            return []
        self.rejected_at[submission.submission_id] = state.now
        if tracer is not None:
            tracer.instant(
                f"shed {submission.name}",
                t=state.now,
                track=f"tenant:{submission.tenant}",
                cat="admission",
                args={"attempts": attempt + 1},
            )
        return [Shed(task) for task in submission.tasks]

    def _drain_retries(self, state: EngineState) -> list[Action]:
        """Re-offer every submission whose backoff has elapsed."""
        actions: list[Action] = []
        while self._retries and self._retries[0][0] <= state.now + _EPS:
            __, __sid, attempt, submission = heapq.heappop(self._retries)
            actions.extend(self._offer(submission, attempt, state))
        return actions

    def next_wakeup(self, now: float) -> float | None:
        """Earliest pending retry, so the engine wakes the gate for it."""
        if not self._retries:
            return None
        return self._retries[0][0]

    def _refresh_inflight(self, state: EngineState) -> None:
        """Drop completed fragments from the in-flight set."""
        done = [
            task_id
            for task_id in self._inflight
            if task_id in state.completed_ids
        ]
        for task_id in done:
            del self._inflight[task_id]

    def _admit(self, state: EngineState) -> None:
        """Release waiting submissions while the fragment budget allows."""
        while True:
            budget = self.max_inflight_fragments - len(self._inflight)
            waiting = self._queue.waiting()
            if not self._inflight:
                # Never wedge: an empty machine always takes one query.
                candidates = waiting
            else:
                candidates = [
                    entry
                    for entry in waiting
                    if entry.submission.n_fragments <= budget
                ]
            if not candidates:
                return
            choice = self.admission.select(
                candidates, list(self._inflight.values()), state.machine
            )
            if choice is None:
                return
            submission = self._queue.take(choice.submission_id)
            self.admitted_at[submission.submission_id] = state.now
            if self.tracer is not None:
                self.tracer.span(
                    f"queue-wait {submission.name}",
                    t=submission.arrival_time,
                    dur=state.now - submission.arrival_time,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                    args={"fragments": submission.n_fragments},
                )
            for task in submission.tasks:
                self._allowed.add(task.task_id)
                self._inflight[task.task_id] = task
                self._by_submission[task.task_id] = submission

    def decide(self, state: EngineState) -> list[Action]:
        """One gate round: offer, admit, then let the scheduler place."""
        if self.breaker is not None:
            eff = getattr(state, "effective_machine", None)
            if eff is not None and state.machine.io_bandwidth > 0:
                self.breaker.observe_bandwidth(
                    state.now, eff.io_bandwidth / state.machine.io_bandwidth
                )
        actions = self._drain_retries(state)
        actions.extend(self._offer_arrivals(state))
        self._refresh_inflight(state)
        self._admit(state)
        actions.extend(self.inner.decide(_GatedView(state, self._allowed)))
        return actions


class QueryService:
    """An open multi-tenant query service over the fluid engine.

    Args:
        machine: machine configuration (defaults to the paper machine).
        admission: admission policy (defaults to balance-aware).
        scheduler: inner scheduling policy (defaults to the paper's
            INTER-WITH-ADJ, unchanged).
        queue_capacity: per-tenant waiting-queue bound.
        max_inflight_fragments: admitted-but-unfinished fragment budget.
        timeline_bucket: bucket width (seconds) of the utilization
            timeline attached to the metrics; ``None`` skips it.
        retry: shed-retry policy handed to the gate (``None`` = off).
        breaker: admission circuit breaker (``None`` = off).
        degradations: scheduled disk-bandwidth degradation windows,
            applied by the fluid engine and observed by the breaker.
        tracer: a :class:`~repro.obs.Tracer` threaded into the gate
            and the fluid engine; ``None`` (or the falsy NullTracer)
            records nothing.
        metrics: a :class:`~repro.obs.MetricsRegistry` the digest step
            populates with ``service.*`` counters, histograms and the
            breaker-state series; ``None`` skips it.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        *,
        admission: AdmissionPolicy | None = None,
        scheduler: SchedulingPolicy | None = None,
        queue_capacity: int = 8,
        max_inflight_fragments: int = 6,
        timeline_bucket: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        degradations: "Sequence[DiskDegradation] | None" = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.machine = machine or paper_machine()
        self.admission = admission or BalanceAwareAdmission()
        self.scheduler = scheduler or InterWithAdjPolicy()
        self.queue_capacity = queue_capacity
        self.max_inflight_fragments = max_inflight_fragments
        self.timeline_bucket = timeline_bucket
        self.retry = retry
        self.breaker = breaker
        self.degradations = tuple(degradations or ())
        self.tracer = tracer or None
        self.metrics = metrics

    def run(
        self, submissions: Sequence[ServiceSubmission]
    ) -> ServiceResult:
        """Serve one arrival stream to completion and digest the trace."""
        if not submissions:
            raise AdmissionError(-1, "empty submission stream")
        gate = AdmissionGate(
            submissions,
            inner=self.scheduler,
            admission=self.admission,
            queue_capacity=self.queue_capacity,
            max_inflight_fragments=self.max_inflight_fragments,
            retry=self.retry,
            breaker=self.breaker,
            tracer=self.tracer,
        )
        pooled = [task for s in submissions for task in s.tasks]
        simulator = FluidSimulator(
            self.machine,
            degradations=self.degradations or None,
            tracer=self.tracer,
        )
        schedule = simulator.run(pooled, gate)
        outcomes = self._collect(submissions, gate, schedule)
        metrics = self._digest(outcomes, schedule, gate)
        return ServiceResult(
            admission_name=self.admission.name,
            outcomes=outcomes,
            schedule=schedule,
            metrics=metrics,
        )

    # -- digestion ----------------------------------------------------------------

    @staticmethod
    def _collect(
        submissions: Sequence[ServiceSubmission],
        gate: AdmissionGate,
        schedule: ScheduleResult,
    ) -> list[SubmissionOutcome]:
        finished: dict[int, float] = {}
        for record in schedule.records:
            finished[record.task.task_id] = record.finished_at
        outcomes = []
        for submission in sorted(
            submissions, key=lambda s: (s.arrival_time, s.submission_id)
        ):
            sid = submission.submission_id
            if sid in gate.rejected_at:
                outcomes.append(
                    SubmissionOutcome(
                        submission=submission,
                        status="rejected",
                        rejected_at=gate.rejected_at[sid],
                    )
                )
                continue
            ends = [finished.get(t.task_id) for t in submission.tasks]
            if any(e is None for e in ends):
                raise AdmissionError(
                    sid, "admitted submission did not run to completion"
                )
            outcomes.append(
                SubmissionOutcome(
                    submission=submission,
                    status="completed",
                    admitted_at=gate.admitted_at[sid],
                    finished_at=max(ends),
                )
            )
        return outcomes

    def _digest(
        self,
        outcomes: list[SubmissionOutcome],
        schedule: ScheduleResult,
        gate: AdmissionGate,
    ) -> ServiceMetrics:
        tenants: dict[str, TenantMetrics] = {}
        for outcome in outcomes:
            submission = outcome.submission
            tm = tenants.setdefault(
                submission.tenant, TenantMetrics(tenant=submission.tenant)
            )
            tm.offered += 1
            tm.retries += gate.retry_counts.get(submission.submission_id, 0)
            if outcome.status == "rejected":
                tm.rejected += 1
            else:
                tm.admitted += 1
                tm.completed += 1
                tm.response_times.append(outcome.response_time)
            if submission.deadline is not None:
                tm.slo_tagged += 1
                if outcome.slo_missed:
                    tm.slo_misses += 1
        timeline = (
            utilization_timeline(schedule, bucket=self.timeline_bucket)
            if self.timeline_bucket is not None
            else []
        )
        if self.metrics is not None:
            self._publish(outcomes, gate, self.metrics)
        return ServiceMetrics(
            admission_name=self.admission.name,
            elapsed=schedule.elapsed,
            tenants=tenants,
            cpu_utilization=schedule.cpu_utilization,
            io_utilization=schedule.io_utilization,
            utilization_timeline=timeline,
            breaker_timeline=(
                list(gate.breaker.timeline) if gate.breaker is not None else []
            ),
        )

    @staticmethod
    def _publish(
        outcomes: list[SubmissionOutcome],
        gate: AdmissionGate,
        registry,
    ) -> None:
        """Fold the run's outcomes into a unified metrics registry.

        Populates ``service.*`` counters (offered/admitted/rejected/
        completed/retries), the response-time and queue-wait histograms
        and the breaker-state series on the given
        :class:`~repro.obs.MetricsRegistry`.
        """
        offered = registry.counter("service.offered")
        admitted = registry.counter("service.admitted")
        rejected = registry.counter("service.rejected")
        completed = registry.counter("service.completed")
        retries = registry.counter("service.retries")
        response = registry.histogram("service.response_time")
        queue_wait = registry.histogram("service.queue_wait")
        for outcome in outcomes:
            offered.inc()
            retries.inc(
                gate.retry_counts.get(outcome.submission.submission_id, 0)
            )
            if outcome.status == "rejected":
                rejected.inc()
            else:
                admitted.inc()
                completed.inc()
                response.observe(outcome.response_time)
                queue_wait.observe(outcome.queueing_delay)
        if gate.breaker is not None:
            series = registry.series("service.breaker_state")
            for t, name in gate.breaker.timeline:
                series.append(t, name)
