"""The online serving loop: admission gate + scheduler + engine.

:class:`QueryService` turns the closed-batch pipeline into an open
system.  Submissions arrive over time (see
:mod:`repro.service.arrivals`), wait in bounded per-tenant queues, and
are *admitted* into the scheduler a few at a time by an
:class:`~repro.service.admission.AdmissionPolicy`.  Execution is driven
by the existing :class:`~repro.sim.fluid.FluidSimulator` with the
existing :class:`~repro.core.schedulers.InterWithAdjPolicy` unchanged:
the service wraps it in an admission *gate* — a
:class:`~repro.core.schedulers.SchedulingPolicy` that

1. offers newly arrived submissions to the tenant queues, shedding
   load (:class:`~repro.errors.ServiceOverloadError` →
   :class:`~repro.core.schedulers.Shed` actions) when a queue is full;
2. admits waiting submissions while the in-flight fragment budget
   allows, using the configured admission policy to pick which one;
3. delegates to the inner scheduling policy with a *gated view* of the
   engine state whose pending set contains admitted fragments only.

Because the gate runs inside the engine's event loop it reacts online
to every arrival, completion and adjustment, exactly as a live
admission controller would.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import MachineConfig, paper_machine
from ..core.schedulers import (
    Action,
    Cancel,
    EngineState,
    InterWithAdjPolicy,
    SchedulingPolicy,
    Shed,
)
from ..core.task import Task
from ..errors import AdmissionError, ServiceOverloadError
from ..faults.breaker import CircuitBreaker
from ..faults.retry import RetryPolicy
from ..sim.fluid import FluidSimulator, ScheduleResult

if TYPE_CHECKING:
    from ..faults.schedule import DiskDegradation
from .admission import AdmissionPolicy, BalanceAwareAdmission
from .metrics import ServiceMetrics, TenantMetrics, utilization_timeline
from .queue import (
    AdmissionQueue,
    ReferenceAdmissionQueue,
    ServiceSubmission,
)

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class SubmissionOutcome:
    """What happened to one submission.

    Attributes:
        submission: the submission itself.
        status: ``"completed"``, ``"rejected"``, ``"deadline"`` (the
            deadline budget expired and the gate cancelled it — in the
            queue or mid-run) or ``"degraded"`` (the gate shed some
            not-yet-started fragments at the deadline but the rest ran
            to completion).
        admitted_at: when the gate released it to the scheduler
            (``None`` if it never got in).
        finished_at: when its last surviving fragment completed
            (``None`` if rejected or deadline-cancelled).
        rejected_at: when it was shed (``None`` if it ran).
        cancelled_at: when the deadline budget cancelled or degraded it
            (``None`` otherwise).
    """

    submission: ServiceSubmission
    status: str
    admitted_at: float | None = None
    finished_at: float | None = None
    rejected_at: float | None = None
    cancelled_at: float | None = None

    @property
    def response_time(self) -> float:
        """Completion minus arrival; raises for rejected submissions."""
        if self.finished_at is None:
            raise AdmissionError(
                self.submission.submission_id,
                "rejected submissions have no response time",
            )
        return self.finished_at - self.submission.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Seconds spent waiting for admission."""
        if self.admitted_at is None:
            raise AdmissionError(
                self.submission.submission_id,
                "rejected submissions have no queueing delay",
            )
        return self.admitted_at - self.submission.arrival_time

    @property
    def slo_missed(self) -> bool:
        """Did an SLO-tagged submission finish past its deadline?

        Rejected SLO-tagged submissions count as misses: the service
        failed to answer inside the deadline either way.
        """
        deadline = self.submission.deadline
        if deadline is None:
            return False
        if self.finished_at is None:
            return True
        return self.finished_at > deadline


@dataclass
class ServiceResult:
    """Full outcome of one service run.

    ``decide_rounds`` counts the gate consults the engine made during
    the run — the denominator of the servebench gate-decisions/sec
    metric.  Each consult covers *every* arrival due at that virtual
    instant (the engine drains same-timestamp arrivals in one event),
    so a Poisson burst costs one round, not one per submission.
    """

    admission_name: str
    outcomes: list[SubmissionOutcome]
    schedule: ScheduleResult
    metrics: ServiceMetrics
    decide_rounds: int = 0

    @property
    def elapsed(self) -> float:
        """Simulated seconds until the last admitted fragment finished."""
        return self.schedule.elapsed

    def outcome(self, name: str) -> SubmissionOutcome:
        """The outcome of the submission labelled ``name``."""
        for outcome in self.outcomes:
            if outcome.submission.name == name:
                return outcome
        raise AdmissionError(-1, f"no submission named {name!r}")


class _GatedView:
    """Engine state restricted to admitted fragments.

    The inner policy sees the true clock, machine and running set, but
    only the admitted subset of pending tasks — everything else is
    still waiting at the admission gate.  ``banned`` hides running
    tasks the gate is cancelling this round, so the inner policy cannot
    adjust a task that will be gone before its action applies.
    """

    def __init__(
        self,
        state: EngineState,
        allowed: set[int],
        banned: set[int] | None = None,
    ) -> None:
        self._state = state
        self._allowed = allowed
        self._banned = banned
        self.machine = state.machine
        self.completed_ids = state.completed_ids
        self.effective_machine = getattr(
            state, "effective_machine", state.machine
        )

    @property
    def now(self) -> float:
        return self._state.now

    @property
    def running(self):
        banned = self._banned
        if not banned:
            return self._state.running
        return [
            r for r in self._state.running if r.task.task_id not in banned
        ]

    @property
    def pending(self) -> list[Task]:
        return [
            t for t in self._state.pending if t.task_id in self._allowed
        ]


class _FastGatedView(_GatedView):
    """A :class:`_GatedView` whose pending filter is memoized on the gate.

    The engine's ``state.pending`` is itself memoized and rebuilt as a
    *fresh list object* whenever membership changes, so ``(source list
    identity, allowed-set version)`` keys the filtered view exactly: a
    hit means neither the engine's ready set nor the admitted set moved
    since the last consult, and the previous filtered list (same tasks,
    same order) is still the answer.  The gate holds a reference to the
    source list, so its identity cannot be recycled while the key lives.
    """

    def __init__(self, state: EngineState, gate: "AdmissionGate", banned) -> None:
        super().__init__(state, gate._allowed, banned)
        self._gate = gate

    @property
    def pending(self) -> list[Task]:
        gate = self._gate
        source = self._state.pending
        if (
            gate._gated_pending_src is source
            and gate._gated_pending_version == gate._allowed_version
        ):
            return gate._gated_pending
        allowed = self._allowed
        filtered = [t for t in source if t.task_id in allowed]
        gate._gated_pending_src = source
        gate._gated_pending_version = gate._allowed_version
        gate._gated_pending = filtered
        return filtered


class AdmissionGate(SchedulingPolicy):
    """The serving-mode policy wrapper (see the module docstring).

    Args:
        submissions: the full arrival stream, any order.
        inner: the scheduling policy that places admitted fragments
            (the paper's INTER-WITH-ADJ by default).
        admission: queue-selection policy.
        queue_capacity: bound of each tenant's waiting queue.
        max_inflight_fragments: admitted-but-unfinished fragment budget;
            when nothing is in flight one submission is always admitted
            regardless, so an over-sized bundle cannot wedge the gate.
        retry: when set, a shed submission is re-offered after a capped
            exponential backoff (deterministic jitter) instead of being
            rejected on the first full queue; ``None`` keeps the
            pre-hardening single-shot behaviour.
        breaker: when set, a circuit breaker guards the gate: it opens
            after consecutive sheds or under sustained measured
            bandwidth degradation, rejecting offers outright until a
            cooldown probe succeeds; ``None`` disables it.
        deadline_policy: what a submission's ``deadline`` means.
            ``"off"`` (default): a soft SLO tag, recorded but never
            enforced — the pre-recovery behaviour.  ``"kill"``: at the
            deadline every unfinished fragment is cooperatively
            cancelled and the submission's status becomes
            ``"deadline"``.  ``"shed"``: graceful degradation — at the
            deadline not-yet-started fragments are cancelled cheapest
            first while running ones get ``deadline_grace`` extra
            seconds to finish; if they do, the submission completes
            ``"degraded"``, otherwise it is killed at the grace bound.
        deadline_grace: extra virtual seconds ``"shed"`` grants running
            fragments past the deadline before killing them (0 kills
            at the deadline, like ``"kill"`` but shedding cheapest
            pending fragments first).
        tracer: a :class:`~repro.obs.Tracer` recording admission
            decisions (queue-wait spans, backoff/shed instants) at
            virtual time; ``None`` (or the falsy NullTracer) records
            nothing.
        fast_path: run the incremental gate (dict-backed queue, heap
            deadline wakeups, memoized views) — byte-identical outcomes
            to the seed-era algorithms, which ``False`` preserves
            verbatim as the servebench *before* arm (the frozen serve
            corpus pins both arms to the same digests).
    """

    name = "ADMISSION-GATE"

    def __init__(
        self,
        submissions: Sequence[ServiceSubmission],
        *,
        inner: SchedulingPolicy,
        admission: AdmissionPolicy,
        queue_capacity: int = 8,
        max_inflight_fragments: int = 6,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_policy: str = "off",
        deadline_grace: float = 0.0,
        tracer=None,
        fast_path: bool = True,
    ) -> None:
        if max_inflight_fragments < 1:
            raise AdmissionError(-1, "max_inflight_fragments must be >= 1")
        if deadline_policy not in ("off", "shed", "kill"):
            raise AdmissionError(
                -1,
                f"deadline_policy must be 'off', 'shed' or 'kill', "
                f"not {deadline_policy!r}",
            )
        if deadline_grace < 0:
            raise AdmissionError(-1, "deadline_grace must be >= 0")
        self.inner = inner
        self.admission = admission
        self.queue_capacity = queue_capacity
        self.max_inflight_fragments = max_inflight_fragments
        self.retry = retry
        self.breaker = breaker
        self.deadline_policy = deadline_policy
        self.deadline_grace = deadline_grace
        self.tracer = tracer or None
        self.fast_path = fast_path
        self._stream = sorted(
            submissions, key=lambda s: (s.arrival_time, s.submission_id)
        )
        names = [s.name for s in self._stream]
        if len(set(names)) != len(names):
            raise AdmissionError(-1, "duplicate submission names in stream")
        self.reset()

    def reset(self) -> None:
        """Clear all gate state before a fresh run."""
        self.inner.reset()
        queue_cls = AdmissionQueue if self.fast_path else ReferenceAdmissionQueue
        self._queue = queue_cls(self.queue_capacity)
        self._cursor = 0
        self._allowed: set[int] = set()
        self._inflight: dict[int, Task] = {}
        self._by_submission: dict[int, ServiceSubmission] = {}
        self.admitted_at: dict[int, float] = {}
        self.rejected_at: dict[int, float] = {}
        #: Submissions killed by their deadline budget (sid -> when).
        self.deadline_cancelled_at: dict[int, float] = {}
        #: Submissions degraded (fragments shed) at their deadline.
        self.degraded_at: dict[int, float] = {}
        #: Task ids cancelled by deadline enforcement.
        self.cancelled_tasks: set[int] = set()
        #: Deferred re-offers: (due_time, submission_id, attempt, submission).
        self._retries: list[tuple[float, int, int, ServiceSubmission]] = []
        #: Retries performed per submission id.
        self.retry_counts: dict[int, int] = {}
        #: Gate consults this run (one per engine event, not per arrival).
        self.decide_rounds = 0
        # -- fast-path bookkeeping (inert on the reference arm) -----------
        #: Submission ids currently backing off (mirrors ``_retries``).
        self._retry_sids: set[int] = set()
        #: One-shot deadline instants ``(time, sid)``; entries whose sid
        #: left every gate class are dead and popped lazily.
        self._deadline_heap: list[tuple[float, int]] = []
        #: Admitted-but-unfinished fragments grouped by submission id.
        self._inflight_by_sid: dict[int, list[Task]] = {}
        self._submission_by_sid: dict[int, ServiceSubmission] = {}
        #: Memo of ``list(self._inflight.values())`` for admission consults.
        self._inflight_list: list[Task] | None = None
        #: Bumped on every ``_allowed`` mutation; keys the gated-view memo.
        self._allowed_version = 0
        self._gated_pending_src: list[Task] | None = None
        self._gated_pending_version = -1
        self._gated_pending: list[Task] = []
        #: Watermark of ``len(state.completed_ids)`` at the last refresh.
        self._completed_seen = 0
        if self.breaker is not None:
            self.breaker.reset()

    # -- gate steps --------------------------------------------------------------

    def _offer_arrivals(self, state: EngineState) -> list[Action]:
        """Queue submissions that arrived by now; shed on overflow."""
        shed: list[Action] = []
        while (
            self._cursor < len(self._stream)
            and self._stream[self._cursor].arrival_time <= state.now + _EPS
        ):
            submission = self._stream[self._cursor]
            self._cursor += 1
            shed.extend(self._offer(submission, 0, state))
        return shed

    def _offer(
        self, submission: ServiceSubmission, attempt: int, state: EngineState
    ) -> list[Action]:
        """One offer of a submission to its tenant queue, breaker-gated."""
        now = state.now
        if (
            self.fast_path
            and self.deadline_policy != "off"
            and submission.deadline is not None
        ):
            # One-shot enforcement instant; a re-offer pushes a harmless
            # duplicate (same time, popped together).
            heapq.heappush(
                self._deadline_heap,
                (submission.deadline, submission.submission_id),
            )
        if self.breaker is not None and not self.breaker.allow(now):
            if self.tracer is not None:
                self.tracer.instant(
                    f"breaker:reject {submission.name}",
                    t=now,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                )
            return self._handle_shed(submission, attempt, state)
        try:
            self._queue.offer(submission, now)
        except ServiceOverloadError:
            if self.breaker is not None:
                self.breaker.record_failure(now)
            return self._handle_shed(submission, attempt, state)
        if self.breaker is not None:
            self.breaker.record_success(now)
        return []

    def _handle_shed(
        self, submission: ServiceSubmission, attempt: int, state: EngineState
    ) -> list[Action]:
        """Backoff-and-retry a shed submission, or reject it for good."""
        tracer = self.tracer
        if self.retry is not None and attempt < self.retry.max_retries:
            due = state.now + self.retry.backoff(
                submission.submission_id, attempt
            )
            heapq.heappush(
                self._retries,
                (due, submission.submission_id, attempt + 1, submission),
            )
            self._retry_sids.add(submission.submission_id)
            self.retry_counts[submission.submission_id] = attempt + 1
            if tracer is not None:
                tracer.instant(
                    f"backoff {submission.name}",
                    t=state.now,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                    args={"attempt": attempt + 1, "due": due},
                )
            return []
        self.rejected_at[submission.submission_id] = state.now
        if tracer is not None:
            tracer.instant(
                f"shed {submission.name}",
                t=state.now,
                track=f"tenant:{submission.tenant}",
                cat="admission",
                args={"attempts": attempt + 1},
            )
        return [Shed(task) for task in submission.tasks]

    def _drain_retries(self, state: EngineState) -> list[Action]:
        """Re-offer every submission whose backoff has elapsed."""
        actions: list[Action] = []
        while self._retries and self._retries[0][0] <= state.now + _EPS:
            __, sid, attempt, submission = heapq.heappop(self._retries)
            self._retry_sids.discard(sid)
            actions.extend(self._offer(submission, attempt, state))
        return actions

    def _cancel_instant(
        self, submission: ServiceSubmission, label: str, now: float, n: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                f"{label} {submission.name}",
                t=now,
                track=f"tenant:{submission.tenant}",
                cat="deadline",
                args={"deadline": submission.deadline, "fragments": n},
            )

    def _enforce_deadlines(self, state: EngineState) -> list[Action]:
        """Cancel work whose deadline budget has expired.

        Waiting and backing-off submissions past their deadline are
        dropped without ever running.  Admitted submissions past their
        deadline are killed outright (``"kill"``) or degraded
        (``"shed"``): not-yet-started fragments are cancelled cheapest
        first, running ones get ``deadline_grace`` more virtual seconds
        before they are killed too.  Every cancelled fragment becomes a
        :class:`~repro.core.schedulers.Cancel` action, so the engine
        releases its resources and records a ``CancelRecord`` — no
        wedged rounds, no silent disappearance.
        """
        if self.deadline_policy == "off":
            return []
        now = state.now
        actions: list[Action] = []

        def drop(submission: ServiceSubmission, label: str) -> None:
            sid = submission.submission_id
            self.deadline_cancelled_at.setdefault(sid, now)
            self._cancel_instant(
                submission, label, now, submission.n_fragments
            )
            for task in submission.tasks:
                if task.task_id in self.cancelled_tasks:
                    continue
                self.cancelled_tasks.add(task.task_id)
                actions.append(Cancel(task, "deadline"))

        # Queued submissions whose budget ran out before admission.
        for entry in list(self._queue.waiting()):
            submission = entry.submission
            deadline = submission.deadline
            if deadline is not None and now > deadline + _EPS:
                self._queue.take(submission.submission_id)
                drop(submission, "deadline:drop")
        # Backing-off submissions whose budget ran out mid-retry.
        if self._retries:
            overdue = [
                e
                for e in self._retries
                if e[3].deadline is not None and now > e[3].deadline + _EPS
            ]
            if overdue:
                self._retries = [
                    e for e in self._retries if e not in overdue
                ]
                heapq.heapify(self._retries)
                for __, __sid, __attempt, submission in overdue:
                    drop(submission, "deadline:drop")
        # Admitted submissions past their budget: kill or degrade.
        by_sid: dict[int, list[Task]] = {}
        for task_id, task in self._inflight.items():
            by_sid.setdefault(
                self._by_submission[task_id].submission_id, []
            ).append(task)
        running_ids = {r.task.task_id for r in state.running}
        for sid in sorted(by_sid):
            submission = self._by_submission[by_sid[sid][0].task_id]
            deadline = submission.deadline
            if deadline is None or now <= deadline + _EPS:
                continue
            unfinished = sorted(
                by_sid[sid], key=lambda t: (t.seq_time, t.task_id)
            )
            running = [t for t in unfinished if t.task_id in running_ids]
            waiting = [t for t in unfinished if t.task_id not in running_ids]
            grace_over = now > deadline + self.deadline_grace + _EPS
            if self.deadline_policy == "kill" or not running or grace_over:
                to_cancel = waiting + running
                self.deadline_cancelled_at.setdefault(sid, now)
                label = "deadline:kill"
            else:
                to_cancel = waiting
                if to_cancel:
                    self.degraded_at.setdefault(sid, now)
                label = "deadline:shed"
            if not to_cancel:
                continue
            self._cancel_instant(submission, label, now, len(to_cancel))
            for task in to_cancel:
                self.cancelled_tasks.add(task.task_id)
                self._allowed.discard(task.task_id)
                del self._inflight[task.task_id]
                actions.append(Cancel(task, "deadline"))
        return actions

    # -- fast-path variants ------------------------------------------------------
    #
    # Behaviour-identical to the reference methods above/below: same
    # actions at the same virtual instants, different bookkeeping.  The
    # reference arm rescans every queue, retry entry and in-flight
    # submission on every engine event; the fast arm keeps a one-shot
    # min-heap of deadline instants and event-driven membership indexes,
    # so an event with nothing due costs O(1).

    def _deadline_live(self, sid: int) -> bool:
        """Is this submission still anywhere the deadline budget can act?"""
        return (
            sid in self._queue
            or sid in self._retry_sids
            or sid in self._inflight_by_sid
        )

    def _enforce_deadlines_fast(self, state: EngineState) -> list[Action]:
        """Instant-driven deadline enforcement (see :meth:`_enforce_deadlines`).

        The heap holds every instant at which enforcement can act: each
        SLO-tagged submission's deadline (pushed at every offer) and,
        under ``"shed"``, its grace bound (pushed at admission).  When
        no live instant is due the whole pass is provably a no-op and
        exits in O(1); when one is due, only the submissions with due
        instants are processed — in the reference arm's exact action
        order (queue drops in FIFO order, retry purges in heap-array
        order, in-flight sweeps in sid order).  This is equivalent to
        the reference full sweep because every threshold the sweep can
        cross (queue/retry drop at the deadline, in-flight kill or shed
        at the deadline, grace kill at deadline + grace) has a covering
        live instant, and between a submission's deadline and its grace
        bound the reference sweep is a no-op for it: its waiting set
        cannot repopulate after the shed and running fragments never
        revert to waiting.  One-shot consumption is therefore safe — a
        processed submission either leaves the gate or its only future
        action is covered by its grace instant.
        """
        if self.deadline_policy == "off":
            return []
        now = state.now
        heap = self._deadline_heap
        while heap and not self._deadline_live(heap[0][1]):
            heapq.heappop(heap)
        if not heap or now <= heap[0][0] + _EPS:
            return []
        # Consume every due instant, keeping the live submissions.
        due_sids: set[int] = set()
        while heap and now > heap[0][0] + _EPS:
            __, sid = heapq.heappop(heap)
            if self._deadline_live(sid):
                due_sids.add(sid)
        if not due_sids:
            return []
        actions: list[Action] = []

        def drop(submission: ServiceSubmission, label: str) -> None:
            sid = submission.submission_id
            self.deadline_cancelled_at.setdefault(sid, now)
            self._cancel_instant(
                submission, label, now, submission.n_fragments
            )
            for task in submission.tasks:
                if task.task_id in self.cancelled_tasks:
                    continue
                self.cancelled_tasks.add(task.task_id)
                actions.append(Cancel(task, "deadline"))

        # Queued submissions whose budget ran out before admission: a
        # queued sid's instants are all deadline instants (grace bounds
        # exist only after admission, and admission is one-way), so a
        # due entry proves the submission overdue.  Overdue entries are
        # the oldest waiting submissions, i.e. the FIFO prefix, so the
        # ordered scan stops after roughly as many entries as there are
        # drops rather than walking the whole queue.
        queued_due = {sid for sid in due_sids if sid in self._queue}
        if queued_due:
            overdue_waiting = []
            for entry in self._queue.waiting():
                if entry.submission.submission_id in queued_due:
                    overdue_waiting.append(entry)
                    if len(overdue_waiting) == len(queued_due):
                        break
            for entry in overdue_waiting:
                self._queue.take(entry.submission.submission_id)
                drop(entry.submission, "deadline:drop")
        # Backing-off submissions whose budget ran out mid-retry.  Each
        # sid has at most one pending retry entry, so the sid-keyed
        # rebuild matches the reference arm's object-equality rebuild.
        if self._retries:
            overdue = [e for e in self._retries if e[1] in due_sids]
            if overdue:
                over_sids = {e[1] for e in overdue}
                self._retries = [
                    e for e in self._retries if e[1] not in over_sids
                ]
                heapq.heapify(self._retries)
                for __, sid, __attempt, submission in overdue:
                    self._retry_sids.discard(sid)
                    drop(submission, "deadline:drop")
        # Admitted submissions past their budget: kill or degrade.
        inflight_due = [
            sid for sid in sorted(due_sids) if sid in self._inflight_by_sid
        ]
        if not inflight_due:
            return actions
        running_ids = {r.task.task_id for r in state.running}
        for sid in inflight_due:
            submission = self._submission_by_sid[sid]
            deadline = submission.deadline
            if deadline is None or now <= deadline + _EPS:
                continue
            unfinished = sorted(
                self._inflight_by_sid[sid],
                key=lambda t: (t.seq_time, t.task_id),
            )
            running = [t for t in unfinished if t.task_id in running_ids]
            waiting = [t for t in unfinished if t.task_id not in running_ids]
            grace_over = now > deadline + self.deadline_grace + _EPS
            if self.deadline_policy == "kill" or not running or grace_over:
                to_cancel = waiting + running
                self.deadline_cancelled_at.setdefault(sid, now)
                label = "deadline:kill"
            else:
                to_cancel = waiting
                if to_cancel:
                    self.degraded_at.setdefault(sid, now)
                label = "deadline:shed"
            if not to_cancel:
                continue
            self._cancel_instant(submission, label, now, len(to_cancel))
            for task in to_cancel:
                self.cancelled_tasks.add(task.task_id)
                self._allowed.discard(task.task_id)
                del self._inflight[task.task_id]
                actions.append(Cancel(task, "deadline"))
            self._allowed_version += 1
            self._inflight_list = None
            cancelled = {t.task_id for t in to_cancel}
            survivors = [
                t
                for t in self._inflight_by_sid[sid]
                if t.task_id not in cancelled
            ]
            if survivors:
                self._inflight_by_sid[sid] = survivors
            else:
                del self._inflight_by_sid[sid]
                del self._submission_by_sid[sid]
        return actions

    def _next_wakeup_fast(self, now: float) -> float | None:
        """Heap-backed :meth:`next_wakeup`: min live instant, not a scan."""
        times: list[float] = []
        if self._retries:
            times.append(self._retries[0][0])
        if self.deadline_policy != "off" and self._deadline_heap:
            heap = self._deadline_heap
            # Ascending pops: the first live entry past now is the min
            # deadline wake.  Live-but-boundary entries (within _EPS of
            # now, not yet consumable) are pushed back untouched.
            buffered: list[tuple[float, int]] = []
            while heap:
                t, sid = heap[0]
                if not self._deadline_live(sid):
                    heapq.heappop(heap)
                    continue
                if t + 2 * _EPS > now + _EPS:
                    times.append(t + 2 * _EPS)
                    break
                buffered.append(heapq.heappop(heap))
            for entry in buffered:
                heapq.heappush(heap, entry)
        future = [t for t in times if t > now + _EPS]
        return min(future) if future else None

    def _refresh_inflight_fast(self, state: EngineState) -> None:
        """Watermarked :meth:`_refresh_inflight`: scan only on completions."""
        completed = state.completed_ids
        if len(completed) == self._completed_seen:
            return
        self._completed_seen = len(completed)
        done = [tid for tid in self._inflight if tid in completed]
        if not done:
            return
        for tid in done:
            del self._inflight[tid]
            sid = self._by_submission[tid].submission_id
            tasks = self._inflight_by_sid.get(sid)
            if tasks is not None:
                tasks[:] = [t for t in tasks if t.task_id != tid]
                if not tasks:
                    del self._inflight_by_sid[sid]
                    del self._submission_by_sid[sid]
        self._inflight_list = None

    def _admit_fast(self, state: EngineState) -> None:
        """Incremental :meth:`_admit`: early budget exit, memoized inflight."""
        queue = self._queue
        inflight = self._inflight
        while True:
            if not len(queue):
                return
            budget = self.max_inflight_fragments - len(inflight)
            # The policy's ``head_window`` bounds how deep into the
            # FIFO prefix it can ever look, so building more than that
            # many qualifying candidates is wasted work; truncating the
            # *filtered* list preserves the exact entries (and indices)
            # the policy would have examined.
            hw = self.admission.head_window
            if inflight:
                if budget < 1:
                    return  # every bundle has >= 1 fragment: no candidates
                if hw is None:
                    candidates = [
                        entry
                        for entry in queue.waiting()
                        if entry.submission.n_fragments <= budget
                    ]
                else:
                    candidates = []
                    for entry in queue.waiting():
                        if entry.submission.n_fragments <= budget:
                            candidates.append(entry)
                            if len(candidates) >= hw:
                                break
            else:
                # Never wedge: an empty machine always takes one query.
                waiting = queue.waiting()
                candidates = waiting if hw is None else waiting[:hw]
            if not candidates:
                return
            if self._inflight_list is None:
                self._inflight_list = list(inflight.values())
            choice = self.admission.select(
                candidates, self._inflight_list, state.machine
            )
            if choice is None:
                return
            submission = queue.take(choice.submission_id)
            sid = submission.submission_id
            self.admitted_at[sid] = state.now
            if self.tracer is not None:
                self.tracer.span(
                    f"queue-wait {submission.name}",
                    t=submission.arrival_time,
                    dur=state.now - submission.arrival_time,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                    args={"fragments": submission.n_fragments},
                )
            for task in submission.tasks:
                self._allowed.add(task.task_id)
                inflight[task.task_id] = task
                self._by_submission[task.task_id] = submission
            self._allowed_version += 1
            self._inflight_list = None
            self._inflight_by_sid[sid] = list(submission.tasks)
            self._submission_by_sid[sid] = submission
            if (
                self.deadline_policy == "shed"
                and submission.deadline is not None
            ):
                heapq.heappush(
                    self._deadline_heap,
                    (submission.deadline + self.deadline_grace, sid),
                )

    def next_wakeup(self, now: float) -> float | None:
        """Earliest retry or deadline instant, so the engine wakes us."""
        if self.fast_path:
            return self._next_wakeup_fast(now)
        times: list[float] = []
        if self._retries:
            times.append(self._retries[0][0])
        if self.deadline_policy != "off":
            deadlines: list[float] = []
            for entry in self._queue.waiting():
                if entry.submission.deadline is not None:
                    deadlines.append(entry.submission.deadline)
            for __, __sid, __attempt, submission in self._retries:
                if submission.deadline is not None:
                    deadlines.append(submission.deadline)
            seen: set[int] = set()
            for task_id in self._inflight:
                submission = self._by_submission[task_id]
                sid = submission.submission_id
                if sid in seen or submission.deadline is None:
                    continue
                seen.add(sid)
                deadlines.append(submission.deadline)
                if self.deadline_policy == "shed":
                    deadlines.append(
                        submission.deadline + self.deadline_grace
                    )
            # Nudge past the instant so the `now > deadline` comparison
            # in the enforcement pass is already true when we wake.
            times.extend(d + 2 * _EPS for d in deadlines)
        future = [t for t in times if t > now + _EPS]
        return min(future) if future else None

    def _refresh_inflight(self, state: EngineState) -> None:
        """Drop completed fragments from the in-flight set."""
        done = [
            task_id
            for task_id in self._inflight
            if task_id in state.completed_ids
        ]
        for task_id in done:
            del self._inflight[task_id]

    def _admit(self, state: EngineState) -> None:
        """Release waiting submissions while the fragment budget allows."""
        while True:
            budget = self.max_inflight_fragments - len(self._inflight)
            waiting = self._queue.waiting()
            if not self._inflight:
                # Never wedge: an empty machine always takes one query.
                candidates = waiting
            else:
                candidates = [
                    entry
                    for entry in waiting
                    if entry.submission.n_fragments <= budget
                ]
            if not candidates:
                return
            choice = self.admission.select(
                candidates, list(self._inflight.values()), state.machine
            )
            if choice is None:
                return
            submission = self._queue.take(choice.submission_id)
            self.admitted_at[submission.submission_id] = state.now
            if self.tracer is not None:
                self.tracer.span(
                    f"queue-wait {submission.name}",
                    t=submission.arrival_time,
                    dur=state.now - submission.arrival_time,
                    track=f"tenant:{submission.tenant}",
                    cat="admission",
                    args={"fragments": submission.n_fragments},
                )
            for task in submission.tasks:
                self._allowed.add(task.task_id)
                self._inflight[task.task_id] = task
                self._by_submission[task.task_id] = submission

    def decide(self, state: EngineState) -> list[Action]:
        """One gate round: offer, admit, then let the scheduler place.

        One round covers every arrival due at this virtual instant —
        the engine drains same-timestamp arrivals into a single event
        and :meth:`_offer_arrivals` offers the whole burst before the
        admission policy is consulted once.
        """
        self.decide_rounds += 1
        if self.breaker is not None:
            eff = getattr(state, "effective_machine", None)
            if eff is not None and state.machine.io_bandwidth > 0:
                self.breaker.observe_bandwidth(
                    state.now, eff.io_bandwidth / state.machine.io_bandwidth
                )
        fast = self.fast_path
        actions = self._drain_retries(state)
        actions.extend(self._offer_arrivals(state))
        if fast:
            self._refresh_inflight_fast(state)
        else:
            self._refresh_inflight(state)
        cancelled_now = len(actions)
        actions.extend(
            self._enforce_deadlines_fast(state)
            if fast
            else self._enforce_deadlines(state)
        )
        banned = {
            a.task.task_id
            for a in actions[cancelled_now:]
            if isinstance(a, Cancel)
        }
        if fast:
            self._admit_fast(state)
            view: _GatedView = _FastGatedView(state, self, banned)
        else:
            self._admit(state)
            view = _GatedView(state, self._allowed, banned)
        actions.extend(self.inner.decide(view))
        return actions


class QueryService:
    """An open multi-tenant query service over the fluid engine.

    Args:
        machine: machine configuration (defaults to the paper machine).
        admission: admission policy (defaults to balance-aware).
        scheduler: inner scheduling policy (defaults to the paper's
            INTER-WITH-ADJ, unchanged).
        queue_capacity: per-tenant waiting-queue bound.
        max_inflight_fragments: admitted-but-unfinished fragment budget.
        timeline_bucket: bucket width (seconds) of the utilization
            timeline attached to the metrics; ``None`` skips it.
        retry: shed-retry policy handed to the gate (``None`` = off).
        breaker: admission circuit breaker (``None`` = off).
        deadline_policy: end-to-end deadline enforcement — ``"off"``
            (deadlines stay soft SLO tags), ``"kill"`` (cancel every
            unfinished fragment at the deadline) or ``"shed"`` (shed
            cheapest not-yet-started fragments at the deadline, kill
            the rest after ``deadline_grace``).  See
            :class:`AdmissionGate`.
        deadline_grace: extra virtual seconds ``"shed"`` grants running
            fragments past their deadline.
        degradations: scheduled disk-bandwidth degradation windows,
            applied by the fluid engine and observed by the breaker.
        tracer: a :class:`~repro.obs.Tracer` threaded into the gate
            and the fluid engine; ``None`` (or the falsy NullTracer)
            records nothing.
        metrics: a :class:`~repro.obs.MetricsRegistry` the digest step
            populates with ``service.*`` counters, histograms and the
            breaker-state series; ``None`` skips it.
        fast_path: run the incremental admission gate (default); pass
            ``False`` for the preserved seed-era gate — same results,
            used as the servebench reference arm.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        *,
        admission: AdmissionPolicy | None = None,
        scheduler: SchedulingPolicy | None = None,
        queue_capacity: int = 8,
        max_inflight_fragments: int = 6,
        timeline_bucket: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_policy: str = "off",
        deadline_grace: float = 0.0,
        degradations: "Sequence[DiskDegradation] | None" = None,
        tracer=None,
        metrics=None,
        fast_path: bool = True,
    ) -> None:
        self.machine = machine or paper_machine()
        self.admission = admission or BalanceAwareAdmission()
        self.scheduler = scheduler or InterWithAdjPolicy()
        self.queue_capacity = queue_capacity
        self.max_inflight_fragments = max_inflight_fragments
        self.timeline_bucket = timeline_bucket
        self.retry = retry
        self.breaker = breaker
        self.deadline_policy = deadline_policy
        self.deadline_grace = deadline_grace
        self.degradations = tuple(degradations or ())
        self.tracer = tracer or None
        self.metrics = metrics
        self.fast_path = fast_path
        self._submitted: list[ServiceSubmission] = []

    def submit(
        self,
        name: str,
        tasks: Sequence[Task],
        *,
        tenant: str = "default",
        arrival_time: float = 0.0,
        deadline: float | None = None,
        relative_deadline: float | None = None,
    ) -> ServiceSubmission:
        """Queue one submission for the next :meth:`run_submitted`.

        The deadline budget enters here: ``deadline`` is an absolute
        virtual time, ``relative_deadline`` is seconds after arrival;
        give at most one.  With ``deadline_policy="off"`` the deadline
        is a soft SLO tag; otherwise the gate enforces it end to end.
        """
        if deadline is not None and relative_deadline is not None:
            raise AdmissionError(
                -1, "give deadline or relative_deadline, not both"
            )
        if relative_deadline is not None:
            deadline = arrival_time + relative_deadline
        submission = ServiceSubmission(
            name=name,
            tenant=tenant,
            tasks=tuple(tasks),
            arrival_time=arrival_time,
            deadline=deadline,
        )
        self._submitted.append(submission)
        return submission

    def run_submitted(self) -> ServiceResult:
        """Serve everything queued by :meth:`submit`, then clear it."""
        submissions, self._submitted = self._submitted, []
        return self.run(submissions)

    def run(
        self, submissions: Sequence[ServiceSubmission]
    ) -> ServiceResult:
        """Serve one arrival stream to completion and digest the trace."""
        if not submissions:
            raise AdmissionError(-1, "empty submission stream")
        gate = AdmissionGate(
            submissions,
            inner=self.scheduler,
            admission=self.admission,
            queue_capacity=self.queue_capacity,
            max_inflight_fragments=self.max_inflight_fragments,
            retry=self.retry,
            breaker=self.breaker,
            deadline_policy=self.deadline_policy,
            deadline_grace=self.deadline_grace,
            tracer=self.tracer,
            fast_path=self.fast_path,
        )
        pooled = [task for s in submissions for task in s.tasks]
        simulator = FluidSimulator(
            self.machine,
            degradations=self.degradations or None,
            tracer=self.tracer,
        )
        schedule = simulator.run(pooled, gate)
        outcomes = self._collect(submissions, gate, schedule)
        metrics = self._digest(outcomes, schedule, gate)
        return ServiceResult(
            admission_name=self.admission.name,
            outcomes=outcomes,
            schedule=schedule,
            metrics=metrics,
            decide_rounds=gate.decide_rounds,
        )

    # -- digestion ----------------------------------------------------------------

    @staticmethod
    def _collect(
        submissions: Sequence[ServiceSubmission],
        gate: AdmissionGate,
        schedule: ScheduleResult,
    ) -> list[SubmissionOutcome]:
        finished: dict[int, float] = {}
        for record in schedule.records:
            finished[record.task.task_id] = record.finished_at
        outcomes = []
        for submission in sorted(
            submissions, key=lambda s: (s.arrival_time, s.submission_id)
        ):
            sid = submission.submission_id
            if sid in gate.rejected_at:
                outcomes.append(
                    SubmissionOutcome(
                        submission=submission,
                        status="rejected",
                        rejected_at=gate.rejected_at[sid],
                    )
                )
                continue
            if sid in gate.deadline_cancelled_at or sid in gate.degraded_at:
                ends = [
                    finished.get(t.task_id)
                    for t in submission.tasks
                    if t.task_id not in gate.cancelled_tasks
                ]
                if (
                    sid in gate.deadline_cancelled_at
                    or not ends
                    or any(e is None for e in ends)
                ):
                    outcomes.append(
                        SubmissionOutcome(
                            submission=submission,
                            status="deadline",
                            admitted_at=gate.admitted_at.get(sid),
                            cancelled_at=gate.deadline_cancelled_at.get(
                                sid, gate.degraded_at.get(sid)
                            ),
                        )
                    )
                else:
                    outcomes.append(
                        SubmissionOutcome(
                            submission=submission,
                            status="degraded",
                            admitted_at=gate.admitted_at[sid],
                            finished_at=max(ends),
                            cancelled_at=gate.degraded_at[sid],
                        )
                    )
                continue
            ends = [finished.get(t.task_id) for t in submission.tasks]
            if any(e is None for e in ends):
                raise AdmissionError(
                    sid, "admitted submission did not run to completion"
                )
            outcomes.append(
                SubmissionOutcome(
                    submission=submission,
                    status="completed",
                    admitted_at=gate.admitted_at[sid],
                    finished_at=max(ends),
                )
            )
        return outcomes

    def _digest(
        self,
        outcomes: list[SubmissionOutcome],
        schedule: ScheduleResult,
        gate: AdmissionGate,
    ) -> ServiceMetrics:
        tenants: dict[str, TenantMetrics] = {}
        for outcome in outcomes:
            submission = outcome.submission
            tm = tenants.setdefault(
                submission.tenant, TenantMetrics(tenant=submission.tenant)
            )
            tm.offered += 1
            tm.retries += gate.retry_counts.get(submission.submission_id, 0)
            if outcome.status == "rejected":
                tm.rejected += 1
            elif outcome.status == "deadline":
                tm.deadline_cancelled += 1
                if outcome.admitted_at is not None:
                    tm.admitted += 1
            else:
                tm.admitted += 1
                tm.completed += 1
                if outcome.status == "degraded":
                    tm.degraded += 1
                tm.response_times.append(outcome.response_time)
            if submission.deadline is not None:
                tm.slo_tagged += 1
                if outcome.slo_missed:
                    tm.slo_misses += 1
        timeline = (
            utilization_timeline(schedule, bucket=self.timeline_bucket)
            if self.timeline_bucket is not None
            else []
        )
        if self.metrics is not None:
            self._publish(outcomes, gate, self.metrics)
        return ServiceMetrics(
            admission_name=self.admission.name,
            elapsed=schedule.elapsed,
            tenants=tenants,
            cpu_utilization=schedule.cpu_utilization,
            io_utilization=schedule.io_utilization,
            utilization_timeline=timeline,
            breaker_timeline=(
                list(gate.breaker.timeline) if gate.breaker is not None else []
            ),
        )

    @staticmethod
    def _publish(
        outcomes: list[SubmissionOutcome],
        gate: AdmissionGate,
        registry,
    ) -> None:
        """Fold the run's outcomes into a unified metrics registry.

        Populates ``service.*`` counters (offered/admitted/rejected/
        completed/retries), the response-time and queue-wait histograms
        and the breaker-state series on the given
        :class:`~repro.obs.MetricsRegistry`.
        """
        # Counts and latency batches accumulate in locals so the
        # registry sees one O(1) update per metric, and the histograms
        # one batched sort, instead of per-outcome insertion.
        n_admitted = n_rejected = n_completed = n_retries = 0
        n_deadline = n_degraded = 0
        response_times: list[float] = []
        queue_waits: list[float] = []
        for outcome in outcomes:
            n_retries += gate.retry_counts.get(
                outcome.submission.submission_id, 0
            )
            if outcome.status == "rejected":
                n_rejected += 1
            elif outcome.status == "deadline":
                n_deadline += 1
                if outcome.admitted_at is not None:
                    n_admitted += 1
            else:
                n_admitted += 1
                n_completed += 1
                if outcome.status == "degraded":
                    n_degraded += 1
                response_times.append(outcome.response_time)
                queue_waits.append(outcome.queueing_delay)
        registry.counter("service.offered").inc(len(outcomes))
        registry.counter("service.admitted").inc(n_admitted)
        registry.counter("service.rejected").inc(n_rejected)
        registry.counter("service.completed").inc(n_completed)
        registry.counter("service.retries").inc(n_retries)
        registry.counter("service.deadline_cancels").inc(n_deadline)
        registry.counter("service.degraded").inc(n_degraded)
        registry.histogram("service.response_time").observe_many(
            response_times
        )
        registry.histogram("service.queue_wait").observe_many(queue_waits)
        if gate.breaker is not None:
            series = registry.series("service.breaker_state")
            for t, name in gate.breaker.timeline:
                series.append(t, name)
