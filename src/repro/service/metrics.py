"""Per-tenant and global serving metrics.

The serving mode is judged the way an online system is: counters
(offered / admitted / rejected / completed), response-time percentiles
(p50/p95/p99), SLO-miss rate and resource-utilization over time — not
the closed-batch makespan the Figure-7 experiments report.  Everything
here is plain deterministic arithmetic over the simulator trace, so a
metrics table is a pure function of ``(seed, λ, mix)`` and can be
diffed byte-for-byte across runs.

The percentile implementation now lives in
:mod:`repro.obs.metrics`; :func:`percentile` is re-exported here for
backward compatibility (it raises
:class:`~repro.errors.ObsError`, a :class:`~repro.errors.ReproError`
subclass, on an out-of-range ``p``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.report import format_table
from ..errors import ServiceError
from ..obs.metrics import percentile
from ..sim.fluid import ScheduleResult

__all__ = [
    "percentile",
    "TenantMetrics",
    "ServiceMetrics",
    "utilization_timeline",
    "format_timeline",
]


@dataclass
class TenantMetrics:
    """Counters and response-time digest for one tenant."""

    tenant: str
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: Backoff re-offers made for this tenant's shed submissions.
    retries: int = 0
    #: Submissions killed by deadline-budget enforcement.
    deadline_cancelled: int = 0
    #: Submissions that completed degraded (fragments shed at deadline).
    degraded: int = 0
    slo_tagged: int = 0
    slo_misses: int = 0
    response_times: list[float] = field(default_factory=list)

    @property
    def p50(self) -> float:
        """Median response time of completed submissions."""
        return percentile(self.response_times, 50.0)

    @property
    def p95(self) -> float:
        """95th-percentile response time."""
        return percentile(self.response_times, 95.0)

    @property
    def p99(self) -> float:
        """99th-percentile response time."""
        return percentile(self.response_times, 99.0)

    @property
    def mean_response_time(self) -> float:
        """Mean response time of completed submissions."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def slo_miss_rate(self) -> float:
        """Fraction of SLO-tagged completions that missed their deadline."""
        if self.slo_tagged == 0:
            return 0.0
        return self.slo_misses / self.slo_tagged


@dataclass
class ServiceMetrics:
    """Global serving metrics plus the per-tenant breakdown."""

    admission_name: str
    elapsed: float
    tenants: dict[str, TenantMetrics]
    cpu_utilization: float
    io_utilization: float
    utilization_timeline: list[tuple[float, float, float]] = field(
        default_factory=list
    )
    #: ``(t, state)`` transitions of the admission circuit breaker
    #: (empty when no breaker guards the gate).
    breaker_timeline: list[tuple[float, str]] = field(default_factory=list)

    def _totals(self) -> TenantMetrics:
        total = TenantMetrics(tenant="all")
        for tm in self.tenants.values():
            total.offered += tm.offered
            total.admitted += tm.admitted
            total.rejected += tm.rejected
            total.completed += tm.completed
            total.retries += tm.retries
            total.deadline_cancelled += tm.deadline_cancelled
            total.degraded += tm.degraded
            total.slo_tagged += tm.slo_tagged
            total.slo_misses += tm.slo_misses
            total.response_times.extend(tm.response_times)
        return total

    @property
    def overall(self) -> TenantMetrics:
        """All tenants folded into one digest."""
        return self._totals()

    @property
    def throughput(self) -> float:
        """Completed submissions per second of simulated time."""
        total = self._totals()
        return total.completed / self.elapsed if self.elapsed > 0 else 0.0

    def to_table(self) -> str:
        """The per-tenant metrics table (plus an ``all`` summary row)."""
        rows = []
        tenant_rows = sorted(self.tenants)
        for name in tenant_rows:
            rows.append(self._row(self.tenants[name]))
        rows.append(self._row(self._totals()))
        return format_table(
            [
                "tenant",
                "offered",
                "admitted",
                "rejected",
                "retries",
                "completed",
                "p50 (s)",
                "p95 (s)",
                "p99 (s)",
                "SLO miss",
            ],
            rows,
            title=(
                f"service metrics — admission={self.admission_name}, "
                f"elapsed={self.elapsed:.2f}s, "
                f"throughput={self.throughput:.3f}/s, "
                f"cpu={self.cpu_utilization:.1%}, io={self.io_utilization:.1%}"
            ),
        )

    def breaker_table(self) -> str:
        """The breaker-state timeline as a printable table."""
        rows = [[f"{t:.3f}", state] for t, state in self.breaker_timeline]
        return format_table(
            ["t (s)", "breaker"], rows, title="admission breaker timeline"
        )

    @staticmethod
    def _row(tm: TenantMetrics) -> list[str]:
        return [
            tm.tenant,
            str(tm.offered),
            str(tm.admitted),
            str(tm.rejected),
            str(tm.retries),
            str(tm.completed),
            f"{tm.p50:.3f}",
            f"{tm.p95:.3f}",
            f"{tm.p99:.3f}",
            f"{tm.slo_miss_rate:.1%}",
        ]


def utilization_timeline(
    result: ScheduleResult, *, bucket: float = 1.0
) -> list[tuple[float, float, float]]:
    """Bucketed ``(t, cpu_fraction, io_fraction)`` utilization series.

    Rebuilds allocation over time from each task's parallelism history:
    within a bucket, a task contributes its allocated processors
    (capped at machine capacity in aggregate) and its io demand
    ``C_i * x`` capped at the nominal bandwidth ``B``.  The series is a
    diagnostic view (the engine's utilization integrals are exact); it
    shows *when* the machine was saturated, not just how much on
    average.
    """
    if bucket <= 0:
        raise ServiceError("bucket must be positive")
    machine = result.machine
    if result.elapsed <= 0:
        return []
    n_buckets = int(result.elapsed / bucket) + 1
    cpu = [0.0] * n_buckets
    io = [0.0] * n_buckets
    for record in result.records:
        history = list(record.parallelism_history)
        for i, (start, x) in enumerate(history):
            end = (
                history[i + 1][0]
                if i + 1 < len(history)
                else record.finished_at
            )
            first = int(start / bucket)
            last = int(min(end, result.elapsed - 1e-12) / bucket)
            for b in range(first, min(last, n_buckets - 1) + 1):
                b_start = max(start, b * bucket)
                b_end = min(end, (b + 1) * bucket)
                overlap = max(0.0, b_end - b_start)
                cpu[b] += x * overlap
                io[b] += record.task.io_rate * x * overlap
    series = []
    for b in range(n_buckets):
        width = min(bucket, max(result.elapsed - b * bucket, 0.0))
        if width <= 0:
            continue
        cpu_frac = min(1.0, cpu[b] / (machine.processors * width))
        io_frac = min(1.0, io[b] / (machine.io_bandwidth * width))
        series.append((b * bucket, cpu_frac, io_frac))
    return series


def format_timeline(series: list[tuple[float, float, float]]) -> str:
    """Render a utilization timeline as a fixed-width text strip chart."""
    rows = [
        (f"{t:.0f}", f"{cpu:.0%}", f"{io:.0%}", "#" * round(cpu * 20), "+" * round(io * 20))
        for t, cpu, io in series
    ]
    return format_table(
        ["t (s)", "cpu", "io", "cpu bar", "io bar"],
        rows,
        title="utilization timeline",
    )
