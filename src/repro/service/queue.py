"""Bounded per-tenant admission queues with backpressure.

A :class:`ServiceSubmission` is one user query entering the open
system: a small bundle of scheduler tasks (the query's plan fragments)
plus an arrival time, a tenant label and an optional response-time SLO.
Submissions wait in per-tenant bounded FIFO queues until the admission
controller (:mod:`repro.service.admission`) releases them to the
scheduler.  A full queue *sheds load*: the offer raises
:class:`~repro.errors.ServiceOverloadError` and the submission is never
executed — the open-system analogue of the closed batch in
``optimizer/multiquery.py``, where every query always runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.ids import submission_ids as _submission_ids
from ..core.task import Task
from ..errors import AdmissionError, ServiceOverloadError


@dataclass(frozen=True, slots=True)
class ServiceSubmission:
    """One query entering the service.

    Attributes:
        name: human-readable label used in traces and metrics.
        tenant: owning tenant; each tenant has its own bounded queue.
        tasks: the query's plan fragments as scheduler tasks.  Their
            ``depends_on`` edges must stay within the bundle and their
            ``arrival_time`` must equal :attr:`arrival_time` (use
            :meth:`repro.optimizer.rewire_dependencies` after stamping).
        arrival_time: when the submission reaches the service (seconds).
        deadline: absolute response-time SLO deadline, or ``None`` when
            the submission carries no SLO.
        submission_id: unique id, auto-assigned.
    """

    name: str
    tenant: str
    tasks: tuple[Task, ...]
    arrival_time: float = 0.0
    deadline: float | None = None
    submission_id: int = field(default_factory=_submission_ids)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise AdmissionError(self.submission_id, "submission has no tasks")
        if self.arrival_time < 0:
            raise AdmissionError(
                self.submission_id, "arrival_time must be >= 0"
            )
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise AdmissionError(
                self.submission_id, "deadline precedes the arrival time"
            )

    @property
    def n_fragments(self) -> int:
        """Number of plan fragments (scheduler tasks) in the bundle."""
        return len(self.tasks)

    @property
    def total_seq_time(self) -> float:
        """Total sequential work across the bundle, in seconds."""
        return sum(t.seq_time for t in self.tasks)

    @property
    def total_io_count(self) -> float:
        """Total io requests issued by the bundle."""
        return sum(t.io_count for t in self.tasks)

    @property
    def io_rate(self) -> float:
        """Aggregate io rate ``sum(D_i) / sum(T_i)`` of the bundle.

        The submission-level analogue of the paper's per-task
        ``C_i = D_i / T_i``; the balance-aware admission policy
        classifies waiting submissions with it.
        """
        total = self.total_seq_time
        return self.total_io_count / total if total > 0 else 0.0


@dataclass(frozen=True, slots=True)
class QueuedSubmission:
    """Book-keeping wrapper for a submission waiting in a queue."""

    submission: ServiceSubmission
    enqueued_at: float


class AdmissionQueue:
    """Per-tenant bounded FIFO queues feeding the admission controller.

    Submissions live in one insertion-ordered dict keyed by submission
    id: dict order *is* global arrival (FIFO) order, because ids are
    never re-offered and removal preserves the order of the survivors.
    That makes :meth:`offer`/:meth:`take`/:meth:`__contains__` O(1) and
    :meth:`waiting` a memoized snapshot instead of the seed-era
    flatten-and-sort (:class:`ReferenceAdmissionQueue`) — the admission
    gate calls ``waiting()`` on every engine consult.

    Args:
        capacity_per_tenant: maximum submissions waiting per tenant;
            an offer beyond this sheds load with
            :class:`~repro.errors.ServiceOverloadError`.
    """

    def __init__(self, capacity_per_tenant: int) -> None:
        if capacity_per_tenant < 1:
            raise AdmissionError(-1, "capacity_per_tenant must be >= 1")
        self.capacity_per_tenant = capacity_per_tenant
        self._entries: dict[int, QueuedSubmission] = {}
        self._depths: dict[str, int] = {}
        self._waiting_cache: list[QueuedSubmission] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, submission_id: int) -> bool:
        """Is a submission with this id currently waiting?"""
        return submission_id in self._entries

    def depth(self, tenant: str) -> int:
        """Submissions currently waiting for one tenant."""
        return self._depths.get(tenant, 0)

    def offer(self, submission: ServiceSubmission, now: float) -> None:
        """Enqueue ``submission``; shed it when the tenant queue is full.

        Raises:
            ServiceOverloadError: the tenant's queue is at capacity.
        """
        tenant = submission.tenant
        depth = self._depths.get(tenant, 0)
        if depth >= self.capacity_per_tenant:
            raise ServiceOverloadError(
                submission.submission_id, submission.tenant
            )
        entry = QueuedSubmission(submission=submission, enqueued_at=now)
        self._entries[submission.submission_id] = entry
        self._depths[tenant] = depth + 1
        if self._waiting_cache is not None:
            self._waiting_cache.append(entry)  # newest is last in FIFO order

    def waiting(self) -> list[QueuedSubmission]:
        """All waiting submissions in global arrival (FIFO) order.

        Returns a snapshot the queue may reuse across calls — callers
        must treat it as read-only (they always have).
        """
        if self._waiting_cache is None:
            self._waiting_cache = list(self._entries.values())
        return self._waiting_cache

    def take(self, submission_id: int) -> ServiceSubmission:
        """Remove and return one waiting submission by id.

        Raises:
            AdmissionError: the id is not waiting in any queue.
        """
        entry = self._entries.pop(submission_id, None)
        if entry is None:
            raise AdmissionError(submission_id, "not waiting in any queue")
        self._depths[entry.submission.tenant] -= 1
        self._waiting_cache = None
        return entry.submission


class ReferenceAdmissionQueue:
    """The seed-era list-backed queue, kept verbatim as the slow arm.

    ``AdmissionGate(fast_path=False)`` and the servebench *before* arm
    run on this implementation so speedups are measured against the
    genuine pre-optimization algorithm; the frozen serve corpus pins
    both implementations to the same digests.
    """

    def __init__(self, capacity_per_tenant: int) -> None:
        if capacity_per_tenant < 1:
            raise AdmissionError(-1, "capacity_per_tenant must be >= 1")
        self.capacity_per_tenant = capacity_per_tenant
        self._queues: dict[str, list[QueuedSubmission]] = {}
        self._order = itertools.count()
        self._seq: dict[int, int] = {}

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __contains__(self, submission_id: int) -> bool:
        """Is a submission with this id currently waiting?"""
        return submission_id in self._seq

    def depth(self, tenant: str) -> int:
        """Submissions currently waiting for one tenant."""
        return len(self._queues.get(tenant, []))

    def offer(self, submission: ServiceSubmission, now: float) -> None:
        """Enqueue ``submission``; shed it when the tenant queue is full.

        Raises:
            ServiceOverloadError: the tenant's queue is at capacity.
        """
        queue = self._queues.setdefault(submission.tenant, [])
        if len(queue) >= self.capacity_per_tenant:
            raise ServiceOverloadError(
                submission.submission_id, submission.tenant
            )
        self._seq[submission.submission_id] = next(self._order)
        queue.append(QueuedSubmission(submission=submission, enqueued_at=now))

    def waiting(self) -> list[QueuedSubmission]:
        """All waiting submissions in global arrival (FIFO) order."""
        entries = [
            entry for queue in self._queues.values() for entry in queue
        ]
        entries.sort(key=lambda e: self._seq[e.submission.submission_id])
        return entries

    def take(self, submission_id: int) -> ServiceSubmission:
        """Remove and return one waiting submission by id.

        Raises:
            AdmissionError: the id is not waiting in any queue.
        """
        for queue in self._queues.values():
            for i, entry in enumerate(queue):
                if entry.submission.submission_id == submission_id:
                    del queue[i]
                    self._seq.pop(submission_id, None)
                    return entry.submission
        raise AdmissionError(submission_id, "not waiting in any queue")
