"""Serving mode: an open multi-tenant query service (ROADMAP north star).

Section 4 of the paper describes XPRS's multi-user mode: optimize each
query with intra-operation parallelism only and let the scheduler mix
tasks *across* queries to keep both resources busy.  This package turns
that batch-mode idea into an open system — arrival processes, bounded
per-tenant queues with load shedding, balance-aware admission control,
per-tenant SLO metrics and a stress harness that finds the
latency-vs-throughput knee.  See ``docs/SERVICE.md``.
"""

from .admission import (
    AdmissionPolicy,
    BalanceAwareAdmission,
    FifoAdmission,
    admission_by_name,
)
from .arrivals import (
    ArrivalConfig,
    mixed_tenant_config,
    onoff_stream,
    poisson_stream,
)
from .metrics import (
    ServiceMetrics,
    TenantMetrics,
    format_timeline,
    percentile,
    utilization_timeline,
)
from .queue import AdmissionQueue, QueuedSubmission, ServiceSubmission
from .server import (
    AdmissionGate,
    QueryService,
    ServiceResult,
    SubmissionOutcome,
)
from .stress import (
    StressPoint,
    estimate_capacity,
    format_sweep,
    run_point,
    smoke_lines,
    sweep,
)

__all__ = [
    "AdmissionGate",
    "AdmissionPolicy",
    "AdmissionQueue",
    "ArrivalConfig",
    "BalanceAwareAdmission",
    "FifoAdmission",
    "QueryService",
    "QueuedSubmission",
    "ServiceMetrics",
    "ServiceResult",
    "ServiceSubmission",
    "StressPoint",
    "SubmissionOutcome",
    "TenantMetrics",
    "admission_by_name",
    "estimate_capacity",
    "format_sweep",
    "format_timeline",
    "mixed_tenant_config",
    "onoff_stream",
    "percentile",
    "poisson_stream",
    "run_point",
    "smoke_lines",
    "sweep",
    "utilization_timeline",
]
