"""Reproducible stress harness: offered-load sweeps and the knee table.

The ROADMAP's serving questions — where does throughput saturate, what
happens to tail latency past the knee, how graceful is overload — are
answered by sweeping the offered load λ and recording, at each point,
throughput, response-time percentiles, shed rate and utilization.
Everything is a pure function of ``(seed, λ, mix, policy)``: running
the same sweep twice prints byte-identical tables, which the service
benchmark asserts.

Offered load is expressed as a fraction ρ of the service's measured
capacity μ (see :func:`estimate_capacity`), so "80% offered load"
means the same thing across mixes and machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..bench.report import format_table
from ..config import MachineConfig, paper_machine
from ..errors import ConfigError
from .admission import AdmissionPolicy, BalanceAwareAdmission
from .arrivals import ArrivalConfig, mixed_tenant_config, poisson_stream
from ..obs.metrics import percentile
from .queue import ServiceSubmission
from .server import QueryService, ServiceResult

#: Stream builder signature: ``(rate, seed, config, machine) -> stream``.
StreamFactory = Callable[
    [float, int, ArrivalConfig, MachineConfig], list[ServiceSubmission]
]


def _default_stream(
    rate: float,
    seed: int,
    config: ArrivalConfig,
    machine: MachineConfig,
) -> list[ServiceSubmission]:
    """Poisson arrivals — the default open-loop stream."""
    return poisson_stream(rate=rate, seed=seed, config=config, machine=machine)


@dataclass(frozen=True)
class StressPoint:
    """One row of the latency-vs-throughput knee table."""

    rho: float
    rate: float
    offered: int
    completed: int
    rejected: int
    throughput: float
    p50: float
    p95: float
    p99: float
    slo_miss_rate: float
    cpu_utilization: float
    io_utilization: float

    def row(self) -> list[str]:
        """The point formatted as a knee-table row."""
        return [
            f"{self.rho:.2f}",
            f"{self.rate:.4f}",
            str(self.offered),
            str(self.completed),
            str(self.rejected),
            f"{self.throughput:.4f}",
            f"{self.p50:.2f}",
            f"{self.p95:.2f}",
            f"{self.p99:.2f}",
            f"{self.slo_miss_rate:.1%}",
            f"{self.cpu_utilization:.1%}",
            f"{self.io_utilization:.1%}",
        ]


def estimate_capacity(
    *,
    seed: int,
    config: ArrivalConfig | None = None,
    machine: MachineConfig | None = None,
    service: QueryService | None = None,
    n_probe: int = 30,
) -> float:
    """Measure the service rate μ (submissions/second) empirically.

    Runs a closed probe batch — ``n_probe`` submissions all present at
    time zero — through the same service configuration and derives
    ``μ = completed / makespan``.  Deterministic given the seed, and
    honest about every scheduling effect (pairing, adjustment overhead,
    admission order), unlike an analytic bound.
    """
    config = config or ArrivalConfig()
    machine = machine or paper_machine()
    service = service or QueryService(machine)
    probe_config = replace(config, n_submissions=n_probe, slo_stretch=None)
    # A high nominal rate packs the whole probe into a negligible
    # window, approximating an all-at-once closed batch while keeping
    # the stream shape (bundles, tenants) identical to the sweep's.
    stream = poisson_stream(
        rate=1e6, seed=seed, config=probe_config, machine=machine
    )
    # Capacity probes must never shed: give the probe a queue deep
    # enough for the whole batch.
    probe_service = QueryService(
        machine,
        admission=service.admission,
        scheduler=service.scheduler,
        queue_capacity=max(service.queue_capacity, n_probe),
        max_inflight_fragments=service.max_inflight_fragments,
    )
    result = probe_service.run(stream)
    completed = sum(1 for o in result.outcomes if o.status == "completed")
    if completed == 0 or result.elapsed <= 0:
        raise ConfigError("capacity probe completed no submissions")
    return completed / result.elapsed


def run_point(
    *,
    rate: float,
    rho: float,
    seed: int,
    config: ArrivalConfig,
    machine: MachineConfig,
    service: QueryService,
    stream_factory: StreamFactory = _default_stream,
) -> tuple[StressPoint, ServiceResult]:
    """Serve one offered-load point and digest it into a StressPoint."""
    stream = stream_factory(rate, seed, config, machine)
    result = service.run(stream)
    overall = result.metrics.overall
    responses = overall.response_times
    return (
        StressPoint(
            rho=rho,
            rate=rate,
            offered=overall.offered,
            completed=overall.completed,
            rejected=overall.rejected,
            throughput=result.metrics.throughput,
            p50=percentile(responses, 50.0),
            p95=percentile(responses, 95.0),
            p99=percentile(responses, 99.0),
            slo_miss_rate=overall.slo_miss_rate,
            cpu_utilization=result.metrics.cpu_utilization,
            io_utilization=result.metrics.io_utilization,
        ),
        result,
    )


def sweep(
    *,
    rhos: Sequence[float] = (0.4, 0.6, 0.8, 0.9, 1.0, 1.2),
    seed: int = 0,
    config: ArrivalConfig | None = None,
    machine: MachineConfig | None = None,
    admission: AdmissionPolicy | None = None,
    service: QueryService | None = None,
    stream_factory: StreamFactory = _default_stream,
    capacity: float | None = None,
) -> list[StressPoint]:
    """Sweep offered load ρ·μ and return the knee-table points.

    One service instance serves the whole sweep, and the arrival
    builder memoizes its task pools across λ points (only the arrival
    times depend on the rate), so a long sweep pays the stream setup
    cost once instead of once per point.

    Args:
        rhos: offered-load fractions of the measured capacity μ.
        seed: stream seed (one seed serves the whole sweep).
        config: arrival-stream shape.
        machine: machine configuration.
        admission: admission policy for a default-configured service.
        service: fully custom service (overrides ``admission``).
        stream_factory: arrival process (Poisson by default).
        capacity: known service rate μ in submissions/second; ``None``
            measures it with :func:`estimate_capacity`.  Passing a
            previously measured μ lets repeated sweeps (e.g. one per
            admission policy over the same mix) skip the probe run.
    """
    if not rhos:
        raise ConfigError("sweep needs at least one offered-load point")
    if any(r <= 0 for r in rhos):
        raise ConfigError("offered-load fractions must be positive")
    config = config or ArrivalConfig()
    machine = machine or paper_machine()
    if service is None:
        service = QueryService(
            machine, admission=admission or BalanceAwareAdmission()
        )
    if capacity is not None and capacity <= 0:
        raise ConfigError("capacity must be positive when given")
    mu = capacity
    if mu is None:
        mu = estimate_capacity(
            seed=seed, config=config, machine=machine, service=service
        )
    points = []
    for rho in rhos:
        point, __ = run_point(
            rate=rho * mu,
            rho=rho,
            seed=seed,
            config=config,
            machine=machine,
            service=service,
            stream_factory=stream_factory,
        )
        points.append(point)
    return points


def smoke_lines(*, seed: int = 0) -> list[str]:
    """Deterministic end-to-end serving trace for ``serve --smoke``.

    Ten mixed-tenant submissions through a default balance-aware gate:
    one line per outcome plus a summary, and a trailing ``smoke failed``
    line when nothing completed.  The CLI turns that prefix into a
    non-zero exit code, the same contract every other smoke command
    (``perf``, ``optbench``, ``trace``, ``recover``, ``servebench``)
    honours.
    """
    machine = paper_machine()
    service = QueryService(
        machine,
        admission=BalanceAwareAdmission(),
        queue_capacity=20,
        max_inflight_fragments=2,
    )
    stream = poisson_stream(
        rate=0.2, seed=seed, config=mixed_tenant_config(10), machine=machine
    )
    result = service.run(stream)
    lines = []
    for outcome in result.outcomes:
        line = (
            f"t={outcome.submission.arrival_time:8.2f}  "
            f"{outcome.submission.name:<4s} {outcome.submission.tenant:<5s} "
            f"{outcome.status}"
        )
        if outcome.status == "completed":
            line += f"  response={outcome.response_time:.2f}s"
        lines.append(line)
    completed = result.metrics.overall.completed
    lines.append(
        f"smoke: {completed}/{len(stream)} completed "
        f"in {result.elapsed:.2f}s simulated"
    )
    if completed == 0:
        lines.append("smoke failed: no submissions completed")
    return lines


def format_sweep(
    points: Sequence[StressPoint], *, title: str | None = None
) -> str:
    """Render sweep points as the latency-vs-throughput knee table."""
    return format_table(
        [
            "rho",
            "lambda/s",
            "offered",
            "done",
            "shed",
            "thruput/s",
            "p50 (s)",
            "p95 (s)",
            "p99 (s)",
            "SLO miss",
            "cpu",
            "io",
        ],
        [p.row() for p in points],
        title=title or "latency-vs-throughput knee",
    )
