"""Checkpoint snapshots of the micro engine's schedule state.

A :class:`Checkpoint` captures everything needed to resume a run
byte-deterministically from an adjustment-round boundary: pages served
per fragment, each slave's stride/interval position, disk head
positions, the balance-relevant accounting sums and the engine's RNG
state.  It deliberately captures *no* event-heap entries: at a round
boundary every live slave is either mid-page (its in-flight page is
re-read on resume, exactly like a crash replacement re-reads a dead
slave's page) or retired, so the heap is reconstructible.

Snapshots are plain frozen dataclasses of ints/floats/tuples —
:meth:`Checkpoint.to_dict` / :meth:`Checkpoint.from_dict` round-trip
through JSON losslessly (Python's float repr round-trips exactly).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..errors import RecoveryError


@dataclass(frozen=True)
class SlaveSnapshot:
    """One slave backend's position at checkpoint time.

    Attributes:
        slave_id: the slave's id within its run.
        cursor: next page candidate (page partitioning).
        segments: ``(lo, hi, stride, residue)`` stride segments.
        intervals: ``(lo, hi)`` key intervals (range partitioning).
        retired: the slave has no more work.
        crashed: the slave was killed by fault injection (kept because
            its final cursor still feeds the maxpage computation).
        inflight: the page (or key) the slave was reading, or ``None``.
            A resumed engine re-reads it — the page never completed in
            the checkpointed world.
    """

    slave_id: int
    cursor: int
    segments: tuple[tuple[int, int, int, int], ...]
    intervals: tuple[tuple[int, int], ...]
    retired: bool
    crashed: bool
    inflight: int | None


@dataclass(frozen=True)
class TaskSnapshot:
    """One running task's schedule state at checkpoint time.

    Tasks are identified by *name* — task ids regenerate on resume —
    so checkpointed workloads must use unique task names (the engine's
    workload generators always do).
    """

    name: str
    parallelism: int
    started_at: float
    pages_done: int
    next_slave_id: int
    block_base: int
    history: tuple[tuple[float, float], ...]
    #: Page -> physical page permutation for RANDOM scans; ``None``
    #: means the identity order (sequential scans), kept out of the
    #: snapshot to keep checkpoints small.
    order: tuple[int, ...] | None
    slaves: tuple[SlaveSnapshot, ...]


@dataclass(frozen=True)
class DiskSnapshot:
    """One disk's head/stream memory and accumulated accounting."""

    streams: tuple[int, ...]
    busy_time: float
    sequential: int
    almost_sequential: int
    random: int


@dataclass(frozen=True)
class RecordSnapshot:
    """One already-completed task's record (replayed into the resume)."""

    name: str
    started_at: float
    finished_at: float
    history: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class Checkpoint:
    """A complete resumable snapshot of one micro-engine run."""

    taken_at: float
    seed: int
    rng_state: tuple
    block_cursor: int
    io_count: int
    cpu_busy_time: float
    adjustments: int
    peak_memory: float
    measured_mult: tuple[float, ...]
    running: tuple[TaskSnapshot, ...]
    completed: tuple[RecordSnapshot, ...]
    disks: tuple[DiskSnapshot, ...]

    def to_dict(self) -> dict:
        """A JSON-serializable dict (lossless round-trip)."""
        raw = asdict(self)
        raw["rng_state"] = _encode_rng(self.rng_state)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "Checkpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        if not isinstance(raw, dict):
            raise RecoveryError(f"checkpoint must be an object, got {raw!r}")
        try:
            return cls(
                taken_at=float(raw["taken_at"]),
                seed=int(raw["seed"]),
                rng_state=_decode_rng(raw["rng_state"]),
                block_cursor=int(raw["block_cursor"]),
                io_count=int(raw["io_count"]),
                cpu_busy_time=float(raw["cpu_busy_time"]),
                adjustments=int(raw["adjustments"]),
                peak_memory=float(raw["peak_memory"]),
                measured_mult=tuple(float(m) for m in raw["measured_mult"]),
                running=tuple(
                    TaskSnapshot(
                        name=t["name"],
                        parallelism=int(t["parallelism"]),
                        started_at=float(t["started_at"]),
                        pages_done=int(t["pages_done"]),
                        next_slave_id=int(t["next_slave_id"]),
                        block_base=int(t["block_base"]),
                        history=_pairs(t["history"]),
                        order=(
                            tuple(int(p) for p in t["order"])
                            if t["order"] is not None
                            else None
                        ),
                        slaves=tuple(
                            SlaveSnapshot(
                                slave_id=int(s["slave_id"]),
                                cursor=int(s["cursor"]),
                                segments=tuple(
                                    (int(a), int(b), int(c), int(d))
                                    for a, b, c, d in s["segments"]
                                ),
                                intervals=tuple(
                                    (int(a), int(b))
                                    for a, b in s["intervals"]
                                ),
                                retired=bool(s["retired"]),
                                crashed=bool(s["crashed"]),
                                inflight=(
                                    int(s["inflight"])
                                    if s["inflight"] is not None
                                    else None
                                ),
                            )
                            for s in t["slaves"]
                        ),
                    )
                    for t in raw["running"]
                ),
                completed=tuple(
                    RecordSnapshot(
                        name=r["name"],
                        started_at=float(r["started_at"]),
                        finished_at=float(r["finished_at"]),
                        history=_pairs(r["history"]),
                    )
                    for r in raw["completed"]
                ),
                disks=tuple(
                    DiskSnapshot(
                        streams=tuple(int(b) for b in d["streams"]),
                        busy_time=float(d["busy_time"]),
                        sequential=int(d["sequential"]),
                        almost_sequential=int(d["almost_sequential"]),
                        random=int(d["random"]),
                    )
                    for d in raw["disks"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(f"malformed checkpoint: {exc!r}") from None

    @property
    def pages_done(self) -> int:
        """Pages completed across all running tasks at capture time."""
        return sum(t.pages_done for t in self.running)


def _pairs(raw) -> tuple[tuple[float, float], ...]:
    return tuple((float(a), float(b)) for a, b in raw)


def _encode_rng(state: tuple) -> list:
    # random.Random.getstate() -> (version, tuple-of-ints, gauss_next)
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _decode_rng(raw) -> tuple:
    version, internal, gauss = raw
    return (version, tuple(int(x) for x in internal), gauss)
