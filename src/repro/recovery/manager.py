"""The recovery manager and the crash/resume driver.

:class:`RecoveryManager` is the engine-side half: the micro engine
offers it a snapshot at every adjustment-round boundary
(``engine._maybe_checkpoint``) and it keeps the newest one, optionally
rate-limited by ``min_interval`` of virtual time.

:func:`run_with_recovery` is the driver: it runs a faulted workload,
catches each :class:`~repro.errors.MasterCrashError`, and relaunches
the simulation from the newest checkpoint — consuming one scheduled
``master-crash`` per attempt so the same crash cannot fire twice.  With
checkpointing disabled the same driver measures the restart-from-scratch
baseline the recovery benchmark compares against.

Everything is virtual time.  ``lost_work`` is the virtual time between
the resumed-from point and the crash — the work the crash destroyed —
and ``total_elapsed`` charges it on top of the final attempt's clock,
so checkpointed and from-scratch runs are compared on the same axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schedulers import SchedulingPolicy
from ..errors import MasterCrashError, RecoveryError
from ..faults.schedule import FaultSchedule, MasterCrash
from ..sim.fluid import ScheduleResult
from ..sim.micro import MicroSimulator, ScanSpec
from .checkpoint import Checkpoint


class RecoveryManager:
    """Keeps the newest :class:`Checkpoint` of one (logical) run.

    Args:
        enabled: when False, :meth:`capture` is a no-op — the manager
            becomes the "restart from scratch" arm of the benchmark.
        min_interval: minimum virtual seconds between captures (0 =
            capture at every round boundary).
        tracer: optional :class:`~repro.obs.Tracer`; checkpoint and
            restore instants land on a ``recovery`` track.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; counts
            ``recovery.checkpoints`` / ``recovery.restores`` and
            observes the ``recovery.time_to_recover`` histogram (virtual
            time re-executed between checkpoint and crash).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        min_interval: float = 0.0,
        tracer=None,
        metrics=None,
    ) -> None:
        if min_interval < 0:
            raise RecoveryError("min_interval must be >= 0")
        self.enabled = enabled
        self.min_interval = min_interval
        self.tracer = tracer or None
        self.metrics = metrics
        self.last: Checkpoint | None = None
        self.captures = 0
        self.restores = 0

    @property
    def last_checkpoint_at(self) -> float | None:
        """Virtual time of the newest checkpoint, or ``None``."""
        return self.last.taken_at if self.last is not None else None

    def capture(self, engine) -> None:
        """Snapshot ``engine`` if enabled and past the rate limit."""
        if not self.enabled:
            return
        last = self.last
        if (
            last is not None
            and engine.clock - last.taken_at < self.min_interval
        ):
            return
        self.last = engine.checkpoint()
        self.captures += 1
        if self.metrics is not None:
            self.metrics.counter("recovery.checkpoints").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "checkpoint",
                t=engine.clock,
                track="recovery",
                cat="recovery",
                args={"pages_done": self.last.pages_done},
            )

    def note_restore(self, engine) -> None:
        """Called by the engine after rebuilding itself from a checkpoint."""
        self.restores += 1
        if self.metrics is not None:
            self.metrics.counter("recovery.restores").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "restore",
                t=engine.clock,
                track="recovery",
                cat="recovery",
            )


@dataclass
class RecoveryRun:
    """Outcome of one :func:`run_with_recovery` drive.

    Attributes:
        result: the final (completed) attempt's schedule result.
        attempts: total simulation attempts (crashes + 1).
        crashes: master crashes survived.
        lost_work: virtual seconds of re-executed work — for each
            crash, crash time minus the resumed-from time.
        checkpoints: checkpoints captured across all attempts.
        restores: attempts that started from a checkpoint.
        recovery_points: the virtual time each crash resumed from
            (0.0 = from scratch), one entry per crash.
    """

    result: ScheduleResult
    attempts: int
    crashes: int
    lost_work: float
    checkpoints: int
    restores: int
    recovery_points: list[float] = field(default_factory=list)

    @property
    def total_elapsed(self) -> float:
        """Final-attempt clock plus every crash's destroyed work.

        The comparable wall-clock of the whole crash-and-recover story:
        a from-scratch driver re-executes ``[0, crash)`` per crash, a
        checkpointed one only ``[checkpoint, crash)``.
        """
        return self.result.elapsed + self.lost_work


def run_with_recovery(
    simulator: MicroSimulator,
    specs: list[ScanSpec],
    policy: SchedulingPolicy,
    *,
    manager: RecoveryManager | None = None,
    max_attempts: int = 16,
) -> RecoveryRun:
    """Drive a faulted run to completion across master crashes.

    Each attempt runs ``simulator`` with the not-yet-consumed
    ``master-crash`` faults; when one fires, it is consumed (a crash
    is a one-shot event — the restarted master does not re-die at the
    same instant) and the next attempt resumes from the manager's
    newest checkpoint — or from scratch when there is none, which is
    exactly the baseline arm when ``manager.enabled`` is False.

    Args:
        simulator: a configured :class:`MicroSimulator`; its fault
            schedule supplies the master crashes.
        specs: the workload.
        policy: the scheduling policy.
        manager: the checkpoint store; defaults to ``simulator.recovery``
            or, failing that, a fresh enabled manager.
        max_attempts: safety valve against schedules that crash faster
            than the run can progress.

    Raises:
        RecoveryError: the attempt budget ran out.
    """
    if manager is None:
        manager = simulator.recovery or RecoveryManager()
    simulator.recovery = manager
    schedule = simulator.faults or FaultSchedule()
    remaining = list(schedule.master_crashes)
    others = tuple(
        f for f in schedule.faults if not isinstance(f, MasterCrash)
    )
    attempts = 0
    crashes = 0
    lost_work = 0.0
    recovery_points: list[float] = []
    for __ in range(max_attempts):
        simulator.faults = FaultSchedule(others + tuple(remaining))
        attempts += 1
        resume_from = manager.last
        try:
            result = simulator.run(specs, policy, resume_from=resume_from)
        except MasterCrashError as crash:
            crashes += 1
            if remaining:
                remaining.pop(0)
            # Work between the crash and whatever the *next* attempt
            # will resume from is destroyed.  The manager may have
            # captured newer checkpoints during this attempt, so
            # measure against its current newest, not resume_from.
            next_resume = manager.last_checkpoint_at
            start_over = next_resume if next_resume is not None else 0.0
            lost_work += max(0.0, crash.at - start_over)
            recovery_points.append(start_over)
            if manager.metrics is not None:
                manager.metrics.histogram(
                    "recovery.time_to_recover"
                ).observe(max(0.0, crash.at - start_over))
            continue
        return RecoveryRun(
            result=result,
            attempts=attempts,
            crashes=crashes,
            lost_work=lost_work,
            checkpoints=manager.captures,
            restores=manager.restores,
            recovery_points=recovery_points,
        )
    raise RecoveryError(
        f"workload did not complete within {max_attempts} attempts "
        f"({crashes} master crashes)"
    )
