"""Deadline budgets: remaining virtual time, end to end.

A :class:`DeadlineBudget` is created at admission
(``QueryService.submit(deadline=...)``) and rides the query through the
stack as *remaining virtual time*:

* optimizer phase 1 consults it (:meth:`require`) and degrades its
  search space deterministically when the budget is tight
  (:meth:`degrade_mode` — bushy/parcost falls back to the cheap
  left-deep space rather than burning budget on enumeration);
* the serving gate enforces it (shed-vs-kill policy in
  ``service/server.py``);
* the engine-level form is a ``deadline`` fault event
  (:class:`~repro.faults.schedule.QueryDeadline`) that cancels the
  task cooperatively.

Everything is virtual time: the budget never reads a wall clock, so
deadline behavior is a deterministic function of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, DeadlineExceededError


@dataclass(frozen=True)
class DeadlineBudget:
    """An absolute virtual-time deadline for one query.

    Attributes:
        name: the query the budget belongs to (error messages).
        deadline: absolute virtual-time deadline.
        submitted_at: when the query entered the system.
        degrade_below: remaining-budget threshold (seconds) under which
            budget-aware consumers switch to their cheap path; 0
            disables degradation.
    """

    name: str
    deadline: float
    submitted_at: float = 0.0
    degrade_below: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline < self.submitted_at:
            raise ConfigError(
                f"{self.name!r}: deadline precedes the submission time"
            )
        if self.degrade_below < 0:
            raise ConfigError(f"{self.name!r}: degrade_below must be >= 0")

    def remaining(self, now: float) -> float:
        """Virtual seconds left before the deadline (may be negative)."""
        return self.deadline - now

    def expired(self, now: float) -> bool:
        """Has the deadline passed at virtual time ``now``?"""
        return now > self.deadline

    def require(self, now: float) -> None:
        """Raise when the budget is already blown.

        Raises:
            DeadlineExceededError: ``now`` is past the deadline.
        """
        if self.expired(now):
            raise DeadlineExceededError(self.name, self.deadline, now)

    def degraded(self, now: float) -> bool:
        """Should a budget-aware consumer take its cheap path?"""
        return self.degrade_below > 0 and (
            self.remaining(now) < self.degrade_below
        )
