"""Checkpoint/resume, deadline budgets and cooperative cancellation.

The XPRS adjustment protocol gives the engine natural *round
boundaries* — instants where no protocol leg is in flight and every
slave is either reading a page or retired.  This package exploits them
twice:

* :class:`RecoveryManager` snapshots the micro engine's schedule state
  (:class:`Checkpoint`) at those boundaries, so an injected
  ``master-crash`` resumes from the last checkpoint instead of
  re-reading every page (:func:`run_with_recovery`).
* :class:`DeadlineBudget` carries a query's remaining-virtual-time
  budget from admission through optimizer phase 1 into the engine,
  where overrunning it triggers *cooperative cancellation* — a clean
  :class:`~repro.errors.DeadlineExceededError` at an event boundary,
  never a wedged adjustment round.

The heavy pieces (the manager and the benchmark harness import the
simulators) load lazily so ``repro.sim.micro`` can import the light
checkpoint/deadline modules without a cycle.
"""

from .checkpoint import (
    Checkpoint,
    DiskSnapshot,
    RecordSnapshot,
    SlaveSnapshot,
    TaskSnapshot,
)
from .deadline import DeadlineBudget

__all__ = [
    "Checkpoint",
    "DeadlineBudget",
    "DiskSnapshot",
    "RecordSnapshot",
    "RecoveryManager",
    "RecoveryRun",
    "SlaveSnapshot",
    "TaskSnapshot",
    "run_with_recovery",
]


def __getattr__(name: str):
    # RecoveryManager / run_with_recovery live in .manager, which
    # imports the micro engine; the engine in turn imports .checkpoint
    # from this package.  Lazy loading keeps that edge acyclic.
    if name in ("RecoveryManager", "RecoveryRun", "run_with_recovery"):
        from . import manager

        return getattr(manager, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
