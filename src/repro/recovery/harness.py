"""The recovery benchmark harness: checkpointed resume vs. restart.

One :func:`run_recover` drive answers the PR's headline question: under
a crash-heavy fault schedule, how much elapsed (virtual) time does
checkpoint/resume save over restarting every attempt from scratch?
Both arms run the *same* workload under the *same* schedule through
:func:`~repro.recovery.manager.run_with_recovery`; the only difference
is whether the :class:`~repro.recovery.manager.RecoveryManager` is
enabled.  ``total_elapsed`` charges each crash's destroyed work on top
of the final attempt's clock, so the arms are compared on one axis.

Everything is simulated time — a pure function of ``(seed, scale,
schedule)`` — so two invocations print byte-identical reports and the
CLI ``--smoke`` output can be diffed in CI.

Imports the simulators; keep it out of ``repro.recovery.__init__``'s
eager imports (it is loaded lazily, like the manager).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig, paper_machine
from ..core.schedulers import InterWithAdjPolicy
from ..core.task import IOPattern
from ..errors import RecoveryError
from ..faults.schedule import FaultSchedule, preset_schedule
from ..sim.fluid import ScheduleResult
from ..sim.micro import MicroSimulator, ScanSpec, spec_for_io_rate
from .manager import RecoveryManager, RecoveryRun, run_with_recovery

#: Scan shapes of the recovery workload: smaller than the chaos
#: workload (each crash replays a prefix, so three attempts of the full
#: chaos workload would dominate the benchmark's wall clock).
_WORKLOAD_SHAPE = (
    ("io0", 55.0, 300, IOPattern.SEQUENTIAL, "page"),
    ("cpu0", 8.0, 80, IOPattern.SEQUENTIAL, "page"),
    ("rnd0", 20.0, 60, IOPattern.RANDOM, "range"),
)

#: Master ticks (and thus checkpoint opportunities) per healthy run.
_TICKS = 40


def recover_workload(
    machine: MachineConfig, *, scale: float = 1.0
) -> list[ScanSpec]:
    """The standard three-scan recovery workload, optionally scaled."""
    if scale <= 0:
        raise RecoveryError("scale must be positive")
    specs = []
    for name, io_rate, n_pages, pattern, partitioning in _WORKLOAD_SHAPE:
        specs.append(
            spec_for_io_rate(
                name,
                machine,
                io_rate=io_rate,
                n_pages=max(int(n_pages * scale), 8),
                pattern=pattern,
                partitioning=partitioning,
            )
        )
    return specs


@dataclass
class RecoverReport:
    """Both arms of one recovery comparison."""

    seed: int
    scale: float
    schedule: FaultSchedule
    healthy: ScheduleResult
    scratch: RecoveryRun
    resumed: RecoveryRun

    @property
    def gain(self) -> float:
        """Fraction of total elapsed time the checkpoints saved."""
        if self.scratch.total_elapsed <= 0:
            return 0.0
        return 1.0 - self.resumed.total_elapsed / self.scratch.total_elapsed

    @property
    def complete(self) -> bool:
        """Did both arms finish every task the healthy run finished?"""
        want = len(self.healthy.records)
        return (
            len(self.scratch.result.records) == want
            and len(self.resumed.result.records) == want
        )

    def to_lines(self) -> list[str]:
        """The comparison as stable, printable lines (virtual time only)."""
        lines = [
            f"recover seed={self.seed} scale={self.scale:g} "
            f"faults={len(self.schedule)} scheduled",
            f"healthy elapsed: {self.healthy.elapsed:.4f}s",
            f"scratch: total {self.scratch.total_elapsed:.4f}s "
            f"(crashes {self.scratch.crashes}, "
            f"lost {self.scratch.lost_work:.4f}s)",
            f"resumed: total {self.resumed.total_elapsed:.4f}s "
            f"(crashes {self.resumed.crashes}, "
            f"checkpoints {self.resumed.checkpoints}, "
            f"restores {self.resumed.restores}, "
            f"lost {self.resumed.lost_work:.4f}s)",
            f"gain: {self.gain * 100.0:.1f}%",
        ]
        return lines


def _drive(
    machine: MachineConfig,
    specs: list[ScanSpec],
    schedule: FaultSchedule,
    *,
    seed: int,
    tick: float,
    enabled: bool,
) -> RecoveryRun:
    simulator = MicroSimulator(
        machine,
        seed=seed,
        consult_interval=tick,
        faults=schedule,
        fault_seed=seed,
    )
    manager = RecoveryManager(enabled=enabled, min_interval=tick)
    return run_with_recovery(
        simulator,
        specs,
        InterWithAdjPolicy(integral=True),
        manager=manager,
    )


def run_recover(
    *,
    seed: int = 0,
    scale: float = 1.0,
    machine: MachineConfig | None = None,
    preset: str = "crash-heavy",
    schedule: FaultSchedule | None = None,
) -> RecoverReport:
    """Run both recovery arms and report the elapsed-time gain.

    Args:
        seed: seeds the workload's random block orders and the
            injector's crash-target picks.
        scale: workload size multiplier (smoke runs shrink it).
        machine: machine configuration (defaults to the paper machine).
        preset: fault-schedule preset scaled to the measured healthy
            elapsed time; used when ``schedule`` is ``None``.
        schedule: explicit fault schedule (overrides ``preset``).
    """
    machine = machine or paper_machine()
    specs = recover_workload(machine, scale=scale)
    healthy = MicroSimulator(machine, seed=seed).run(
        specs, InterWithAdjPolicy(integral=True)
    )
    if schedule is None:
        schedule = preset_schedule(preset, horizon=healthy.elapsed)
    tick = healthy.elapsed / _TICKS
    scratch = _drive(
        machine, specs, schedule, seed=seed, tick=tick, enabled=False
    )
    resumed = _drive(
        machine, specs, schedule, seed=seed, tick=tick, enabled=True
    )
    return RecoverReport(
        seed=seed,
        scale=scale,
        schedule=schedule,
        healthy=healthy,
        scratch=scratch,
        resumed=resumed,
    )


def smoke_lines(*, seed: int = 0, scale: float = 0.2) -> list[str]:
    """A quick deterministic recovery run as printable lines.

    Simulated quantities only — byte-stable across runs and machines.
    Appends a ``smoke failed: ...`` line (and the CLI exits non-zero)
    if either arm lost tasks or the checkpoints saved nothing.
    """
    report = run_recover(seed=seed, scale=scale)
    lines = report.to_lines()
    if not report.complete:
        lines.append("smoke failed: an arm did not finish every task")
    elif report.resumed.restores == 0:
        lines.append("smoke failed: resume arm never restored")
    elif report.gain <= 0.0:
        lines.append("smoke failed: checkpointed resume saved nothing")
    return lines
