"""abl3 — how cheap must adjustment be to pay off?

"Our parallelism adjustment mechanism is made possible only by the low
communication delay advantage of a shared-memory system."  This
ablation sweeps the adjustment overhead from shared-memory-cheap to
message-passing-expensive and watches INTER-WITH-ADJ's win over
INTRA-ONLY erode.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import InterWithAdjPolicy, IntraOnlyPolicy
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks

SEEDS = range(6)
#: Seconds of work added to a task per adjustment.
OVERHEADS = (0.0, 0.01, 0.1, 1.0, 5.0, 20.0)


def test_abl_adjustment_cost_sweep(benchmark, machine, workload_config):
    def run():
        intra = []
        for seed in SEEDS:
            tasks = generate_tasks(
                WorkloadKind.EXTREME, seed=seed, machine=machine, config=workload_config
            )
            intra.append(
                FluidSimulator(machine).run(list(tasks), IntraOnlyPolicy()).elapsed
            )
        by_overhead = {}
        for overhead in OVERHEADS:
            elapsed = []
            for seed in SEEDS:
                tasks = generate_tasks(
                    WorkloadKind.EXTREME,
                    seed=seed,
                    machine=machine,
                    config=workload_config,
                )
                sim = FluidSimulator(machine, adjustment_overhead=overhead)
                elapsed.append(sim.run(list(tasks), InterWithAdjPolicy()).elapsed)
            by_overhead[overhead] = mean(elapsed)
        return mean(intra), by_overhead

    intra, by_overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            f"{overhead:g}s",
            f"{elapsed:.2f}",
            f"{(intra - elapsed) / intra * 100:+.1f}%",
        )
        for overhead, elapsed in by_overhead.items()
    ]
    emit(
        benchmark,
        format_table(
            ["adjustment overhead", "WITH-ADJ elapsed (s)", "win vs INTRA"],
            rows,
            title=f"abl3 — adjustment cost sweep (INTRA-ONLY = {intra:.2f}s)",
        ),
    )
    cheap = by_overhead[OVERHEADS[0]]
    pricey = by_overhead[OVERHEADS[-1]]
    # Costs must hurt monotonically-ish and shared-memory-cheap must win.
    assert cheap < intra
    assert pricey > cheap
