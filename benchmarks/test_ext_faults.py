"""ext3 — fault injection: degradation-aware rebalancing and tolerance.

Two experiments on the page-level simulator:

1. **Degradation-aware beats static-B.**  The canonical IO-bound /
   CPU-bound pair (io0 at 55 ios/s, cpu0 at 8 ios/s) runs under a
   scheduled fault: disk 0 drops to 50% bandwidth at t = T/3 (T the
   healthy elapsed time) and stays degraded.  The static arm keeps
   scheduling against the nominal B = 240 ios/s; the degradation-aware
   arm recomputes the IO-CPU balance point from the *measured* per-disk
   bandwidth and shifts processors from the IO-bound scan to the
   CPU-bound one.  The aware arm must finish at least 5% sooner on
   every seed, with every page conserved and no wedged adjustment.

2. **Tolerance under the mixed preset.**  The full chaos workload runs
   under the ``mixed`` preset (degradation + stall + crashes + dropped
   and delayed protocol messages) for three seeds.  Every task must
   complete (page conservation is engine-enforced: completion with a
   duplicate or lost page raises), and every adjustment timeout must
   resolve by abort-and-restart.
"""

from conftest import emit

from repro.bench import format_table
from repro.core.schedulers import InterWithAdjPolicy
from repro.core.task import IOPattern
from repro.faults.chaos import run_chaos
from repro.faults.schedule import DiskDegradation, FaultSchedule
from repro.sim.micro import MicroSimulator, spec_for_io_rate

SEEDS = (0, 1, 2)
FACTOR = 0.5
MIN_GAIN = 0.05


def _pair(machine):
    """The io-bound/cpu-bound pair the degradation experiment schedules."""
    return [
        spec_for_io_rate(
            "io0",
            machine,
            io_rate=55.0,
            n_pages=1500,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
        spec_for_io_rate(
            "cpu0",
            machine,
            io_rate=8.0,
            n_pages=400,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
    ]


def _run(machine, schedule, seed, *, aware):
    policy = InterWithAdjPolicy(integral=True, degradation_aware=aware)
    sim = MicroSimulator(
        machine,
        seed=seed,
        consult_interval=1.0,
        faults=schedule,
        fault_seed=seed,
        adjust_timeout=0.5,
    )
    return sim.run(_pair(machine), policy)


def test_ext_faults_degradation_aware_beats_static(benchmark, machine):
    healthy = MicroSimulator(machine, seed=0, consult_interval=1.0).run(
        _pair(machine), InterWithAdjPolicy(integral=True)
    )
    schedule = FaultSchedule(
        (
            DiskDegradation(
                disk=0,
                start=healthy.elapsed / 3.0,
                duration=10.0 * healthy.elapsed,
                factor=FACTOR,
            ),
        )
    )

    def run():
        return [
            (
                seed,
                _run(machine, schedule, seed, aware=False),
                _run(machine, schedule, seed, aware=True),
            )
            for seed in SEEDS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for seed, static, aware in results:
        gain = (static.elapsed - aware.elapsed) / static.elapsed
        rows.append(
            (
                str(seed),
                f"{healthy.elapsed:.2f}",
                f"{static.elapsed:.2f}",
                f"{aware.elapsed:.2f}",
                f"{gain:.1%}",
                str(aware.adjustments),
            )
        )
        # The headline claim: recomputing B from measured bandwidth
        # beats scheduling against the nominal machine.
        assert gain >= MIN_GAIN, f"seed {seed}: gain {gain:.1%} below {MIN_GAIN:.0%}"
        # Both arms completed both tasks with every page conserved
        # (the engine raises on a duplicate; completion implies no loss).
        for arm in (static, aware):
            assert len(arm.records) == 2
            assert arm.fault_log is not None
            wedged = arm.fault_log.adjust_timeouts - arm.fault_log.adjust_aborts
            assert wedged == 0, f"seed {seed}: {wedged} wedged adjustments"
    emit(
        benchmark,
        format_table(
            ["seed", "healthy (s)", "static B (s)", "aware (s)", "gain", "adjusts"],
            rows,
            title=(
                "ext3: disk 0 at 50% bandwidth from t=T/3 — "
                "degradation-aware vs static-B INTER-WITH-ADJ"
            ),
        ),
    )


def test_ext_faults_mixed_preset_tolerated(benchmark, machine):
    def run():
        return [
            run_chaos(preset="mixed", seed=seed, scale=0.5, machine=machine)
            for seed in SEEDS
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for seed, report in zip(SEEDS, reports):
        log = report.log
        rows.append(
            (
                str(seed),
                f"{report.healthy.elapsed:.2f}",
                f"{report.faulted.elapsed:.2f}",
                str(log.faults_injected),
                str(log.crashes),
                str(log.pages_reread),
                f"{log.adjust_aborts}/{log.adjust_timeouts}",
            )
        )
        assert report.ok, f"seed {seed}: chaos verdict FAILED"
        assert report.wedged_adjustments == 0
        assert len(report.faulted.records) == 3
    emit(
        benchmark,
        format_table(
            [
                "seed",
                "healthy (s)",
                "faulted (s)",
                "faults",
                "crashes",
                "re-read",
                "aborts/timeouts",
            ],
            rows,
            title="ext3: mixed fault preset — all tasks complete, no page lost",
        ),
    )
