"""tbl2 / fig1 — re-measure the paper's Section-3 constants.

Paper values: r_min scans at 5 ios/s, r_max at 70 ios/s; disks deliver
97 / 60 / 35 ios/s (sequential / almost sequential / random); total
bandwidth B = 4 * 60 = 240 ios/s and the IO/CPU threshold is
B/N = 30 ios/s.  See DESIGN.md for the r_max calibration note (our
engines work in almost-sequential units, capping scans at ~48 ios/s).
"""

import pytest

from conftest import emit
from repro.bench import calibrate, format_table


def test_calibration_constants(benchmark, machine):
    result = benchmark.pedantic(
        lambda: calibrate(machine=machine), rounds=1, iterations=1
    )
    emit(benchmark, result.to_table())
    # The machine figure-1 inventory:
    emit(
        None,
        format_table(
            ["Component", "Value"],
            [
                ("processors (shared memory)", machine.processors),
                ("disks (striped round-robin)", machine.disks),
                ("page size", f"{machine.page_size} bytes"),
                ("B (working bandwidth)", f"{machine.io_bandwidth:.0f} ios/s"),
            ],
            title="Figure 1 — the XPRS parallel environment",
        ),
    )
    # r_min must land on the paper's most-CPU-bound rate.
    assert result.r_min.io_rate == pytest.approx(5.0, abs=1.0)
    # r_max must be the most IO-bound scan this machine can express.
    assert result.r_max.io_rate > machine.bound_threshold
    # Disk regimes must reproduce the measured table exactly.
    assert result.disk_sequential == pytest.approx(97.0, rel=0.02)
    assert result.disk_almost_sequential == pytest.approx(60.0, rel=0.02)
    assert result.disk_random == pytest.approx(35.0, rel=0.02)
