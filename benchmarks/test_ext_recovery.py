"""ext4 — recovery: checkpointed resume vs restart-from-scratch.

The recovery workload (an IO-bound scan, a CPU-bound scan and a
random-access range scan) runs under the ``crash-heavy`` preset: three
master crashes spread over the run plus slave crashes and a disk
degradation.  Both arms drive the same schedule through
``run_with_recovery``; the *scratch* arm has checkpointing disabled
and replays each crashed attempt from t=0, the *resumed* arm restores
the engine from the newest adjustment-round checkpoint.

``total_elapsed`` charges every crash's destroyed virtual time on top
of the final attempt's clock, so the two arms are compared on one
axis.  The headline claim: checkpointed resume finishes the whole
crash-and-recover story at least 25% sooner on every seed, with every
task completed in both arms, and byte-identically across repeat runs.
"""

from conftest import emit

from repro.bench import format_table
from repro.recovery.harness import run_recover

SEEDS = (0, 1, 2)
MIN_GAIN = 0.25


def test_ext_recovery_resume_beats_scratch(benchmark, machine):
    def run():
        return [
            run_recover(seed=seed, machine=machine) for seed in SEEDS
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for seed, report in zip(SEEDS, reports):
        rows.append(
            (
                str(seed),
                f"{report.healthy.elapsed:.2f}",
                f"{report.scratch.total_elapsed:.2f}",
                f"{report.resumed.total_elapsed:.2f}",
                f"{report.gain:.1%}",
                str(report.resumed.checkpoints),
                str(report.resumed.restores),
                f"{report.resumed.lost_work:.2f}",
            )
        )
        # The headline claim: resuming from adjustment-round
        # checkpoints beats re-reading every page after each crash.
        assert report.gain >= MIN_GAIN, (
            f"seed {seed}: gain {report.gain:.1%} below {MIN_GAIN:.0%}"
        )
        # Both arms completed every task (page conservation is
        # engine-enforced: completion with a duplicate page raises).
        assert report.complete, f"seed {seed}: an arm lost tasks"
        assert report.resumed.crashes == report.scratch.crashes
        assert report.resumed.restores == report.resumed.crashes
        # Resume is byte-deterministic: the same seed replays to the
        # same simulated story, checkpoint for checkpoint.
        again = run_recover(seed=seed, machine=machine)
        assert again.to_lines() == report.to_lines(), (
            f"seed {seed}: repeat run diverged"
        )
    emit(
        benchmark,
        format_table(
            [
                "seed",
                "healthy (s)",
                "scratch (s)",
                "resumed (s)",
                "gain",
                "ckpts",
                "restores",
                "lost (s)",
            ],
            rows,
            title=(
                "ext4: crash-heavy preset — checkpointed resume vs "
                "restart-from-scratch (total virtual time incl. lost work)"
            ),
        ),
    )
