"""abl7 — left-deep vs right-deep vs bushy under parcost and memory.

The paper's related work cites [SCHN90]: "right-deep trees are superior
given sufficient memory resources.  However, there is no analytical
cost expression which can be used by an optimizer to decide whether and
when to switch."  ``parcost`` *is* such an expression — this ablation
evaluates every shape of a 4-relation chain with it and reports the
predicted elapsed time and pinned memory per shape class.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.optimizer import enumerate_all_bushy, parallel_cost
from repro.plans import is_bushy, is_left_deep, is_right_deep
from repro.workloads import chain_join


def _shape(plan) -> str:
    left = is_left_deep(plan)
    right = is_right_deep(plan)
    if left and right:
        return "single-join"
    if left:
        return "left-deep"
    if right:
        return "right-deep"
    if is_bushy(plan):
        return "bushy"
    return "zigzag"


def test_abl_plan_shapes_under_parcost(benchmark):
    schema = chain_join(4, rows_per_relation=300, seed=19)

    def evaluate():
        by_shape: dict[str, list] = {}
        for plan in enumerate_all_bushy(schema.query, schema.catalog):
            cost = parallel_cost(plan, schema.catalog)
            memory = sum(t.memory_bytes for t in cost.tasks)
            by_shape.setdefault(_shape(plan), []).append(
                (cost.elapsed, memory, len(cost.fragments))
            )
        return by_shape

    by_shape = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = []
    for shape, entries in sorted(by_shape.items()):
        elapsed = [e for e, __, __ in entries]
        memories = [m for __, m, __ in entries]
        rows.append(
            (
                shape,
                len(entries),
                f"{min(elapsed):.3f}",
                f"{mean(elapsed):.3f}",
                f"{mean(memories) / 1024:.0f} KB",
            )
        )
    emit(
        benchmark,
        format_table(
            ["shape", "plans", "best parcost (s)", "mean parcost (s)", "mean pinned memory"],
            rows,
            title="abl7 — plan shapes of a 4-relation chain under parcost",
        ),
    )
    assert "left-deep" in by_shape
    assert "right-deep" in by_shape
    # parcost gives the analytic criterion [SCHN90] lacked: the best
    # non-left-deep plan is at least as good as the best left-deep one
    # (inner fragments of right-deep/bushy shapes run concurrently).
    best_left = min(e for e, __, __ in by_shape["left-deep"])
    others = [
        e
        for shape, entries in by_shape.items()
        if shape not in ("left-deep", "single-join")
        for e, __, __ in entries
    ]
    assert min(others) <= best_left + 1e-9
    # Right-deep plans pin more memory than left-deep ones (all builds
    # resident at once) — the memory/latency trade [SCHN90] describes.
    left_mem = mean(m for __, m, __ in by_shape["left-deep"])
    right_mem = mean(m for __, m, __ in by_shape["right-deep"])
    assert right_mem >= left_mem * 0.9
