"""fig6 — the range-partitioning adjustment protocol.

Same shape as the fig5 bench but for range-partitioned (index-scan)
tasks: slaves own key intervals, the master repartitions leftovers on
adjustment, and a slave may end up with several intervals.
"""

import pytest

from conftest import emit
from repro.bench import format_table
from repro.core import Adjust, SchedulingPolicy, Start
from repro.core.task import IOPattern
from repro.sim import MicroSimulator, spec_for_io_rate


class GrowOnce(SchedulingPolicy):
    name = "grow-once"

    def __init__(self, start_x, new_x, at_fraction):
        self.start_x = start_x
        self.new_x = new_x
        self.at_fraction = at_fraction
        self._fired = False

    def reset(self):
        self._fired = False

    def decide(self, state):
        if state.pending and not state.running:
            return [Start(state.pending[0], self.start_x)]
        if state.running and not self._fired:
            run = state.running[0]
            if run.remaining_seq_time < (1 - self.at_fraction) * run.task.seq_time:
                self._fired = True
                return [Adjust(run.task, self.new_x)]
        return []


class FixedStart(SchedulingPolicy):
    name = "fixed"

    def __init__(self, x):
        self.x = x

    def decide(self, state):
        if state.pending and not state.running:
            return [Start(state.pending[0], self.x)]
        return []


def _index_scan_spec(machine, n_keys=1500):
    return spec_for_io_rate(
        "index-scan",
        machine,
        io_rate=25.0,
        n_pages=n_keys,
        pattern=IOPattern.RANDOM,
        partitioning="range",
    )


def test_fig6_range_protocol(benchmark, machine):
    spec = _index_scan_spec(machine)

    def run():
        sim = MicroSimulator(machine, consult_interval=0.2)
        return sim.run([spec], GrowOnce(2, 4, at_fraction=0.25))

    grown = benchmark.pedantic(run, rounds=1, iterations=1)
    slow = MicroSimulator(machine).run([spec], FixedStart(2))
    fast = MicroSimulator(machine).run([spec], FixedStart(4))
    emit(
        benchmark,
        format_table(
            ["schedule", "elapsed"],
            [
                ("fixed x=2", f"{slow.elapsed:.2f}s"),
                ("fixed x=4", f"{fast.elapsed:.2f}s"),
                ("grow 2->4 at 25%", f"{grown.elapsed:.2f}s"),
            ],
            title="Figure 6 — range repartitioning protocol (micro engine)",
        ),
    )
    assert grown.io_served == spec.n_pages  # every key fetched once
    assert fast.elapsed < grown.elapsed < slow.elapsed


def test_fig6_protocol_on_real_processes(benchmark):
    """Interval repartitioning on actual multiprocessing slaves."""
    from repro.catalog import Schema
    from repro.config import MachineConfig
    from repro.parallel import AdjustmentPlan, ParallelIndexScan
    from repro.storage import BTreeIndex, DiskArray, HeapFile

    heap = HeapFile(
        Schema.of(("a", "int4"), ("b", "text")),
        DiskArray(MachineConfig(processors=2, disks=2)),
    )
    heap.insert_many([(i, "y" * 40) for i in range(700)])
    index = BTreeIndex()
    for rid, row in heap.scan():
        index.insert(row[0], rid)

    def run():
        return ParallelIndexScan(
            heap,
            index,
            low=0,
            high=699,
            parallelism=2,
            adjustments=[AdjustmentPlan(after_pages=60, parallelism=4)],
        ).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["quantity", "value"],
            [
                ("keys fetched", report.pages_read),
                ("rows returned", len(report.rows)),
                ("parallelism history", report.parallelism_history),
            ],
            title="Figure 6 — protocol on real processes",
        ),
    )
    assert sorted(r[0] for r in report.rows) == list(range(700))
    assert report.parallelism_history == [2, 4]
