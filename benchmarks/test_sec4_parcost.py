"""sec4 — bushy-tree optimization with parcost.

Section 4 proposes ``parcost(p, n) = T_n(F(p))`` — cost a plan by
simulating the adaptive scheduler over its fragments — and argues that
with inter-operation parallelism, the left-deep/intra-only strategy of
[HONG91] "cannot always take full advantage of all available
resources".  The paper gives no table for this section, so this bench
constructs the missing one:

* parcost-chosen plans are never worse (predicted elapsed) than
  left-deep/seqcost-chosen plans, and the speedups are real;
* the parcost prediction agrees with the fluid engine by construction
  and tracks the page-level engine's relative ordering of plans.
"""

import pytest

from conftest import emit
from repro.bench import format_table
from repro.optimizer import OptimizerMode, TwoPhaseOptimizer, parallel_cost
from repro.plans import count_joins, is_left_deep
from repro.workloads import chain_join, star_join


def _optimize_all_modes(schema):
    optimizer = TwoPhaseOptimizer(schema.catalog)
    return {mode: optimizer.optimize(schema.query, mode=mode) for mode in OptimizerMode}


def test_sec4_chain_query(benchmark):
    schema = chain_join(4, seed=3)
    results = benchmark.pedantic(
        lambda: _optimize_all_modes(schema), rounds=1, iterations=1
    )
    rows = []
    for mode, result in results.items():
        rows.append(
            (
                mode.value,
                "left-deep" if is_left_deep(result.plan) else "bushy/right-deep",
                count_joins(result.plan),
                len(result.parallel.fragments),
                f"{result.parallel.seqcost:.3f}s",
                f"{result.predicted_elapsed:.3f}s",
                f"{result.parallel.speedup:.2f}x",
            )
        )
    emit(
        benchmark,
        format_table(
            ["mode", "shape", "joins", "fragments", "seqcost", "parcost", "speedup"],
            rows,
            title="Section 4 — two-phase optimization of a 4-relation chain",
        ),
    )
    ld = results[OptimizerMode.LEFT_DEEP_SEQ]
    par = results[OptimizerMode.BUSHY_PAR]
    assert par.predicted_elapsed <= ld.predicted_elapsed + 1e-9
    assert par.parallel.speedup > 1.0
    # All modes compute the same answer.
    counts = {
        len(r.plan.to_operator(schema.catalog).run()) for r in results.values()
    }
    assert len(counts) == 1


def test_sec4_star_query(benchmark):
    schema = star_join(3, seed=5)
    results = benchmark.pedantic(
        lambda: _optimize_all_modes(schema), rounds=1, iterations=1
    )
    ld = results[OptimizerMode.LEFT_DEEP_SEQ]
    par = results[OptimizerMode.BUSHY_PAR]
    emit(
        benchmark,
        format_table(
            ["mode", "parcost (s)"],
            [(m.value, f"{r.predicted_elapsed:.3f}") for m, r in results.items()],
            title="Section 4 — star query (fact + 3 dimensions)",
        ),
    )
    assert par.predicted_elapsed <= ld.predicted_elapsed + 1e-9


def test_sec4_parcost_ranks_plans_like_execution(benchmark):
    """parcost must order plans the way the scheduler actually runs them."""
    from repro.core import IntraOnlyPolicy

    schema = chain_join(3, seed=9)
    optimizer = TwoPhaseOptimizer(schema.catalog)
    plan = optimizer.choose_plan(schema.query, OptimizerMode.BUSHY_SEQ)

    def costs():
        adaptive = parallel_cost(plan, schema.catalog)
        intra = parallel_cost(plan, schema.catalog, policy=IntraOnlyPolicy())
        return adaptive, intra

    adaptive, intra = benchmark.pedantic(costs, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["policy", "parcost (s)"],
            [
                ("INTER-WITH-ADJ", f"{adaptive.elapsed:.3f}"),
                ("INTRA-ONLY", f"{intra.elapsed:.3f}"),
            ],
            title="Section 4 — parcost under different runtime policies",
        ),
    )
    assert adaptive.elapsed <= intra.elapsed + 1e-9
