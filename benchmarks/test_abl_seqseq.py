"""abl5 — the sequential/random effective-bandwidth correction.

Section 2.3's refinement: two interleaved sequential streams do not see
the full sequential bandwidth, so the balance point must be solved with
``B = Br + (1 - r)(Bs - Br)``.  This ablation runs the scheduler with
and without the correction on an engine that *always* models the
bandwidth drop, showing that ignoring the correction oversubscribes the
disks and slows the mixed workloads down.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import InterWithAdjPolicy, make_task
from repro.core.balance import balance_point
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks

SEEDS = range(8)


def test_abl_effective_bandwidth_solver(benchmark, machine, workload_config):
    def run():
        out = {"corrected": [], "nominal": []}
        for seed in SEEDS:
            tasks = generate_tasks(
                WorkloadKind.EXTREME, seed=seed, machine=machine, config=workload_config
            )
            for key, use in (("corrected", True), ("nominal", False)):
                policy = InterWithAdjPolicy(use_effective_bandwidth=use)
                sim = FluidSimulator(machine, use_effective_bandwidth=True)
                out[key].append(sim.run(list(tasks), policy).elapsed)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    corrected = mean(results["corrected"])
    nominal = mean(results["nominal"])
    emit(
        benchmark,
        format_table(
            ["balance solver", "mean elapsed (s)"],
            [
                ("with bandwidth correction (paper, Sec 2.3)", f"{corrected:.2f}"),
                ("nominal B = 240 (uncorrected)", f"{nominal:.2f}"),
            ],
            title="abl5 — solving the balance point with vs without the correction",
        ),
    )
    # Ignoring the correction oversubscribes the disks.
    assert corrected <= nominal * 1.02


def test_abl_correction_shrinks_io_allocation(benchmark, machine):
    """The corrected balance point allocates fewer slaves to the io task."""

    def solve():
        fi = make_task("io", io_rate=55.0, seq_time=10.0)
        fj = make_task("cpu", io_rate=10.0, seq_time=10.0)
        corrected = balance_point(fi, fj, machine, use_effective_bandwidth=True)
        nominal = balance_point(fi, fj, machine, use_effective_bandwidth=False)
        return corrected, nominal

    corrected, nominal = benchmark.pedantic(solve, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["solver", "x_io", "x_cpu", "B at point"],
            [
                (
                    "corrected",
                    f"{corrected.x_io:.2f}",
                    f"{corrected.x_cpu:.2f}",
                    f"{corrected.bandwidth:.0f}",
                ),
                (
                    "nominal",
                    f"{nominal.x_io:.2f}",
                    f"{nominal.x_cpu:.2f}",
                    f"{nominal.bandwidth:.0f}",
                ),
            ],
            title="abl5 — balance point with and without the correction",
        ),
    )
    assert corrected.x_io < nominal.x_io
    assert corrected.bandwidth < nominal.bandwidth
