"""fig5 — the page-partitioning (maxpage) adjustment protocol.

Measures the protocol on the page-level simulator: a scan started at
parallelism 2 is grown to 6 mid-flight.  The protocol must (a) preserve
exactly-once page coverage, (b) cost only the signalling legs plus each
slave finishing its in-hand page, and (c) deliver the speedup the new
parallelism implies.  A small real-multiprocessing run cross-checks (a)
on actual processes.
"""

import pytest

from conftest import emit
from repro.bench import format_table
from repro.core import Adjust, SchedulingPolicy, Start
from repro.sim import MicroSimulator, spec_for_io_rate


class GrowOnce(SchedulingPolicy):
    name = "grow-once"

    def __init__(self, start_x, new_x, at_fraction):
        self.start_x = start_x
        self.new_x = new_x
        self.at_fraction = at_fraction
        self._fired = False

    def reset(self):
        self._fired = False

    def decide(self, state):
        if state.pending and not state.running:
            return [Start(state.pending[0], self.start_x)]
        if state.running and not self._fired:
            run = state.running[0]
            if run.remaining_seq_time < (1 - self.at_fraction) * run.task.seq_time:
                self._fired = True
                return [Adjust(run.task, self.new_x)]
        return []


class FixedStart(SchedulingPolicy):
    name = "fixed"

    def __init__(self, x):
        self.x = x

    def decide(self, state):
        if state.pending and not state.running:
            return [Start(state.pending[0], self.x)]
        return []


def test_fig5_maxpage_protocol(benchmark, machine):
    spec = spec_for_io_rate("scan", machine, io_rate=12.0, n_pages=2400)

    def run():
        sim = MicroSimulator(machine, consult_interval=0.2)
        return sim.run([spec], GrowOnce(2, 6, at_fraction=0.25))

    grown = benchmark.pedantic(run, rounds=1, iterations=1)
    slow = MicroSimulator(machine).run([spec], FixedStart(2))
    fast = MicroSimulator(machine).run([spec], FixedStart(6))
    rows = [
        ("fixed x=2", f"{slow.elapsed:.2f}s", ""),
        ("fixed x=6", f"{fast.elapsed:.2f}s", ""),
        (
            "grow 2->6 at 25%",
            f"{grown.elapsed:.2f}s",
            f"{grown.adjustments} adjustment(s)",
        ),
    ]
    emit(
        benchmark,
        format_table(
            ["schedule", "elapsed", ""],
            rows,
            title="Figure 5 — maxpage adjustment protocol (micro engine)",
        ),
    )
    # Exactly-once coverage survives the adjustment.
    assert grown.io_served == spec.n_pages
    # The grown run lands between the two fixed extremes.
    assert fast.elapsed < grown.elapsed < slow.elapsed
    # Rough model: 25% at x=2 plus 75% at x=6, plus protocol slack.
    ideal = 0.25 * slow.elapsed + 0.75 * fast.elapsed
    assert grown.elapsed == pytest.approx(ideal, rel=0.25)


def test_fig5_protocol_on_real_processes(benchmark):
    """The same protocol on actual multiprocessing slaves."""
    from repro.catalog import Schema
    from repro.config import MachineConfig
    from repro.parallel import AdjustmentPlan, ParallelSeqScan
    from repro.storage import DiskArray, HeapFile

    heap = HeapFile(
        Schema.of(("a", "int4"), ("b", "text")),
        DiskArray(MachineConfig(processors=2, disks=2)),
    )
    heap.insert_many([(i, "x" * 60) for i in range(800)])

    def run():
        return ParallelSeqScan(
            heap,
            parallelism=2,
            adjustments=[AdjustmentPlan(after_pages=3, parallelism=4)],
        ).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["quantity", "value"],
            [
                ("pages scanned", report.pages_read),
                ("heap pages", heap.page_count),
                ("rows returned", len(report.rows)),
                ("parallelism history", report.parallelism_history),
            ],
            title="Figure 5 — protocol on real processes",
        ),
    )
    assert report.pages_read == heap.page_count
    assert len(report.rows) == 800
    assert report.parallelism_history == [2, 4]
