"""fig7 — the paper's headline experiment.

Four workloads x three scheduling algorithms, elapsed time.  Expected
shape (paper): on AllCPU and AllIO the three algorithms tie; on the
mixed workloads INTER-WITH-ADJ beats INTRA-ONLY (the paper reports "as
much as 25%"; our engines reproduce up to ~12% on the page-level
simulator and ~23% on the fluid engine — see EXPERIMENTS.md), while
INTER-WITHOUT-ADJ loses ground because finished tasks leave running
tasks stuck at a stale parallelism.
"""

import pytest

from conftest import emit
from repro.bench import run_figure7
from repro.workloads import WorkloadKind

SEEDS = (0, 1, 2, 3)


def test_fig7_micro_engine(benchmark, machine, workload_config):
    result = benchmark.pedantic(
        lambda: run_figure7(
            engine="micro", seeds=SEEDS, machine=machine, config=workload_config
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, result.to_table())
    emit(None, result.to_bar_chart())
    _check_shape(result)
    # The micro engine also pays real protocol costs: with-adj actually
    # performed adjustments on the mixed workloads.
    extreme_adj = result.cell(WorkloadKind.EXTREME, "INTER-WITH-ADJ").adjustments
    assert sum(extreme_adj) > 0


def test_fig7_fluid_engine(benchmark, machine, workload_config):
    result = benchmark.pedantic(
        lambda: run_figure7(
            engine="fluid",
            seeds=tuple(range(10)),
            machine=machine,
            config=workload_config,
            integral=False,
        ),
        rounds=1,
        iterations=1,
    )
    emit(benchmark, result.to_table())
    _check_shape(result)
    # The fluid engine approaches the paper's "as much as 25%".
    assert result.max_win_over_intra(WorkloadKind.EXTREME, "INTER-WITH-ADJ") > 0.12


def _check_shape(result):
    # Uniform workloads: all three algorithms equivalent.
    for kind in (WorkloadKind.ALL_CPU, WorkloadKind.ALL_IO):
        intra = result.cell(kind, "INTRA-ONLY").mean_elapsed
        for policy in ("INTER-WITHOUT-ADJ", "INTER-WITH-ADJ"):
            assert result.cell(kind, policy).mean_elapsed == pytest.approx(
                intra, rel=0.02
            )
    # Mixed workloads: the adaptive algorithm wins...
    for kind in (WorkloadKind.EXTREME, WorkloadKind.RANDOM):
        assert result.win_over_intra(kind, "INTER-WITH-ADJ") > 0.0
    # ...and beats the no-adjustment variant.
    for kind in (WorkloadKind.EXTREME, WorkloadKind.RANDOM):
        wo = result.cell(kind, "INTER-WITHOUT-ADJ").mean_elapsed
        wa = result.cell(kind, "INTER-WITH-ADJ").mean_elapsed
        assert wa < wo
    # INTER-WITHOUT-ADJ loses to INTRA-ONLY on the random mix (the
    # paper observes it losing on mixed workloads generally; on
    # Extreme its sign is seed-dependent in our engines).
    random_wo = result.cell(WorkloadKind.RANDOM, "INTER-WITHOUT-ADJ").mean_elapsed
    random_intra = result.cell(WorkloadKind.RANDOM, "INTRA-ONLY").mean_elapsed
    assert random_wo > random_intra
