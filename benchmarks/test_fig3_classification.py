"""fig3 — IO-bound vs CPU-bound classification lines.

Regenerates the data behind Figure 3: each task's line ``y = C_i x``
inside the rectangle bounded by N and B; tasks above the diagonal are
IO-bound (bandwidth-limited), below are CPU-bound (processor-limited).
"""

import pytest

from conftest import emit
from repro.bench import figure3
from repro.core import is_io_bound, max_parallelism


def test_fig3_classification_lines(benchmark, machine):
    data = benchmark.pedantic(lambda: figure3(machine=machine), rounds=1, iterations=1)
    emit(benchmark, data.to_table())
    for task, line in data.lines:
        # Lines pass through the origin with slope C.
        assert line[0] == (0.0, 0.0)
        for x, y in line:
            assert y == pytest.approx(task.io_rate * x)
        # IO-bound tasks end on the bandwidth wall, CPU-bound on N.
        x_end, y_end = line[-1]
        if is_io_bound(task, machine):
            assert y_end == pytest.approx(machine.io_bandwidth)
            assert x_end < machine.processors
        else:
            assert x_end == pytest.approx(machine.processors)
            assert y_end <= machine.io_bandwidth + 1e-9
        assert x_end == pytest.approx(max_parallelism(task, machine))
