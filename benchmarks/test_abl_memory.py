"""abl6 — memory-constrained scheduling (the paper's future work).

Sweeps the machine's work memory and watches inter-operation
parallelism degrade gracefully toward INTRA-ONLY: with too little
memory for two working sets, the adaptive scheduler falls back to
running tasks one at a time, exactly as Section 5 anticipates.
"""

import dataclasses
from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import InterWithAdjPolicy, IntraOnlyPolicy
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks

SEEDS = range(6)
MB = 1024.0 * 1024.0
BUDGETS_MB = (float("inf"), 64.0, 24.0, 12.0, 6.0)
PER_TASK_MB = 8.0


def test_abl_memory_budget_sweep(benchmark, machine, workload_config):
    def run():
        intra = []
        for seed in SEEDS:
            tasks = [
                t.with_memory(PER_TASK_MB * MB)
                for t in generate_tasks(
                    WorkloadKind.EXTREME,
                    seed=seed,
                    machine=machine,
                    config=workload_config,
                )
            ]
            intra.append(
                FluidSimulator(machine).run(list(tasks), IntraOnlyPolicy()).elapsed
            )
        by_budget = {}
        for budget in BUDGETS_MB:
            budget_bytes = budget * MB if budget != float("inf") else float("inf")
            tight = dataclasses.replace(machine, work_memory_bytes=budget_bytes)
            elapsed = []
            peaks = []
            for seed in SEEDS:
                tasks = [
                    t.with_memory(PER_TASK_MB * MB)
                    for t in generate_tasks(
                        WorkloadKind.EXTREME,
                        seed=seed,
                        machine=machine,
                        config=workload_config,
                    )
                ]
                result = FluidSimulator(tight).run(list(tasks), InterWithAdjPolicy())
                elapsed.append(result.elapsed)
                peaks.append(result.peak_memory)
            by_budget[budget] = (mean(elapsed), max(peaks))
        return mean(intra), by_budget

    intra, by_budget = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for budget, (elapsed, peak) in by_budget.items():
        label = "unlimited" if budget == float("inf") else f"{budget:g} MB"
        rows.append(
            (
                label,
                f"{elapsed:.2f}",
                f"{(intra - elapsed) / intra * 100:+.1f}%",
                f"{peak / MB:.0f} MB",
            )
        )
    emit(
        benchmark,
        format_table(
            ["work memory", "WITH-ADJ elapsed (s)", "win vs INTRA", "peak resident"],
            rows,
            title=(
                f"abl6 — memory budget sweep, {PER_TASK_MB:g} MB/task "
                f"(INTRA-ONLY = {intra:.2f}s)"
            ),
        ),
    )
    unlimited = by_budget[float("inf")][0]
    starved = by_budget[BUDGETS_MB[-1]][0]
    # Budgets below two working sets force sequential execution = intra.
    assert starved >= intra * 0.999
    # With room for two working sets the win is back.
    assert unlimited < intra
    # Peak residency respects the budget (a single task that alone
    # exceeds the budget still has to run, so that is the floor).
    for budget, (__, peak) in by_budget.items():
        if budget != float("inf"):
            assert peak <= max(budget, PER_TASK_MB) * MB + 1e-6
