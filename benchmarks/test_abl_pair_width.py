"""abl2 — is running two tasks at a time enough?

Section 2.3: "Although a combination of more than two tasks may also
achieve the same effect, it complicates the scheduling algorithm and
consumes more memory.  Therefore ... it is sufficient to only run two
tasks at a time."  This ablation compares the paper's two-at-a-time
adaptive scheduler with a fair-share scheduler that runs *every* task
simultaneously on equal processor slices.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import Adjust, InterWithAdjPolicy, SchedulingPolicy, Start
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks

SEEDS = range(8)


class FairShareAll(SchedulingPolicy):
    """Run every task at once, processors split evenly (k > 2 widths)."""

    name = "FAIR-SHARE-ALL"

    def decide(self, state):
        total = len(state.running) + len(state.pending)
        if total == 0:
            return []
        share = max(1.0, state.machine.processors / total)
        actions = []
        for run in state.running:
            if abs(run.parallelism - share) > 1e-9:
                actions.append(Adjust(run.task, share))
        for task in state.pending:
            actions.append(Start(task, share))
        return actions


def test_abl_two_at_a_time_vs_all_at_once(benchmark, machine, workload_config):
    def run():
        out = {"pair": [], "all": []}
        for seed in SEEDS:
            tasks = generate_tasks(
                WorkloadKind.RANDOM, seed=seed, machine=machine, config=workload_config
            )
            pair = FluidSimulator(machine).run(list(tasks), InterWithAdjPolicy())
            fair = FluidSimulator(machine).run(list(tasks), FairShareAll())
            out["pair"].append(pair.elapsed)
            out["all"].append(fair.elapsed)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    pair = mean(results["pair"])
    fair = mean(results["all"])
    emit(
        benchmark,
        format_table(
            ["scheduler", "mean elapsed (s)"],
            [
                ("two-at-a-time balance pairs (paper)", f"{pair:.2f}"),
                ("all tasks at once, fair share", f"{fair:.2f}"),
            ],
            title="abl2 — two tasks at a time vs everything at once",
        ),
    )
    # Two well-chosen tasks must not lose to running everything at once
    # (many concurrent sequential streams collapse the bandwidth).
    assert pair <= fair * 1.05
