"""fig4 — the IO-CPU balance point.

Regenerates Figure 4: for one IO-bound and one CPU-bound task, the
intersection of the two lines inside the (N, B) rectangle puts the
system at the maximum utilization point — 100% of both processors and
(effective) disk bandwidth.
"""

import pytest

from conftest import emit
from repro.bench import figure4, format_table
from repro.core import balance_point, make_task


def test_fig4_balance_point(benchmark, machine):
    data = benchmark.pedantic(lambda: figure4(machine=machine), rounds=1, iterations=1)
    emit(benchmark, data.to_table())
    cpu_util, io_util = data.point.utilization(machine)
    assert cpu_util == pytest.approx(1.0)
    assert io_util == pytest.approx(1.0)
    assert data.point.total_parallelism == pytest.approx(machine.processors)


def test_fig4_closed_form_without_correction(benchmark, machine):
    """The nominal (Section 2.3) closed form, B constant at 240."""

    def solve():
        fi = make_task("io", io_rate=60.0, seq_time=10.0)
        fj = make_task("cpu", io_rate=10.0, seq_time=10.0)
        return balance_point(fi, fj, machine, use_effective_bandwidth=False)

    point = benchmark.pedantic(solve, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["quantity", "value", "closed form"],
            [
                ("x_io", f"{point.x_io:.3f}", "(B - Cj N)/(Ci - Cj) = 3.2"),
                ("x_cpu", f"{point.x_cpu:.3f}", "(Ci N - B)/(Ci - Cj) = 4.8"),
            ],
            title="Figure 4 closed form (no bandwidth correction)",
        ),
    )
    assert point.x_io == pytest.approx(3.2)
    assert point.x_cpu == pytest.approx(4.8)
