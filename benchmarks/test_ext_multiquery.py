"""ext1 — multi-query co-scheduling (Section-5 future work, quantified).

A batch of queries — one CPU-heavy join plus IO-heavy bulk scans — is
optimized per query (left-deep, the paper's multi-user advice) and all
fragments are pooled into one scheduler.  The adaptive scheduler
overlaps the IO-bound scans with the CPU-bound join work, cutting both
the batch makespan and the mean response time.
"""

from conftest import emit
from repro.bench import format_table
from repro.core import IntraOnlyPolicy
from repro.optimizer import MultiQueryScheduler, Query, QuerySubmission
from repro.workloads import build_relation, chain_join, one_tuple_per_page_payload


def _make_batch():
    schema = chain_join(3, rows_per_relation=1500, seed=31)
    payload = one_tuple_per_page_payload(8192)
    build_relation(
        schema.catalog, schema.array, "wide_a", n_rows=3000, payload_size=payload
    )
    build_relation(
        schema.catalog, schema.array, "wide_b", n_rows=2000, payload_size=payload
    )
    batch = [
        QuerySubmission("join-query", schema.query),
        QuerySubmission("bulk-scan-a", Query(relations=["wide_a"])),
        QuerySubmission("bulk-scan-b", Query(relations=["wide_b"]), arrival_time=1.0),
    ]
    return schema, batch


def test_ext_multiquery_coscheduling(benchmark):
    schema, batch = _make_batch()
    scheduler = MultiQueryScheduler(schema.catalog)

    def run():
        adaptive = scheduler.run(batch)
        intra = scheduler.run(batch, policy=IntraOnlyPolicy())
        return adaptive, intra

    adaptive, intra = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for submission in batch:
        a = adaptive.outcome(submission.name)
        i = intra.outcome(submission.name)
        rows.append(
            (
                submission.name,
                len(a.fragments),
                f"{a.response_time:.2f}",
                f"{i.response_time:.2f}",
            )
        )
    rows.append(
        (
            "— batch makespan",
            "",
            f"{adaptive.elapsed:.2f}",
            f"{intra.elapsed:.2f}",
        )
    )
    emit(
        benchmark,
        format_table(
            ["query", "fragments", "WITH-ADJ resp (s)", "INTRA resp (s)"],
            rows,
            title="ext1 — co-scheduling a mixed query batch",
        ),
    )
    # The adaptive batch finishes faster and responds faster on average.
    assert adaptive.elapsed < intra.elapsed
    assert adaptive.mean_response_time < intra.mean_response_time
    # Fragments of different queries really overlapped.
    records = sorted(adaptive.schedule.records, key=lambda r: r.started_at)
    overlap = any(
        a.finished_at > b.started_at and a.task.name.split("/")[0] != b.task.name.split("/")[0]
        for a, b in zip(records, records[1:])
    )
    assert overlap
