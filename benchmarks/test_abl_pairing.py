"""abl1 — the pairing heuristic.

The paper pairs "the most IO-bound task ... and the most CPU-bound
task" so the leftover tasks sit closer to the diagonal.  This ablation
compares that against FIFO pairing (first task of each queue in arrival
order) on the random-mix workload.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import InterWithAdjPolicy
from repro.sim import MicroSimulator
from repro.workloads import WorkloadKind, generate_specs

SEEDS = range(6)


def test_abl_pairing_heuristic(benchmark, machine, workload_config):
    def run():
        results = {"extreme": [], "fifo": []}
        for seed in SEEDS:
            specs = generate_specs(
                WorkloadKind.RANDOM, seed=seed, machine=machine, config=workload_config
            )
            for pairing in ("extreme", "fifo"):
                policy = InterWithAdjPolicy(integral=True, pairing=pairing)
                result = MicroSimulator(machine).run(list(specs), policy)
                results[pairing].append(result.elapsed)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    extreme = mean(results["extreme"])
    fifo = mean(results["fifo"])
    emit(
        benchmark,
        format_table(
            ["pairing", "mean elapsed (s)"],
            [
                ("most-IO x most-CPU (paper)", f"{extreme:.2f}"),
                ("FIFO", f"{fifo:.2f}"),
            ],
            title="abl1 — pairing heuristic on the Random workload",
        ),
    )
    # The paper's heuristic should not lose to FIFO pairing.
    assert extreme <= fifo * 1.02
