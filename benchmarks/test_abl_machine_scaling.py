"""abl8 — machine scaling: processors and disks beyond the paper's 8x4.

The paper fixes N=8, D=4.  This ablation sweeps both and watches the
theory hold: the IO/CPU threshold B/N moves, the balance point follows,
and the adaptive win is largest when CPU and disk capacity are
*mismatched* against the workload mix (there is slack for pairing to
reclaim) and vanishes when one resource dominates completely.
"""

import dataclasses
from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.config import paper_machine
from repro.core import InterWithAdjPolicy, IntraOnlyPolicy
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks

SEEDS = range(5)
GRID = [(2, 4), (4, 4), (8, 4), (12, 4), (8, 2), (8, 8)]


def test_abl_machine_scaling(benchmark, workload_config):
    base = paper_machine()

    def run():
        rows = []
        for processors, disks in GRID:
            machine = dataclasses.replace(base, processors=processors, disks=disks)
            wins = []
            for seed in SEEDS:
                tasks = generate_tasks(
                    WorkloadKind.EXTREME,
                    seed=seed,
                    machine=base,  # same workload across machines
                    config=workload_config,
                )
                intra = FluidSimulator(machine).run(list(tasks), IntraOnlyPolicy())
                adaptive = FluidSimulator(machine).run(
                    list(tasks), InterWithAdjPolicy()
                )
                wins.append((intra.elapsed - adaptive.elapsed) / intra.elapsed)
            rows.append((processors, disks, machine.bound_threshold, mean(wins)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["N (cpus)", "disks", "threshold B/N", "WITH-ADJ win"],
            [
                (n, d, f"{threshold:.0f} ios/s", f"{win * 100:+.1f}%")
                for n, d, threshold, win in rows
            ],
            title="abl8 — adaptive win across machine shapes (Extreme workload)",
        ),
    )
    by_shape = {(n, d): win for n, d, __, win in rows}
    # The paper's shape shows a solid win.
    assert by_shape[(8, 4)] > 0.03
    # With 2 CPUs everything is CPU-bound (threshold 120): nothing to
    # pair, so intra-only is already optimal.
    assert abs(by_shape[(2, 4)]) < 0.02
    # Doubling the disks raises the threshold to 60: the extreme
    # "IO-bound" band (52-58 ios/s) becomes CPU-bound and the win
    # collapses — boundedness is relative to the machine.
    assert by_shape[(8, 8)] < by_shape[(8, 4)]
