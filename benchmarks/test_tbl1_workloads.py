"""tbl1 — the Section-3 io-rate table and workload generator draws.

Paper table:

    CPU-bound            randomly chosen in [5, 30)
    IO-bound             randomly chosen in (30, 60]
    Extremely CPU-bound  randomly chosen in [5, 15]
    Extremely IO-bound   randomly chosen in [60, 70]

(our bands rescale the IO side into almost-sequential units — see the
workloads module docstring; the classification threshold stays at 30).
"""

import pytest

from conftest import emit
from repro.bench import format_table
from repro.core import is_io_bound
from repro.workloads import RateBands, WorkloadKind, generate_tasks


def test_tbl1_rate_bands(benchmark, machine, workload_config):
    bands = workload_config.bands

    def draw():
        return {
            kind: [
                generate_tasks(kind, seed=s, machine=machine, config=workload_config)
                for s in range(3)
            ]
            for kind in WorkloadKind
        }

    drawn = benchmark.pedantic(draw, rounds=1, iterations=1)
    emit(
        benchmark,
        format_table(
            ["Type of Tasks", "IO Rate (ios/second)"],
            bands.paper_table(),
            title="Section 3 io-rate table (this reproduction's bands)",
        ),
    )
    for kind, workloads in drawn.items():
        for tasks in workloads:
            assert len(tasks) == workload_config.n_tasks
            for task in tasks:
                assert (
                    workload_config.min_pages
                    <= task.io_count
                    <= workload_config.max_pages
                )
            if kind == WorkloadKind.ALL_CPU:
                assert all(not is_io_bound(t, machine) for t in tasks)
                assert all(
                    bands.cpu_low <= t.io_rate < bands.cpu_high + 1e-6 for t in tasks
                )
            elif kind == WorkloadKind.ALL_IO:
                assert all(
                    bands.io_low - 1e-6 <= t.io_rate <= bands.io_high + 1e-6
                    for t in tasks
                )
            elif kind == WorkloadKind.EXTREME:
                io_side = [t for t in tasks if is_io_bound(t, machine)]
                cpu_side = [t for t in tasks if not is_io_bound(t, machine)]
                assert len(io_side) == len(cpu_side) == len(tasks) // 2
                assert all(t.io_rate >= bands.extreme_io_low - 1e-6 for t in io_side)
                assert all(t.io_rate <= bands.extreme_cpu_high + 1e-6 for t in cpu_side)


def test_tbl1_default_bands_match_threshold(machine):
    bands = RateBands()
    assert bands.cpu_high == pytest.approx(machine.bound_threshold)
    assert bands.io_low == pytest.approx(machine.bound_threshold)
