"""ext2 — serving mode: balance-aware admission vs FIFO under load.

An open two-tenant stream (IO-bound *etl* scans arriving in bursts
alongside CPU-bound *olap* joins) is served twice at 80% of measured
capacity: once admitting in strict FIFO order and once with the
balance-aware policy, which applies the paper's Section-2.2 IO/CPU
classification at the admission gate so INTER-WITH-ADJ always has a
cross-class pair to overlap.  Under same-class bursts FIFO feeds the
scheduler same-class pairs (no overlap, queues grow); the balance arm
keeps both resources busy and cuts the p95 response time by >= 10%
across three seeds.  A repeated λ sweep also checks that the knee table
is byte-identical given the same (seed, λ, mix).
"""

from conftest import emit

from repro.bench import format_table
from repro.service import (
    BalanceAwareAdmission,
    FifoAdmission,
    QueryService,
    estimate_capacity,
    format_sweep,
    mixed_tenant_config,
    onoff_stream,
    percentile,
    sweep,
)

RHO = 0.8
SEEDS = (0, 1, 2)


def _service(machine, admission):
    return QueryService(
        machine,
        admission=admission,
        queue_capacity=20,
        max_inflight_fragments=2,
    )


def _serve_pair(machine, seed):
    """Serve the same stream with both arms at ρ = 0.8 of FIFO's μ."""
    config = mixed_tenant_config(80)
    mu = estimate_capacity(
        seed=seed,
        config=config,
        machine=machine,
        service=_service(machine, FifoAdmission()),
    )
    stream = onoff_stream(
        rate=RHO * mu,
        seed=seed,
        on_fraction=0.4,
        period=120.0,
        config=config,
        machine=machine,
    )
    fifo = _service(machine, FifoAdmission()).run(stream)
    balance = _service(machine, BalanceAwareAdmission()).run(stream)
    return mu, fifo, balance


def test_ext_service_balance_beats_fifo(benchmark, machine):
    def run():
        return [(seed, *_serve_pair(machine, seed)) for seed in SEEDS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for seed, mu, fifo, balance in results:
        fifo_p95 = percentile(fifo.metrics.overall.response_times, 95.0)
        bal_p95 = percentile(balance.metrics.overall.response_times, 95.0)
        gain = (fifo_p95 - bal_p95) / fifo_p95
        rows.append(
            (
                str(seed),
                f"{mu:.4f}",
                f"{RHO:.0%}",
                f"{fifo_p95:.2f}",
                f"{bal_p95:.2f}",
                f"{gain:.1%}",
            )
        )
        # The headline claim: balance-aware admission is at least 10%
        # better on p95 response time, deterministically per seed.
        assert gain >= 0.10, f"seed {seed}: gain {gain:.1%} below 10%"
        # Both arms served the identical stream.
        assert fifo.metrics.overall.offered == balance.metrics.overall.offered
    emit(
        benchmark,
        format_table(
            ["seed", "mu (1/s)", "rho", "FIFO p95 (s)", "BALANCE p95 (s)", "p95 gain"],
            rows,
            title="serving mode: balance-aware admission vs FIFO "
            "(two-tenant bursty mix at 80% offered load)",
        ),
    )


def test_ext_service_sweep_is_reproducible(benchmark, machine):
    config = mixed_tenant_config(40)

    def knee():
        points = sweep(
            rhos=(0.5, 0.8, 1.1),
            seed=0,
            config=config,
            machine=machine,
            admission=BalanceAwareAdmission(),
        )
        return format_sweep(points, title="knee (balance admission, seed 0)")

    first = benchmark.pedantic(knee, rounds=1, iterations=1)
    second = knee()
    assert first == second, "same (seed, λ, mix) must print identical tables"
    emit(benchmark, first)
