"""abl4 — shortest-job-first for multi-user response time.

"In a multi-user environment, if we want to minimize the response time
of individual queries instead of the total elapsed time, a
shortest-job-first heuristic can be used, i.e., to execute the tasks
from shortest queries first."  This bench runs a Poisson arrival stream
through the continuous queues and compares mean response time under
extreme pairing vs SJF pairing.
"""

from statistics import mean

from conftest import emit
from repro.bench import format_table
from repro.core import InterWithAdjPolicy
from repro.sim import FluidSimulator
from repro.workloads import WorkloadKind, generate_tasks, poisson_arrivals

SEEDS = range(6)


def test_abl_sjf_response_time(benchmark, machine, workload_config):
    def run():
        out = {"extreme": {"rt": [], "makespan": []}, "sjf": {"rt": [], "makespan": []}}
        for seed in SEEDS:
            base = generate_tasks(
                WorkloadKind.RANDOM, seed=seed, machine=machine, config=workload_config
            )
            arrived = poisson_arrivals(base, rate_per_second=0.08, seed=seed)
            for pairing in ("extreme", "sjf"):
                policy = InterWithAdjPolicy(pairing=pairing)
                result = FluidSimulator(machine).run(list(arrived), policy)
                out[pairing]["rt"].append(result.mean_response_time)
                out[pairing]["makespan"].append(result.elapsed)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for pairing in ("extreme", "sjf"):
        rows.append(
            (
                pairing,
                f"{mean(results[pairing]['rt']):.2f}",
                f"{mean(results[pairing]['makespan']):.2f}",
            )
        )
    emit(
        benchmark,
        format_table(
            ["queue order", "mean response time (s)", "makespan (s)"],
            rows,
            title="abl4 — SJF vs extreme pairing under Poisson arrivals",
        ),
    )
    # SJF improves mean response time (the paper's stated purpose).
    assert mean(results["sjf"]["rt"]) <= mean(results["extreme"]["rt"]) * 1.02
