"""Shared benchmark configuration.

Benchmarks run with ``pytest benchmarks/ --benchmark-only``.  Every
benchmark prints the table or series the paper reports; run with ``-s``
to see them inline (they are also attached to the benchmark's
``extra_info``).
"""

import pytest

from repro.config import paper_machine
from repro.workloads import WorkloadConfig


@pytest.fixture(scope="session")
def machine():
    """The paper's machine: 8 processors, 4 disks, B = 240 ios/s."""
    return paper_machine()


@pytest.fixture(scope="session")
def workload_config():
    """Figure-7 workload knobs, scaled for benchmark wall time.

    The paper scans 100-10,000 tuples per task; we cap at 3,000 pages
    so the page-level simulation of the full grid stays fast.  Shapes
    are unaffected (verified against full-scale runs in EXPERIMENTS.md).
    """
    return WorkloadConfig(max_pages=3000)


def emit(benchmark, text: str) -> None:
    """Print a paper-style table and attach it to the benchmark record."""
    print()
    print(text)
    if benchmark is not None:
        benchmark.extra_info["report"] = text
