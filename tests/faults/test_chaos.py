"""Tests for the chaos harness (``repro.faults.chaos``)."""

import pytest

from repro.config import paper_machine
from repro.errors import FaultError
from repro.faults.chaos import ChaosReport, chaos_workload, run_chaos
from repro.faults.schedule import FaultSchedule, SlaveCrash


class TestChaosWorkload:
    def test_standard_shape(self):
        specs = chaos_workload(paper_machine())
        assert [s.name for s in specs] == ["io0", "cpu0", "rnd0"]
        assert specs[2].partitioning == "range"

    def test_scale_shrinks_but_keeps_a_floor(self):
        machine = paper_machine()
        tiny = chaos_workload(machine, scale=0.001)
        assert all(s.n_pages >= 8 for s in tiny)
        with pytest.raises(FaultError):
            chaos_workload(machine, scale=0.0)


@pytest.mark.chaos
class TestRunChaos:
    def test_preset_run_tolerates_and_reports(self):
        report = run_chaos(preset="mixed", seed=0, scale=0.2)
        assert isinstance(report, ChaosReport)
        assert report.ok
        assert report.wedged_adjustments == 0
        assert report.log.faults_injected >= 1
        assert report.faulted.elapsed >= report.healthy.elapsed
        lines = report.to_lines()
        assert lines[0].startswith("chaos seed=0")
        assert lines[-1].startswith("verdict: OK")
        assert any("counters:" in line for line in lines)

    def test_explicit_schedule_bypasses_presets(self):
        schedule = FaultSchedule((SlaveCrash(at=0.5, task="cpu0"),))
        report = run_chaos(schedule=schedule, seed=1, scale=0.2)
        assert report.schedule is schedule
        assert report.ok
        assert report.log.crashes == 1
        assert report.log.pages_reread <= 1

    def test_slowdown_is_relative_to_healthy(self):
        report = run_chaos(preset="slow-disk", seed=0, scale=0.2)
        assert report.slowdown == pytest.approx(
            report.faulted.elapsed / report.healthy.elapsed
        )
        assert report.slowdown > 1.0
