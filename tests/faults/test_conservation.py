"""Property test: page conservation under random fault schedules.

The tentpole invariant: whatever faults fire — degraded disks, stalls,
slaves crashing mid-page, dropped or delayed protocol legs — every page
is processed exactly once.  The engine enforces "at most once" itself
(a duplicate raises :class:`~repro.errors.SimulationError` the moment
``pages_done`` exceeds ``n_pages``) and a task only completes after
``n_pages`` successes, so *all tasks completing* is exactly "every page
once".  Fifty seeded random schedules drive the search.
"""

import pytest

from repro.config import paper_machine
from repro.core.schedulers import InterWithAdjPolicy
from repro.core.task import IOPattern
from repro.faults import random_schedule
from repro.sim.micro import MicroSimulator, spec_for_io_rate

SCHEDULE_SEEDS = range(50)
HORIZON = 4.0  # faults land inside the few simulated seconds the runs take


def _specs(machine):
    return [
        spec_for_io_rate(
            "io0",
            machine,
            io_rate=55.0,
            n_pages=300,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
        spec_for_io_rate(
            "cpu0",
            machine,
            io_rate=8.0,
            n_pages=80,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
        spec_for_io_rate(
            "rnd0",
            machine,
            io_rate=20.0,
            n_pages=60,
            pattern=IOPattern.RANDOM,
            partitioning="range",
        ),
    ]


@pytest.mark.parametrize("schedule_seed", SCHEDULE_SEEDS)
def test_pages_conserved_under_random_faults(schedule_seed):
    machine = paper_machine()
    schedule = random_schedule(
        schedule_seed,
        horizon=HORIZON,
        n_disks=machine.disks,
        task_names=("io0", "cpu0", "rnd0"),
    )
    sim = MicroSimulator(
        machine,
        seed=schedule_seed,
        consult_interval=1.0,
        faults=schedule,
        fault_seed=schedule_seed,
        adjust_timeout=0.5,
    )
    # A duplicate page raises inside run(); a lost page would leave the
    # task incomplete (and the run would wedge against _MAX_EVENTS).
    result = sim.run(_specs(machine), InterWithAdjPolicy(integral=True, degradation_aware=True))

    assert len(result.records) == 3, "every task must complete"
    assert result.fault_log is not None
    log = result.fault_log
    # Every crash of a mid-page slave re-reads exactly that page.
    assert log.pages_reread <= log.crashes
    # Every timed-out adjustment round was aborted, none left wedged.
    assert log.adjust_timeouts == log.adjust_aborts
    # A dropped leg hangs its round; only the timeout can clear it.
    if log.messages_dropped:
        assert log.adjust_timeouts >= 0  # run finished despite the drop


@pytest.mark.parametrize("schedule_seed", SCHEDULE_SEEDS)
def test_conservation_with_deadline_cancellations(schedule_seed):
    """Random faults layered with deadline cancels still conserve pages.

    A cancelled task must be accounted (a ``CancelRecord``), never
    silently lost, and completed + cancelled must cover the workload —
    with no wedged adjustment round left behind.
    """
    from repro.faults import with_deadlines

    machine = paper_machine()
    names = ("io0", "cpu0", "rnd0")
    schedule = random_schedule(
        schedule_seed,
        horizon=HORIZON,
        n_disks=machine.disks,
        task_names=names,
    )
    schedule = with_deadlines(
        schedule, schedule_seed, horizon=HORIZON, task_names=names
    )
    sim = MicroSimulator(
        machine,
        seed=schedule_seed,
        consult_interval=1.0,
        faults=schedule,
        fault_seed=schedule_seed,
        adjust_timeout=0.5,
    )
    result = sim.run(
        _specs(machine),
        InterWithAdjPolicy(integral=True, degradation_aware=True),
    )

    completed = {r.task.name for r in result.records}
    cancelled = {c.task.name for c in result.cancel_records}
    assert not (completed & cancelled), "a task cannot both finish and cancel"
    assert completed | cancelled == set(names), "every task accounted"
    log = result.fault_log
    assert log is not None
    assert log.deadline_cancels == len(result.cancel_records)
    assert log.adjust_timeouts == log.adjust_aborts, "no wedged rounds"
