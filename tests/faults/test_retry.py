"""Tests for the deterministic retry backoff policy."""

import pytest

from repro.errors import FaultError
from repro.faults import RetryPolicy


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(FaultError):
            RetryPolicy(base_delay=10.0, max_delay=1.0)
        with pytest.raises(FaultError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(FaultError):
            RetryPolicy().backoff(1, -1)


class TestBackoff:
    def test_deterministic_per_submission_and_attempt(self):
        policy = RetryPolicy(seed=5)
        assert policy.backoff(7, 0) == policy.backoff(7, 0)
        assert policy.backoff(7, 0) != policy.backoff(8, 0)
        assert policy.backoff(7, 0) != policy.backoff(7, 1)

    def test_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=100.0, jitter=0.5
        )
        for attempt in range(5):
            base = 2.0**attempt
            delay = policy.backoff(0, attempt)
            assert base <= delay <= base * 1.5

    def test_cap_applies_before_jitter(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=8.0, jitter=0.5
        )
        delay = policy.backoff(0, 6)
        assert 8.0 <= delay <= 12.0

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=2.0, multiplier=3.0, jitter=0.0)
        assert policy.backoff(123, 2) == pytest.approx(18.0)

    def test_different_seeds_spread_differently(self):
        a = RetryPolicy(seed=0).backoff(1, 1)
        b = RetryPolicy(seed=1).backoff(1, 1)
        assert a != b
