"""Satellite: byte-identical traces under identical (seed, schedule).

Fault injection must not cost reproducibility: the injector draws only
from seeded RNGs and the engine's event order is already total, so two
runs of the same ``(workload, schedule, seed)`` must agree on *every*
observable — elapsed time, task records, adjustment counts, the fault
log, and the chaos CLI's printed report.
"""

import pytest

from repro.__main__ import main
from repro.config import paper_machine
from repro.core.schedulers import InterWithAdjPolicy
from repro.core.task import IOPattern
from repro.faults import preset_schedule, random_schedule
from repro.sim.micro import MicroSimulator, spec_for_io_rate


def _specs(machine):
    return [
        spec_for_io_rate(
            "io0",
            machine,
            io_rate=55.0,
            n_pages=300,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
        spec_for_io_rate(
            "cpu0",
            machine,
            io_rate=8.0,
            n_pages=80,
            pattern=IOPattern.SEQUENTIAL,
            partitioning="page",
        ),
        spec_for_io_rate(
            "rnd0",
            machine,
            io_rate=20.0,
            n_pages=60,
            pattern=IOPattern.RANDOM,
            partitioning="range",
        ),
    ]


def _trace(machine, schedule, seed):
    result = MicroSimulator(
        machine,
        seed=seed,
        consult_interval=1.0,
        faults=schedule,
        fault_seed=seed,
        adjust_timeout=0.5,
    ).run(_specs(machine), InterWithAdjPolicy(integral=True, degradation_aware=True))
    return (
        result.elapsed,
        result.adjustments,
        [
            (r.task.name, r.started_at, r.finished_at, r.parallelism_history)
            for r in result.records
        ],
        result.fault_log.events,
        result.fault_log.faults_injected,
    )


class TestEngineDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_same_seed_and_preset_is_byte_identical(self, seed):
        machine = paper_machine()
        schedule = preset_schedule("mixed", horizon=4.0)
        assert _trace(machine, schedule, seed) == _trace(machine, schedule, seed)

    def test_same_seed_and_random_schedule_is_byte_identical(self):
        machine = paper_machine()
        schedule = random_schedule(
            3, horizon=4.0, n_disks=machine.disks, task_names=("io0", "cpu0")
        )
        assert _trace(machine, schedule, 3) == _trace(machine, schedule, 3)

    def test_different_fault_seed_may_pick_different_crash_targets(self):
        # Not an equality requirement — just that fault_seed is what
        # varies the unspecified crash-target picks, nothing else.
        machine = paper_machine()
        schedule = preset_schedule("crashes", horizon=4.0)
        a = _trace(machine, schedule, 0)
        b = _trace(machine, schedule, 0)
        assert a == b


@pytest.mark.chaos
class TestCliDeterminism:
    def test_chaos_smoke_output_is_byte_identical(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--smoke"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_random_schedule_output_is_byte_identical(self, capsys):
        argv = ["chaos", "--smoke", "--random", "11", "--horizon", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
