"""Tests for fault schedules: dataclasses, parsing, presets, generators."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    DiskDegradation,
    DiskStall,
    FaultSchedule,
    MessageFault,
    SlaveCrash,
    fault_from_dict,
    load_schedule,
    preset_schedule,
    random_schedule,
    schedule_from_dicts,
)


class TestFaultValidation:
    def test_degradation_rejects_bad_factor(self):
        with pytest.raises(FaultError, match="factor"):
            DiskDegradation(disk=0, start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(FaultError, match="factor"):
            DiskDegradation(disk=0, start=0.0, duration=1.0, factor=1.5)

    def test_degradation_rejects_negative_times(self):
        with pytest.raises(FaultError):
            DiskDegradation(disk=0, start=-1.0, duration=1.0, factor=0.5)
        with pytest.raises(FaultError):
            DiskDegradation(disk=0, start=0.0, duration=0.0, factor=0.5)

    def test_degradation_end(self):
        fault = DiskDegradation(disk=1, start=2.0, duration=3.0, factor=0.5)
        assert fault.end == 5.0

    def test_stall_rejects_bad_disk_and_window(self):
        with pytest.raises(FaultError):
            DiskStall(disk=-1, at=0.0, duration=1.0)
        with pytest.raises(FaultError):
            DiskStall(disk=0, at=0.0, duration=0.0)

    def test_crash_rejects_negative_time(self):
        with pytest.raises(FaultError):
            SlaveCrash(at=-0.1)

    def test_message_rejects_unknown_kind_and_zero_delay(self):
        with pytest.raises(FaultError, match="kind"):
            MessageFault(at=0.0, kind="mangle")
        with pytest.raises(FaultError, match="extra"):
            MessageFault(at=0.0, kind="delay", extra=0.0)


class TestFaultSchedule:
    def test_filtered_views(self):
        schedule = FaultSchedule(
            (
                DiskDegradation(disk=0, start=0.0, duration=1.0, factor=0.5),
                DiskStall(disk=1, at=0.5, duration=0.2),
                SlaveCrash(at=1.0),
                MessageFault(at=2.0, kind="drop"),
            )
        )
        assert len(schedule) == 4
        assert len(schedule.degradations) == 1
        assert len(schedule.stalls) == 1
        assert len(schedule.crashes) == 1
        assert len(schedule.message_faults) == 1

    def test_validate_against_rejects_out_of_range_disk(self):
        schedule = FaultSchedule(
            (DiskDegradation(disk=4, start=0.0, duration=1.0, factor=0.5),)
        )
        with pytest.raises(FaultError, match="disk 4"):
            schedule.validate_against(4)
        schedule.validate_against(5)


class TestParsing:
    def test_fault_from_dict_all_kinds(self):
        assert isinstance(
            fault_from_dict(
                {"kind": "degrade", "disk": 0, "start": 1.0, "duration": 2.0, "factor": 0.5}
            ),
            DiskDegradation,
        )
        assert isinstance(
            fault_from_dict({"kind": "stall", "disk": 1, "at": 0.5, "duration": 0.1}),
            DiskStall,
        )
        crash = fault_from_dict({"kind": "crash", "at": 1.0, "task": "io0"})
        assert isinstance(crash, SlaveCrash)
        assert crash.task == "io0"
        drop = fault_from_dict({"kind": "drop", "at": 3.0})
        assert drop.kind == "drop"
        delay = fault_from_dict({"kind": "delay", "at": 3.0, "extra": 0.1})
        assert delay.extra == 0.1

    def test_unknown_kind_and_keys_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            fault_from_dict({"kind": "meteor", "at": 0.0})
        with pytest.raises(FaultError, match="unknown keys"):
            fault_from_dict({"kind": "drop", "at": 0.0, "severity": 11})
        with pytest.raises(FaultError):
            fault_from_dict("not-a-dict")

    def test_missing_required_field_is_a_fault_error(self):
        with pytest.raises(FaultError, match="degrade"):
            fault_from_dict({"kind": "degrade", "disk": 0})

    def test_schedule_from_dicts(self):
        schedule = schedule_from_dicts(
            [{"kind": "drop", "at": 1.0}, {"kind": "crash", "at": 2.0}]
        )
        assert len(schedule) == 2

    def test_load_schedule_roundtrip(self, tmp_path):
        path = tmp_path / "sched.json"
        path.write_text(
            json.dumps(
                {
                    "faults": [
                        {
                            "kind": "degrade",
                            "disk": 0,
                            "start": 1.0,
                            "duration": 5.0,
                            "factor": 0.5,
                        },
                        {"kind": "crash", "at": 1.5, "task": "io0"},
                    ]
                }
            )
        )
        schedule = load_schedule(str(path))
        assert len(schedule) == 2
        assert schedule.degradations[0].factor == 0.5
        assert schedule.crashes[0].task == "io0"

    def test_load_schedule_errors(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read"):
            load_schedule(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultError, match="not valid JSON"):
            load_schedule(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"events": []}')
        with pytest.raises(FaultError, match='"faults"'):
            load_schedule(str(wrong))
        notalist = tmp_path / "notalist.json"
        notalist.write_text('{"faults": 3}')
        with pytest.raises(FaultError, match="must be a list"):
            load_schedule(str(notalist))


class TestPresets:
    @pytest.mark.parametrize(
        "name", ["slow-disk", "stall", "crashes", "messages", "mixed"]
    )
    def test_presets_scale_to_horizon(self, name):
        schedule = preset_schedule(name, horizon=30.0)
        assert len(schedule) >= 1
        for fault in schedule:
            t = getattr(fault, "start", None) or getattr(fault, "at", 0.0)
            assert 0.0 <= t <= 30.0

    def test_mixed_has_every_kind(self):
        mixed = preset_schedule("mixed", horizon=10.0)
        assert mixed.degradations and mixed.stalls
        assert mixed.crashes and mixed.message_faults

    def test_unknown_preset(self):
        with pytest.raises(FaultError, match="unknown preset"):
            preset_schedule("earthquake")


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        a = random_schedule(7, horizon=20.0, task_names=("io0",))
        b = random_schedule(7, horizon=20.0, task_names=("io0",))
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        schedules = {random_schedule(s, horizon=20.0) for s in range(10)}
        assert len(schedules) > 1

    def test_respects_disk_count(self):
        for seed in range(20):
            schedule = random_schedule(seed, n_disks=2)
            schedule.validate_against(2)

    def test_sorted_by_time(self):
        for seed in range(10):
            schedule = random_schedule(seed, horizon=20.0)
            times = [
                getattr(f, "start", None) or getattr(f, "at", 0.0)
                for f in schedule
            ]
            assert times == sorted(times)
