"""Tests for the admission-gate circuit breaker state machine."""

import pytest

from repro.errors import FaultError
from repro.faults import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def _breaker(**kwargs):
    defaults = dict(
        failure_threshold=3,
        cooldown=10.0,
        degraded_fraction=0.6,
        degraded_grace=5.0,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(FaultError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(FaultError):
            CircuitBreaker(cooldown=0.0)
        with pytest.raises(FaultError):
            CircuitBreaker(degraded_fraction=0.0)
        with pytest.raises(FaultError):
            CircuitBreaker(degraded_grace=-1.0)


class TestReactiveTrip:
    def test_opens_after_consecutive_failures(self):
        breaker = _breaker()
        for t in (1.0, 2.0):
            breaker.record_failure(t)
            assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN

    def test_success_resets_the_streak(self):
        breaker = _breaker()
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(2.5)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state == CLOSED

    def test_open_rejects_until_cooldown(self):
        breaker = _breaker()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert not breaker.allow(5.0)
        assert not breaker.allow(12.9)
        assert breaker.open_rejections == 2
        # Cooldown over: half-open, exactly one probe allowed.
        assert breaker.allow(13.1)
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(13.2)

    def test_probe_success_closes(self):
        breaker = _breaker()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(14.0)
        breaker.record_success(14.5)
        assert breaker.state == CLOSED
        assert breaker.allow(14.6)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = _breaker()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(14.0)
        breaker.record_failure(14.5)
        assert breaker.state == OPEN
        assert not breaker.allow(20.0)
        assert breaker.allow(24.6)  # 14.5 + 10s cooldown passed


class TestProactiveTrip:
    def test_sustained_degradation_opens(self):
        breaker = _breaker()
        breaker.observe_bandwidth(0.0, 0.5)
        assert breaker.state == CLOSED
        breaker.observe_bandwidth(4.0, 0.5)
        assert breaker.state == CLOSED  # grace not yet elapsed
        breaker.observe_bandwidth(5.5, 0.5)
        assert breaker.state == OPEN

    def test_recovery_clears_the_grace_clock(self):
        breaker = _breaker()
        breaker.observe_bandwidth(0.0, 0.5)
        breaker.observe_bandwidth(3.0, 0.9)  # healthy again
        breaker.observe_bandwidth(4.0, 0.5)
        breaker.observe_bandwidth(8.0, 0.5)  # only 4s into the new streak
        assert breaker.state == CLOSED

    def test_healthy_fraction_never_trips(self):
        breaker = _breaker()
        for t in range(100):
            breaker.observe_bandwidth(float(t), 0.95)
        assert breaker.state == CLOSED


class TestTimeline:
    def test_transitions_are_recorded(self):
        breaker = _breaker()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        breaker.allow(14.0)
        breaker.record_success(14.5)
        assert breaker.timeline == [
            (0.0, CLOSED),
            (3.0, OPEN),
            (14.0, HALF_OPEN),
            (14.5, CLOSED),
        ]

    def test_reset_restores_fresh_state(self):
        breaker = _breaker()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.timeline == [(0.0, CLOSED)]
        assert breaker.open_rejections == 0
