"""Tests for the fault injector and its log."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    DiskDegradation,
    DiskStall,
    FaultInjector,
    FaultLog,
    FaultSchedule,
    MessageFault,
)


def _schedule(*faults):
    return FaultSchedule(tuple(faults))


class TestDegradation:
    def test_multiplier_defaults_to_healthy(self):
        injector = FaultInjector(_schedule())
        assert injector.multiplier(0) == 1.0

    def test_active_windows_stack_multiplicatively(self):
        a = DiskDegradation(disk=0, start=0.0, duration=5.0, factor=0.5)
        b = DiskDegradation(disk=0, start=1.0, duration=5.0, factor=0.5)
        injector = FaultInjector(_schedule(a, b))
        injector.begin_degradation(a, 0.0)
        assert injector.multiplier(0) == 0.5
        injector.begin_degradation(b, 1.0)
        assert injector.multiplier(0) == 0.25
        assert injector.multiplier(1) == 1.0
        injector.end_degradation(a, 5.0)
        assert injector.multiplier(0) == 0.5

    def test_log_counts_and_events(self):
        fault = DiskDegradation(disk=2, start=0.0, duration=1.0, factor=0.5)
        injector = FaultInjector(_schedule(fault))
        injector.begin_degradation(fault, 0.5)
        injector.end_degradation(fault, 1.5)
        assert injector.log.degradations == 1
        kinds = [kind for _, kind, _ in injector.log.events]
        assert kinds == ["degrade", "recover"]


class TestStalls:
    def test_stalled_until_tracks_latest_end(self):
        a = DiskStall(disk=0, at=1.0, duration=2.0)
        b = DiskStall(disk=0, at=2.0, duration=0.5)
        injector = FaultInjector(_schedule(a, b))
        assert injector.stalled_until(0) == 0.0
        injector.begin_stall(a, 1.0)
        assert injector.stalled_until(0) == 3.0
        injector.begin_stall(b, 2.0)  # ends earlier, must not shorten
        assert injector.stalled_until(0) == 3.0
        assert injector.log.stalls == 2


class TestMessageFate:
    def test_consumes_in_order_and_respects_time(self):
        injector = FaultInjector(
            _schedule(
                MessageFault(at=1.0, kind="drop"),
                MessageFault(at=2.0, kind="delay", extra=0.25),
            )
        )
        assert injector.message_fate(0.5) == ("ok", 0.0)
        assert injector.message_fate(1.0) == ("drop", 0.0)
        assert injector.message_fate(1.5) == ("ok", 0.0)
        assert injector.message_fate(2.5) == ("delay", 0.25)
        assert injector.message_fate(9.9) == ("ok", 0.0)
        assert injector.log.messages_dropped == 1
        assert injector.log.messages_delayed == 1


class TestInjector:
    def test_requires_a_schedule(self):
        with pytest.raises(FaultError):
            FaultInjector([])

    def test_reset_rewinds_everything(self):
        fault = MessageFault(at=0.0, kind="drop")
        injector = FaultInjector(_schedule(fault), seed=3)
        assert injector.message_fate(1.0)[0] == "drop"
        first_pick = injector.rng.random()
        injector.reset()
        assert injector.message_fate(1.0)[0] == "drop"
        assert injector.rng.random() == first_pick
        assert injector.log.messages_dropped == 1


class TestFaultLog:
    def test_faults_injected_sums_fault_counters(self):
        log = FaultLog(
            degradations=1,
            stalls=2,
            crashes=3,
            messages_dropped=4,
            messages_delayed=5,
            pages_reread=99,  # tolerance action, not a fault
            adjust_timeouts=99,
        )
        assert log.faults_injected == 15

    def test_to_lines_is_stable(self):
        log = FaultLog()
        log.record(1.25, "crash", "io0: slave 1 died")
        assert log.to_lines() == ["t=     1.250  crash    io0: slave 1 died"]
