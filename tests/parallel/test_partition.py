"""Tests for the partitioning arithmetic (pure, no processes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.parallel import (
    PageAssignment,
    adjusted_assignments,
    balanced_ranges,
    maxpage_split,
    page_assignments,
    repartition_intervals,
)


class TestPageAssignment:
    def test_pages_of_stride(self):
        a = PageAssignment(lo=0, hi=10, stride=3, residue=1)
        assert list(a.pages()) == [1, 4, 7, 10]

    def test_first_at_or_after(self):
        a = PageAssignment(lo=0, hi=20, stride=4, residue=2)
        assert a.first_at_or_after(0) == 2
        assert a.first_at_or_after(3) == 6
        assert a.first_at_or_after(6) == 6
        assert a.first_at_or_after(19) is None

    def test_empty_assignment(self):
        a = PageAssignment(lo=5, hi=4, stride=2, residue=0)
        assert list(a.pages()) == []
        assert a.count() == 0

    @pytest.mark.parametrize("kwargs", [
        {"lo": 0, "hi": 5, "stride": 0, "residue": 0},
        {"lo": 0, "hi": 5, "stride": 3, "residue": 3},
        {"lo": 0, "hi": 5, "stride": 3, "residue": -1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(SchedulingError):
            PageAssignment(**kwargs)


class TestPagePartition:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=12),
    )
    def test_partition_is_exact(self, n_pages, parallelism):
        assignments = page_assignments(n_pages, parallelism)
        covered = sorted(p for a in assignments for p in a.pages())
        assert covered == list(range(n_pages))

    def test_bad_args(self):
        with pytest.raises(SchedulingError):
            page_assignments(-1, 2)
        with pytest.raises(SchedulingError):
            page_assignments(10, 0)


class TestMaxpage:
    def test_is_max_cursor(self):
        assert maxpage_split([3, 9, 5], 100) == 9

    def test_clamped_to_n_pages(self):
        assert maxpage_split([120], 100) == 100

    def test_empty_cursors(self):
        assert maxpage_split([], 50) == 50


class TestAdjustedAssignments:
    """The Figure-5 protocol must preserve exactly-once coverage."""

    @settings(max_examples=100, deadline=None)
    @given(
        n_pages=st.integers(min_value=1, max_value=400),
        old_n=st.integers(min_value=1, max_value=8),
        new_n=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_exactly_once_coverage(self, n_pages, old_n, new_n, data):
        old = page_assignments(n_pages, old_n)
        # Cursors: each slave has consumed a prefix of its stride.
        cursors = [
            data.draw(st.integers(min_value=0, max_value=n_pages), label=f"c{i}")
            for i in range(old_n)
        ]
        maxpage, per_slave = adjusted_assignments(old, cursors, n_pages, new_n)
        # Pages already scanned by slave i: old stride pages < cursor_i.
        scanned = [
            {p for p in old[i].pages() if p < cursors[i]} for i in range(old_n)
        ]
        # Pages each slave will scan after the adjustment.
        future: list[set] = []
        for i, assignments in enumerate(per_slave):
            cursor = cursors[i] if i < old_n else 0
            pages = set()
            for a in assignments:
                pages |= {p for p in a.pages() if p >= cursor}
            future.append(pages)
        all_scanned = set().union(*scanned) if scanned else set()
        all_future = set().union(*future) if future else set()
        # No double coverage:
        total = sum(len(s) for s in scanned) + sum(len(f) for f in future)
        assert len(all_scanned | all_future) == total
        # Full coverage:
        assert all_scanned | all_future == set(range(n_pages))

    def test_mismatched_cursors_rejected(self):
        old = page_assignments(10, 2)
        with pytest.raises(SchedulingError):
            adjusted_assignments(old, [0], 10, 3)


class TestBalancedRanges:
    def test_even_cut(self):
        ranges = balanced_ranges(list(range(100)), 4)
        assert len(ranges) == 4
        assert ranges[0][0] is None  # open below
        assert ranges[-1][1] is None  # open above
        # Interior bounds line up.
        assert ranges[0][1] == ranges[1][0]

    def test_more_slaves_than_keys(self):
        ranges = balanced_ranges([1, 2], 5)
        assert len(ranges) == 5
        assert ranges.count(None) >= 3

    def test_empty_separators(self):
        assert balanced_ranges([], 3) == [None, None, None]

    def test_bad_parallelism(self):
        with pytest.raises(SchedulingError):
            balanced_ranges([1], 0)


class TestRepartitionIntervals:
    @settings(max_examples=100, deadline=None)
    @given(
        intervals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.integers(min_value=0, max_value=300),
            ).map(lambda t: (min(t), max(t))),
            max_size=6,
        ),
        parallelism=st.integers(min_value=1, max_value=8),
    )
    def test_shares_cover_exactly(self, intervals, parallelism):
        # Deduplicate overlapping inputs by working with disjoint keys.
        keys = set()
        disjoint = []
        for lo, hi in intervals:
            span = [k for k in range(lo, hi + 1) if k not in keys]
            keys.update(span)
            # split runs back into intervals
            run_start = None
            prev = None
            for k in sorted(span):
                if run_start is None:
                    run_start = prev = k
                elif k == prev + 1:
                    prev = k
                else:
                    disjoint.append((run_start, prev))
                    run_start = prev = k
            if run_start is not None:
                disjoint.append((run_start, prev))
        shares = repartition_intervals(disjoint, parallelism)
        assert len(shares) == parallelism
        covered = [k for share in shares for lo, hi in share for k in range(lo, hi + 1)]
        assert sorted(covered) == sorted(keys)
        # Shares are balanced within 1 key... per construction quotas:
        sizes = [sum(hi - lo + 1 for lo, hi in share) for share in shares]
        if keys:
            assert max(sizes) - min(sizes) <= 1

    def test_empty(self):
        assert repartition_intervals([], 3) == [[], [], []]

    def test_slave_may_get_multiple_intervals(self):
        shares = repartition_intervals([(0, 1), (10, 11)], 1)
        assert shares == [[(0, 1), (10, 11)]]
