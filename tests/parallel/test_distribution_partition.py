"""Tests for distribution-aware initial range partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Schema
from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.parallel import ParallelIndexScan, intervals_from_separators
from repro.storage import BTreeIndex, DiskArray, HeapFile


class TestIntervalsFromSeparators:
    def test_uniform_separators_split_evenly(self):
        shares = intervals_from_separators(0, 99, list(range(0, 100, 10)), 2)
        assert len(shares) == 2
        assert shares[0] == [(0, 49)]
        assert shares[1] == [(50, 99)]

    def test_skewed_separators_balance_rows(self):
        # Separators crowd near 0 — most rows live there, so the cut
        # point must sit near 0 too.
        separators = [0, 1, 2, 3, 4, 5, 6, 7, 8, 1000]
        shares = intervals_from_separators(0, 999, separators, 2)
        cut = shares[1][0][0]
        assert cut <= 10  # near the dense region, not at 500

    def test_exactly_once_coverage(self):
        shares = intervals_from_separators(10, 200, [40, 90, 150], 4)
        keys = sorted(
            k for share in shares for lo, hi in share for k in range(lo, hi + 1)
        )
        assert keys == list(range(10, 201))

    def test_no_separators_falls_back_to_even_split(self):
        shares = intervals_from_separators(0, 99, [500, 600], 2)
        sizes = [sum(hi - lo + 1 for lo, hi in share) for share in shares]
        assert sizes == [50, 50]

    def test_single_slave(self):
        shares = intervals_from_separators(0, 9, [3, 6], 1)
        assert shares == [[(0, 9)]]

    def test_bad_args(self):
        with pytest.raises(SchedulingError):
            intervals_from_separators(5, 1, [], 2)
        with pytest.raises(SchedulingError):
            intervals_from_separators(0, 9, [], 0)

    @settings(max_examples=60, deadline=None)
    @given(
        low=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=0, max_value=400),
        separators=st.lists(st.integers(min_value=-50, max_value=600), max_size=30),
        parallelism=st.integers(min_value=1, max_value=8),
    )
    def test_coverage_property(self, low, span, separators, parallelism):
        high = low + span
        shares = intervals_from_separators(low, high, separators, parallelism)
        assert len(shares) == parallelism
        keys = sorted(
            k for share in shares for lo, hi in share for k in range(lo, hi + 1)
        )
        assert keys == list(range(low, high + 1))


class TestSkewedParallelIndexScan:
    def test_distribution_aware_split_balances_skew(self):
        # 90% of the rows carry keys in [0, 10): an even key-space
        # split gives slave 0 nearly everything; the equi-depth
        # histogram from the catalog (row mass, not distinct keys)
        # balances the split.
        from repro.catalog import build_column_stats

        machine = MachineConfig(processors=2, disks=2)
        heap = HeapFile(Schema.of(("a", "int4"), ("b", "text")), DiskArray(machine))
        keys = [i % 10 for i in range(900)] + list(range(10, 110))
        heap.insert_many([(k, "x" * 30) for k in keys])
        index = BTreeIndex(order=16)
        for rid, row in heap.scan():
            index.insert(row[0], rid)
        histogram = build_column_stats(keys, n_histogram_buckets=20).histogram

        scan = ParallelIndexScan(
            heap, index, low=0, high=109, parallelism=2, separators=histogram
        )
        aware = scan.initial_shares()
        even = ParallelIndexScan(
            heap, index, low=0, high=109, parallelism=2, use_index_distribution=False
        ).initial_shares()

        def rows_in(share):
            return sum(
                len(index.search(k))
                for lo, hi in share
                for k in range(lo, hi + 1)
            )

        aware_counts = [rows_in(s) for s in aware]
        even_counts = [rows_in(s) for s in even]
        assert max(aware_counts) - min(aware_counts) < max(even_counts) - min(
            even_counts
        )
        # And the scan still returns everything exactly once.
        report = scan.run()
        assert len(report.rows) == 1000
