"""Tests for the master/slave wire protocol types."""

import pickle

from repro.parallel import PageAssignment
from repro.parallel import protocol as msg


class TestMessages:
    def test_all_messages_picklable(self):
        messages = [
            msg.Signal(),
            msg.NewPageAssignment(
                10, 3, (PageAssignment(0, 9, 3, 0),), generation=2
            ),
            msg.NewIntervals(2, ((0, 5), (9, 12)), generation=1),
            msg.Shutdown(),
            msg.CurPage(1, 42),
            msg.RemainingIntervals(0, ((3, 7),)),
            msg.Rows(2, ((1, "x"),), pages_read=4),
            msg.SlaveDone(1, 100, 40, generation=3),
            msg.SlaveError(0, "trace"),
        ]
        for message in messages:
            assert pickle.loads(pickle.dumps(message)) == message

    def test_generation_defaults_to_zero(self):
        done = msg.SlaveDone(0, 10, 5)
        assert done.generation == 0

    def test_orphan_residues(self):
        assert msg.orphan_residues(2, 5) == [2, 3, 4]
        assert msg.orphan_residues(4, 2) == []
        assert msg.orphan_residues(3, 3) == []
