"""Regression tests: stale-generation reports must be discarded.

The bug: the master collected position reports by *count*, so a slow
slave's CurPage / RemainingIntervals from before a completed adjustment
round could be counted as a fresh report in the next round.  Applying
it rewinds that slave's position past pages the new partition already
covers — pages get scanned twice (or the round wedges on a missing
fresh report).  These tests inject exactly that straggler; on the
pre-fix code they fail with duplicated rows, a KeyError in the round,
or a spurious "unsolicited report" ProtocolError.
"""

import pytest

from repro.catalog import Schema
from repro.config import MachineConfig
from repro.parallel import AdjustmentPlan, ParallelIndexScan, ParallelSeqScan
from repro.parallel import protocol as msg
from repro.storage import BTreeIndex, DiskArray, HeapFile

SCHEMA = Schema.of(("a", "int4"), ("b", "text"))
N_ROWS = 600


@pytest.fixture(scope="module")
def heap():
    h = HeapFile(SCHEMA, DiskArray(MachineConfig(processors=2, disks=2)), name="r1")
    h.insert_many([(i, f"payload-{i}" + "x" * 60) for i in range(N_ROWS)])
    return h


@pytest.fixture(scope="module")
def index(heap):
    idx = BTreeIndex()
    for rid, row in heap.scan():
        idx.insert(row[0], rid)
    return idx


class _StragglerSeqScan(ParallelSeqScan):
    """Injects slave 0's pre-adjustment CurPage ahead of a later round."""

    def _adjust(self, new_parallelism, n_pages):
        if self._generation >= 1:
            # A slow slave's report from before round 1 completed,
            # surfacing just as round 2 signals: generation 0 while
            # slave 0 was last assigned at generation 1.
            self.report_queue.put(msg.CurPage(0, 0, 0))
        super()._adjust(new_parallelism, n_pages)


class _LateStragglerSeqScan(ParallelSeqScan):
    """Injects the straggler *after* the round, into the main loop."""

    def _adjust(self, new_parallelism, n_pages):
        super()._adjust(new_parallelism, n_pages)
        self.report_queue.put(msg.CurPage(0, 0, 0))


class _StragglerIndexScan(ParallelIndexScan):
    """Same straggler, Figure-6 flavor: stale RemainingIntervals."""

    def _adjust(self, new_parallelism):
        if self._generation >= 1:
            self.report_queue.put(
                msg.RemainingIntervals(0, ((0, N_ROWS - 1),), 0)
            )
        super()._adjust(new_parallelism)


class TestStaleReports:
    def test_seq_scan_discards_stale_curpage(self, heap):
        quarter = heap.page_count // 4
        report = _StragglerSeqScan(
            heap,
            parallelism=2,
            adjustments=[
                AdjustmentPlan(after_pages=quarter, parallelism=4),
                AdjustmentPlan(after_pages=2 * quarter, parallelism=3),
            ],
        ).run()
        assert report.adjustments == 2
        assert report.pages_read == heap.page_count
        assert sorted(r[0] for r in report.rows) == list(range(N_ROWS))

    def test_main_loop_discards_stale_curpage(self, heap):
        quarter = heap.page_count // 4
        report = _LateStragglerSeqScan(
            heap,
            parallelism=2,
            adjustments=[AdjustmentPlan(after_pages=quarter, parallelism=3)],
        ).run()
        assert report.pages_read == heap.page_count
        assert sorted(r[0] for r in report.rows) == list(range(N_ROWS))

    def test_index_scan_discards_stale_intervals(self, heap, index):
        report = _StragglerIndexScan(
            heap,
            index,
            low=0,
            high=N_ROWS - 1,
            parallelism=2,
            adjustments=[
                AdjustmentPlan(after_pages=80, parallelism=4),
                AdjustmentPlan(after_pages=220, parallelism=3),
            ],
        ).run()
        assert report.adjustments == 2
        assert sorted(r[0] for r in report.rows) == list(range(N_ROWS))
